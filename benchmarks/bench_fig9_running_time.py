"""Figure 9 — execution time of the four series vs graph size.

Regenerates the running-time comparison: the spectral pipeline with the
naive dense power-iteration eigensolver ("without Spark"), the two
baselines, and the spectral pipeline with cluster-distributed mat-vecs
("with Spark").

Paper's shape: the naive spectral series grows fastest (the time goes
into repeated matrix multiplications); distributing those products pulls
the spectral series back toward the baselines.
"""

from __future__ import annotations

from repro.core.planner import OffloadingPlanner
from repro.experiments.reporting import render_table
from repro.spectral.fiedler import FiedlerMethod, FiedlerSolver
from repro.core.baselines import spectral_cut_strategy
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile


def test_fig9_running_time(benchmark, timing_rows):
    profile = bench_profile()
    size = profile.graph_sizes[-1]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    naive = OffloadingPlanner(
        spectral_cut_strategy(FiedlerSolver(method=FiedlerMethod.POWER)),
        strategy_name="spectral-power",
    )

    benchmark.pedantic(lambda: naive.plan_user(call_graph), rounds=3, iterations=1)

    print("\n=== Figure 9: execution time (seconds per application plan) ===")
    print(
        render_table(
            ["algorithm", "graph size", "seconds", "repeats"],
            [[r.algorithm, r.graph_size, r.seconds, r.repeats] for r in timing_rows],
        )
    )
    by_alg: dict[str, dict[int, float]] = {}
    for row in timing_rows:
        by_alg.setdefault(row.algorithm, {})[row.graph_size] = row.seconds
    largest = max(by_alg["spectral-power"])
    # All series measured at every size.
    assert set(by_alg) == {"spectral-power", "maxflow", "kl", "spectral-spark"}
    for series in by_alg.values():
        assert set(series) == set(profile.graph_sizes)
    # Every series grows with graph size.
    for name, series in by_alg.items():
        assert series[largest] > series[min(series)], f"{name} did not grow"
