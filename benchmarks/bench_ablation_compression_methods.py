"""Ablation — Algorithm 1's LPA compression vs heavy-edge coarsening.

Two ways to shrink a function data flow graph before cutting: the paper's
threshold-guided label propagation (structure-aware: merges exactly the
highly coupled neighborhoods) and the multilevel literature's heavy-edge
matching (size-driven: halves the graph per level until a target).  This
bench compresses identical workloads with both and compares size,
residual edge weight (traffic still cuttable — lower means more traffic
was safely internalised), and runtime.
"""

from __future__ import annotations

from repro.compression import GraphCompressor
from repro.experiments.reporting import render_table
from repro.graphs.coarsening import coarsening_as_compression
from repro.utils.timer import time_call
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile


def test_ablation_compression_methods(benchmark):
    profile = bench_profile()
    size = profile.graph_sizes[-1]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    offloadable = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    ).offloadable_subgraph()

    compressor = GraphCompressor()
    benchmark.pedantic(lambda: compressor.compress(offloadable), rounds=3, iterations=1)

    lpa_result, lpa_seconds = time_call(compressor.compress, offloadable)
    lpa = lpa_result.compressed

    hem_target = lpa.graph.node_count  # same size budget for fairness
    hem, hem_seconds = time_call(
        coarsening_as_compression, offloadable, hem_target, profile.seed
    )

    rows = [
        [
            "label propagation (Alg. 1)",
            lpa.graph.node_count,
            lpa.graph.edge_count,
            lpa.graph.total_edge_weight(),
            f"{lpa_seconds:.3f}s",
        ],
        [
            "heavy-edge coarsening",
            hem.graph.node_count,
            hem.graph.edge_count,
            hem.graph.total_edge_weight(),
            f"{hem_seconds:.3f}s",
        ],
    ]
    print("\n=== Ablation: compression methods on the same workload ===")
    print(
        render_table(
            ["method", "nodes after", "edges after", "residual edge weight", "time"],
            rows,
        )
    )
    # Both conserve computation weight (up to summation order).
    assert abs(lpa.graph.total_node_weight() - hem.graph.total_node_weight()) < 1e-6
    # LPA's threshold rule targets coupled traffic: at an equal node
    # budget its residual (cuttable) edge weight must not be higher.
    assert lpa.graph.total_edge_weight() <= hem.graph.total_edge_weight() * 1.05
