"""Ablation — readings of Algorithm 2's implicit ``V_2'`` seeding.

The paper states "Insert(V_2', V_1)" without defining ``V_2'``.  This
bench compares the three implemented readings (anchored / dominated /
all-remote) across the three cut algorithms on one workload, showing why
``anchored`` is the reproduction default: it is the only reading under
which per-sub-graph cut quality translates into transmission cost the
way Figs. 4 and 7 report.
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.core.config import PlannerConfig
from repro.experiments.reporting import render_table
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.greedy import INITIAL_PLACEMENT_MODES
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile


def test_ablation_placement_modes(benchmark):
    profile = bench_profile()
    size = profile.graph_sizes[len(profile.graph_sizes) // 2]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    device = MobileDevice("user00000", profile=profile.device)
    system = MECSystem(
        EdgeServer(profile.server_capacity_per_user), [UserContext(device, call_graph)]
    )

    def run(mode: str, strategy: str):
        config = PlannerConfig(initial_placement_mode=mode)
        planner = make_planner(strategy, config=config)
        return planner.plan_system(system, {"user00000": call_graph})

    benchmark.pedantic(lambda: run("anchored", "spectral"), rounds=3, iterations=1)

    rows = []
    tx_by_mode: dict[str, dict[str, float]] = {}
    for mode in INITIAL_PLACEMENT_MODES:
        tx_by_mode[mode] = {}
        for strategy in ("spectral", "maxflow", "kl"):
            result = run(mode, strategy)
            c = result.consumption
            tx_by_mode[mode][strategy] = c.transmission_energy
            rows.append(
                [
                    mode,
                    strategy,
                    c.local_energy,
                    c.transmission_energy,
                    c.energy,
                    c.combined(),
                    result.scheme.total_offloaded,
                ]
            )
    print("\n=== Ablation: V_2' seeding modes x cut algorithms ===")
    print(
        render_table(
            ["mode", "algorithm", "local E", "tx E", "total E", "E+T", "offloaded"],
            rows,
        )
    )
    # The documented property: under the anchored reading the spectral
    # cut transmits no more than KL's balanced cut.
    assert tx_by_mode["anchored"]["spectral"] <= tx_by_mode["anchored"]["kl"] + 1e-9
