"""Contention benchmark: blind vs aware vs best-response on shared spectrum.

Not pytest-collected (``testpaths = ["tests"]``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_contention.py --smoke

Three planning arms face the same multi-user workloads on one shared
wireless channel (capacity = one device link, so any second offloader
halves the effective rate):

* ``blind`` — the paper's greedy, priced at constant ``b``;
* ``aware`` — the greedy with the contention fixed point and
  whole-user withdrawal sweep;
* ``game``  — Chen et al.-style decentralized best response.

The referee is the discrete-event simulator in fair-share mode, so the
blind arm's optimistic self-assessment cannot help it.  Emits
``BENCH_contention.json``; the headline claims are asserted, not just
recorded — they must hold at any scale, on any runner:

* the fixed-placement contention curve's per-user ``e_t`` and ``t_t``
  rise *strictly* with every added co-offloading user;
* the best-response baseline converges (no user moves on its final
  round) at every swept user count;
* at every count with >= 4 users, the contention-aware arm's combined
  ``E + T`` under the shared channel is equal-or-lower than the blind
  arm's — on the planner's contention-consistent model *and* on the
  simulator's measured energy + completion.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.experiments.contention import run_contention_experiment
from repro.workloads.profiles import quick_profile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Contention-blind vs aware vs best-response planning "
        "on a shared wireless channel."
    )
    parser.add_argument(
        "--smoke", action="store_true", help="tiny fast path (30-function apps) for CI"
    )
    parser.add_argument(
        "--users", type=str, default="1,2,4,6,8", help="comma-separated user counts"
    )
    parser.add_argument("--graph-size", type=int, default=None, help="functions per app")
    parser.add_argument(
        "--channel-capacity", type=float, default=None,
        help="shared capacity (default: one device link)",
    )
    parser.add_argument(
        "--quality-spread", type=float, default=0.0,
        help="per-user channel-gain spread in [0, 1)",
    )
    parser.add_argument("--algorithm", default="spectral")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=Path("BENCH_contention.json"))
    args = parser.parse_args(argv)

    user_counts = tuple(int(v) for v in args.users.split(","))
    graph_size = args.graph_size
    if args.smoke and graph_size is None:
        graph_size = 30
    profile = quick_profile()
    if graph_size is not None:
        profile = dataclasses.replace(profile, multiuser_graph_size=graph_size)

    rows, curve = run_contention_experiment(
        profile=profile,
        user_counts=user_counts,
        algorithm=args.algorithm,
        channel_capacity=args.channel_capacity,
        quality_spread=args.quality_spread,
        seed=args.seed,
    )

    # Claim 1: contention physics — per-user e_t/t_t strictly increase
    # with every added co-offloading user on the fixed placement.
    for before, after in zip(curve, curve[1:]):
        if not (
            after.transmission_energy > before.transmission_energy
            and after.transmission_time > before.transmission_time
        ):
            raise RuntimeError(
                "per-user e_t/t_t must rise strictly with co-offloading users: "
                f"n={before.n_users} -> n={after.n_users} gave e_t "
                f"{before.transmission_energy:.4f} -> {after.transmission_energy:.4f}, "
                f"t_t {before.transmission_time:.4f} -> {after.transmission_time:.4f}"
            )

    by_arm = {arm: {r.n_users: r for r in rows if r.arm == arm} for arm in ("blind", "aware", "game")}

    # Claim 2: the decentralized baseline reaches an equilibrium — its
    # final best-response round is quiet at every swept population.
    for n, row in sorted(by_arm["game"].items()):
        if not row.game_converged:
            raise RuntimeError(
                f"best-response iteration did not converge at {n} users "
                f"({row.game_rounds} rounds)"
            )

    # Claim 3: once contention binds (>= 4 co-offloading users), aware
    # planning is equal-or-lower than blind planning — both on the
    # contention-consistent model and on the simulator referee.
    for n in user_counts:
        if n < 4:
            continue
        aware, blind = by_arm["aware"][n], by_arm["blind"][n]
        if aware.evaluated_combined > blind.evaluated_combined:
            raise RuntimeError(
                f"aware must not exceed blind on channel E+T at {n} users: "
                f"{aware.evaluated_combined:.2f} vs {blind.evaluated_combined:.2f}"
            )
        aware_sim = aware.simulated_energy + aware.simulated_completion
        blind_sim = blind.simulated_energy + blind.simulated_completion
        if aware_sim > blind_sim:
            raise RuntimeError(
                f"aware must not exceed blind on simulated E+T at {n} users: "
                f"{aware_sim:.2f} vs {blind_sim:.2f}"
            )

    payload = {
        "benchmark": "contention",
        "smoke": args.smoke,
        "config": {
            "user_counts": list(user_counts),
            "graph_size": graph_size,
            "channel_capacity": args.channel_capacity,
            "quality_spread": args.quality_spread,
            "algorithm": args.algorithm,
            "seed": args.seed,
        },
        "curve": [dataclasses.asdict(p) for p in curve],
        "rows": [dataclasses.asdict(r) for r in rows],
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print("fixed-placement contention curve (per-user):")
    for p in curve:
        print(
            f"  n={p.n_users}: b_i(n)={p.effective_rate:.2f}, "
            f"e_t={p.transmission_energy:.3f}, t_t={p.transmission_time:.4f}"
        )
    print("arms (channel-model E+T | simulated E+T):")
    for n in user_counts:
        parts = []
        for arm in ("blind", "aware", "game"):
            row = by_arm[arm][n]
            sim = row.simulated_energy + row.simulated_completion
            parts.append(f"{arm} {row.evaluated_combined:.1f}|{sim:.1f}")
        print(f"  n={n}: " + ", ".join(parts))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
