"""Figure 6 — local energy consumption under multi-user conditions.

Regenerates the normalized local-energy series as user count grows (fixed
per-user graph size) and benchmarks the system-wide greedy placement at
the largest user count.

Paper's shape: consistent with the single-user case — consumption grows
with user count, our algorithm below the max-flow baseline.
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.workloads.multiuser import build_mec_system

from conftest import bench_profile, print_figure


def test_fig6_multiuser_local_energy(benchmark, multiuser_rows):
    profile = bench_profile()
    n_users = profile.user_counts[-1]
    workload = build_mec_system(n_users, profile)
    planner = make_planner("spectral")

    benchmark.pedantic(
        lambda: planner.plan_system(workload.system, workload.call_graphs),
        rounds=2,
        iterations=1,
    )

    print_figure(
        "Figure 6: local energy consumption (multi-user)",
        multiuser_rows,
        lambda r: r.local_energy,
    )
    by_scale: dict[int, dict[str, float]] = {}
    for row in multiuser_rows:
        by_scale.setdefault(row.scale, {})[row.algorithm] = row.local_energy
    # Growth with user count for every algorithm.
    for algorithm in ("spectral", "maxflow", "kl"):
        series = [by_scale[scale][algorithm] for scale in sorted(by_scale)]
        assert series[-1] > series[0]
    # Ours below max-flow (which under-offloads) at the largest count.
    largest = by_scale[max(by_scale)]
    assert largest["spectral"] < largest["maxflow"]
