"""Micro-benchmarks of the core substrates (performance regression suite).

Not a paper artifact: these pin the throughput of the hot operations the
pipeline is built from — graph mutation, compression, the Fiedler
backends, max-flow, and the greedy evaluator — so a performance
regression in any substrate shows up as a benchmark delta rather than as
a mysteriously slow evaluation run.
"""

from __future__ import annotations

import pytest

from repro.compression import GraphCompressor
from repro.graphs.components import largest_component
from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.edmonds_karp import edmonds_karp
from repro.mincut.st_selection import select_source_sink
from repro.spectral.fiedler import FiedlerSolver
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile


@pytest.fixture(scope="module")
def workload():
    profile = bench_profile()
    size = profile.graph_sizes[min(1, len(profile.graph_sizes) - 1)]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    return profile, graph


def test_micro_graph_construction(benchmark, workload):
    _, graph = workload
    edges = graph.edge_list()
    weights = {n: graph.node_weight(n) for n in graph.nodes()}

    def build():
        g = WeightedGraph()
        for node, weight in weights.items():
            g.add_node(node, weight=weight)
        for u, v, w in edges:
            g.add_edge(u, v, weight=w)
        return g

    result = benchmark(build)
    assert result.edge_count == graph.edge_count


def test_micro_compression(benchmark, workload):
    _, graph = workload
    compressor = GraphCompressor()
    result = benchmark(lambda: compressor.compress(graph))
    assert result.compressed.graph.node_count < graph.node_count


@pytest.mark.parametrize("method", ["dense", "lanczos", "power"])
def test_micro_fiedler_backends(benchmark, workload, method):
    _, graph = workload
    compressed = GraphCompressor().compress(graph).compressed.graph
    component = compressed.subgraph(largest_component(compressed))
    solver = FiedlerSolver(method=method)
    result = benchmark(lambda: solver.solve(component))
    assert result.value >= 0.0


def test_micro_maxflow(benchmark, workload):
    _, graph = workload
    compressed = GraphCompressor().compress(graph).compressed.graph
    component = compressed.subgraph(largest_component(compressed))
    source, sink = select_source_sink(component)
    result = benchmark(lambda: edmonds_karp(component, source, sink))
    assert result.value >= 0.0


def test_micro_greedy_evaluator(benchmark, workload):
    from repro.mec.devices import EdgeServer, MobileDevice
    from repro.mec.greedy import PlacementEvaluator, initial_placement
    from repro.mec.objective import ObjectiveWeights
    from repro.mec.scheme import PartitionedApplication
    from repro.mec.system import MECSystem, UserContext
    from repro.core import make_planner

    profile, graph = workload
    app = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    device = MobileDevice("u1", profile=profile.device)
    system = MECSystem(
        EdgeServer(profile.server_capacity_per_user), [UserContext(device, app)]
    )
    plan = make_planner("spectral").plan_user(app)
    papp = PartitionedApplication("u1", app, plan.parts)
    apps = {"u1": papp}
    placement = initial_placement(apps, {"u1": plan.bisections})
    evaluator = PlacementEvaluator(system, apps, placement, ObjectiveWeights())
    candidates = evaluator.candidates()
    assert candidates

    def evaluate_all():
        return [evaluator.evaluate_move(u, p) for u, p in candidates]

    values = benchmark(evaluate_all)
    assert len(values) == len(candidates)
