"""Hot-path benchmark: planning throughput, kernel timings, warm starts.

Not pytest-collected (``testpaths = ["tests"]``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke

Emits ``BENCH_hotpath.json`` so the hot-path speed-ups introduced by the
array-graph/process-executor work are tracked across PRs:

* plans/sec for ``PlanService`` in thread vs process executor mode, plus
  the per-stage p50s (compression / cut) from the service histograms;
* dict vs CSR vs numpy label-propagation kernel wall time on a large
  graph, with a label-parity check across all three;
* python vs numpy greedy candidate-scan inside a full multi-user plan,
  with a plan-digest parity check;
* cold vs warm Fiedler sparse solves (the warm-start vector cache).

CI runs the ``--smoke`` variant and fails on crash only, never on
regression — absolute numbers depend on the runner, so the JSON artifact
is for humans (and future tooling) to diff, not a gate.  The artifact is
a *trajectory*: each run appends an entry (old single-entry files are
wrapped), so regressions across PRs stay visible in the diff.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from pathlib import Path

from repro.compression.labels import MeanScaledThreshold
from repro.compression.propagation import LabelPropagation
from repro.core import make_planner
from repro.core.config import PlannerConfig
from repro.graphs.generators import random_connected_graph
from repro.service import PlanService, ServiceConfig, plan_digest
from repro.spectral.fiedler import FiedlerSolver
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import replay_arrivals


def _best_of(repeats: int, run) -> float:
    """Best wall time of *repeats* calls to *run* (min reduces jitter)."""
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def bench_service(executor: str, arrivals, workers: int, strategy: str = "spectral") -> dict:
    """Replay *arrivals* through a cold service; return throughput + p50s."""
    config = ServiceConfig(workers=workers, executor=executor, max_queue_depth=len(arrivals) + 1)
    with PlanService(make_planner(strategy), config) as service:
        started = time.perf_counter()
        tickets = [service.submit(graph) for _, graph in arrivals]
        responses = [ticket.result() for ticket in tickets]
        elapsed = time.perf_counter() - started
        stage_p50 = {
            "compress_seconds": service.metrics.histogram("stage_compress_seconds").percentile(0.5),
            "cut_seconds": service.metrics.histogram("stage_cut_seconds").percentile(0.5),
            "request_latency_seconds": service.metrics.histogram(
                "request_latency_seconds"
            ).percentile(0.5),
        }
        invocations = service.planner_invocations
    ok = sum(1 for response in responses if response.ok)
    if ok != len(responses):
        raise RuntimeError(f"{executor}: {len(responses) - ok} requests failed")
    return {
        "executor": executor,
        "requests": len(responses),
        "seconds": elapsed,
        "plans_per_sec": len(responses) / elapsed if elapsed > 0 else 0.0,
        "planner_invocations": invocations,
        "stage_p50": stage_p50,
    }


def bench_label_propagation(n_nodes: int, repeats: int, seed: int = 0) -> dict:
    """Dict vs CSR vs numpy label-propagation kernels on one large graph."""
    graph = random_connected_graph(n_nodes, min(3 * n_nodes, n_nodes * (n_nodes - 1) // 2), seed=seed)
    timings: dict[str, float] = {}
    reports = {}
    for kernel in ("dict", "csr", "numpy"):
        propagation = LabelPropagation(MeanScaledThreshold(1.0), kernel=kernel)
        reports[kernel] = propagation.run(graph)
        timings[kernel] = _best_of(repeats, lambda p=propagation: p.run(graph))
    for kernel in ("csr", "numpy"):
        if reports["dict"].labels != reports[kernel].labels:
            raise RuntimeError(f"dict and {kernel} label-propagation kernels disagree")
    return {
        "n_nodes": n_nodes,
        "n_edges": graph.edge_count,
        "dict_seconds": timings["dict"],
        "csr_seconds": timings["csr"],
        "numpy_seconds": timings["numpy"],
        "csr_speedup": timings["dict"] / timings["csr"] if timings["csr"] > 0 else 0.0,
        "numpy_speedup": timings["dict"] / timings["numpy"] if timings["numpy"] > 0 else 0.0,
        "labels_identical": True,
        "rounds": reports["csr"].rounds,
    }


def bench_greedy_kernel(n_users: int, graph_size: int, repeats: int, seed: int = 2) -> dict:
    """Python vs numpy greedy candidate-scan inside a full multi-user plan."""
    profile = dataclasses.replace(
        quick_profile(),
        distinct_graphs=4,
        multiuser_graph_size=graph_size,
        seed=2019 + seed,
    )
    workload = build_mec_system(n_users, profile, graph_size=graph_size)
    timings: dict[str, float] = {}
    digests: dict[str, dict[str, str]] = {}
    for kernel in ("python", "numpy"):
        planner = make_planner("spectral", PlannerConfig(greedy_kernel=kernel))
        result = planner.plan_system(workload.system, workload.call_graphs)
        digests[kernel] = {
            user: plan_digest(plan) for user, plan in result.user_plans.items()
        }
        timings[kernel] = _best_of(
            repeats,
            lambda p=planner: p.plan_system(workload.system, workload.call_graphs),
        )
    identical = digests["python"] == digests["numpy"]
    if not identical:
        raise RuntimeError("python and numpy greedy kernels produced different plans")
    return {
        "n_users": n_users,
        "graph_size": graph_size,
        "python_seconds": timings["python"],
        "numpy_seconds": timings["numpy"],
        "numpy_speedup": timings["python"] / timings["numpy"] if timings["numpy"] > 0 else 0.0,
        "plans_identical": identical,
    }


def bench_fiedler_warm_start(n_nodes: int, repeats: int, seed: int = 1) -> dict:
    """Cold vs warm sparse Fiedler solve on one structure."""
    graph = random_connected_graph(n_nodes, min(3 * n_nodes, n_nodes * (n_nodes - 1) // 2), seed=seed)
    cold = FiedlerSolver(method="sparse")
    warm = FiedlerSolver(method="sparse", warm_start=True)
    cold_result = cold.solve(graph)
    warm.solve(graph)  # populate the warm cache for this structure
    warm_result = warm.solve(graph)
    cold_seconds = _best_of(repeats, lambda: cold.solve(graph))
    warm_seconds = _best_of(repeats, lambda: warm.solve(graph))
    scale = max(abs(cold_result.value), 1e-12)
    return {
        "n_nodes": n_nodes,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "warm_speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
        "warm_hits": warm.warm_hits,
        "lambda2_rel_diff": abs(cold_result.value - warm_result.value) / scale,
    }


def _append_trajectory(path: Path, entry: dict, keep: int = 20) -> dict:
    """Fold *entry* into the trajectory file at *path*.

    Older files held a single run as a flat dict; those are wrapped as
    the first trajectory entry so history is preserved.  Only the last
    *keep* entries are retained.
    """
    trajectory: list[dict] = []
    if path.exists():
        try:
            previous = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            previous = None
        if isinstance(previous, dict):
            if isinstance(previous.get("trajectory"), list):
                trajectory = previous["trajectory"]
            else:
                previous.pop("benchmark", None)
                trajectory = [previous]
    trajectory.append(entry)
    return {"benchmark": "hotpath", "trajectory": trajectory[-keep:]}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Benchmark the planning hot path.")
    parser.add_argument("--smoke", action="store_true", help="tiny workload for CI")
    parser.add_argument("--requests", type=int, default=96)
    parser.add_argument("--pool", type=int, default=8, help="distinct apps in the trace")
    parser.add_argument("--graph-size", type=int, default=120, help="functions per app")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--label-nodes", type=int, default=800)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=Path("BENCH_hotpath.json"))
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests, args.pool, args.graph_size, args.workers = 24, 4, 40, 2
        args.label_nodes, args.repeats = 520, 1

    profile = dataclasses.replace(
        quick_profile(),
        distinct_graphs=args.pool,
        multiuser_graph_size=args.graph_size,
        seed=2019 + args.seed,
    )
    workload = build_mec_system(args.requests, profile)
    arrivals = replay_arrivals(workload, rate=200.0, seed=args.seed)

    service = {
        executor: bench_service(executor, arrivals, args.workers)
        for executor in ("thread", "process")
    }
    process_speedup = (
        service["process"]["plans_per_sec"] / service["thread"]["plans_per_sec"]
        if service["thread"]["plans_per_sec"] > 0
        else 0.0
    )
    label_propagation = bench_label_propagation(args.label_nodes, args.repeats, seed=args.seed)
    greedy = bench_greedy_kernel(
        max(8, args.requests // 2), args.graph_size, args.repeats, seed=args.seed + 2
    )
    fiedler = bench_fiedler_warm_start(args.label_nodes, args.repeats, seed=args.seed + 1)

    cpu_count = os.cpu_count() or 1
    entry = {
        "smoke": args.smoke,
        "cpu_count": cpu_count,
        "note": (
            "host has <4 cores: the process executor cannot beat the thread "
            "executor here; the >=1.5x process-speedup criterion applies on "
            ">=4-core runners"
            if cpu_count < 4
            else ""
        ),
        "config": {
            "requests": args.requests,
            "pool": args.pool,
            "graph_size": args.graph_size,
            "workers": args.workers,
            "label_nodes": args.label_nodes,
            "repeats": args.repeats,
            "seed": args.seed,
        },
        "service": service,
        "process_vs_thread_speedup": process_speedup,
        "label_propagation": label_propagation,
        "greedy_kernel": greedy,
        "fiedler_warm_start": fiedler,
    }
    args.output.write_text(json.dumps(_append_trajectory(args.output, entry), indent=2) + "\n")

    print(
        f"service: thread {service['thread']['plans_per_sec']:.1f} plans/s, "
        f"process {service['process']['plans_per_sec']:.1f} plans/s "
        f"({process_speedup:.2f}x)"
    )
    print(
        f"label propagation ({label_propagation['n_nodes']} nodes): "
        f"dict {label_propagation['dict_seconds'] * 1e3:.2f}ms, "
        f"csr {label_propagation['csr_seconds'] * 1e3:.2f}ms "
        f"({label_propagation['csr_speedup']:.2f}x), "
        f"numpy {label_propagation['numpy_seconds'] * 1e3:.2f}ms "
        f"({label_propagation['numpy_speedup']:.2f}x, labels identical)"
    )
    print(
        f"greedy scan ({greedy['n_users']} users): "
        f"python {greedy['python_seconds'] * 1e3:.2f}ms, "
        f"numpy {greedy['numpy_seconds'] * 1e3:.2f}ms "
        f"({greedy['numpy_speedup']:.2f}x, plans identical)"
    )
    print(
        f"fiedler sparse ({fiedler['n_nodes']} nodes): "
        f"cold {fiedler['cold_seconds'] * 1e3:.2f}ms, "
        f"warm {fiedler['warm_seconds'] * 1e3:.2f}ms "
        f"({fiedler['warm_speedup']:.2f}x, lambda2 rel diff {fiedler['lambda2_rel_diff']:.2e})"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
