"""Soak benchmark: sustained serving under app churn with bounded memory.

Not pytest-collected (``testpaths = ["tests"]``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_soak.py --smoke

Drives a long-lived :class:`~repro.service.PlanService` (process
executor by default) through many rounds of plan requests.  Each round
mixes a stable pool of popular apps — exercising the plan cache and the
shared-memory reuse path — with freshly generated one-off apps that
churn the LRU caches and the segment store.  A slice of every round is
routed through the HTTP frontend so the serving surface soaks alongside
the backend.

What it proves (and asserts, exiting non-zero on violation):

* every request over the whole horizon succeeds — no shed/error under
  sustained load, no worker-pool decay, no segment-store leak stalls;
* plans stay deterministic: the digest of each stable app's plan never
  changes between rounds;
* resident memory is bounded: RSS growth from the post-warmup baseline
  to the final round stays under ``--rss-ceiling-mb`` despite churn.

Emits ``BENCH_soak.json``.  CI runs ``--smoke``; absolute throughput
numbers depend on the runner and are informational, only the invariants
above gate.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import resource
import sys
import time
import urllib.request
from pathlib import Path

from repro.analysis.runtime import install_from_env
from repro.core import make_planner
from repro.service import (
    HttpFrontendThread,
    PlanService,
    ServiceConfig,
    graph_to_payload,
    plan_digest,
    process_pool_supported,
)
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import replay_arrivals


def rss_kib() -> int:
    """Current resident set size in KiB.

    ``/proc/self/statm`` gives the live value on Linux; the
    ``getrusage`` fallback reports the peak instead (still monotone, so
    the growth assertion stays meaningful, just more conservative).
    """
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            resident_pages = int(handle.read().split()[1])
        return resident_pages * os.sysconf("SC_PAGESIZE") // 1024
    except (OSError, ValueError, IndexError):
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _http_round_trip(port: int, payload: dict) -> dict:
    """POST one /plan request to the frontend; return the decoded body."""
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/plan",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60.0) as response:
        return json.loads(response.read().decode("utf-8"))


def run_soak(args: argparse.Namespace) -> dict:
    """Run the churn horizon; return the JSON payload (with verdicts)."""
    # With REPRO_LOCK_SANITIZER=1 every lock the serving stack creates
    # below this point is order-tracked; any observed lock-order
    # inversion fails the soak like any other invariant violation.
    sanitizer = install_from_env()
    executor = args.executor
    executor_note = ""
    if executor == "process" and not process_pool_supported(args.strategy):
        executor, executor_note = "thread", "process pool unsupported here; fell back to thread"

    profile = dataclasses.replace(
        quick_profile(),
        distinct_graphs=args.pool,
        multiuser_graph_size=args.graph_size,
        seed=2019 + args.seed,
    )
    stable_workload = build_mec_system(args.users, profile, graph_size=args.graph_size)

    config = ServiceConfig(
        workers=args.workers,
        executor=executor,
        max_queue_depth=4 * (args.users + args.churn) + 8,
        # Deliberately smaller than the distinct apps seen over the
        # horizon, so the plan cache (and with it the shm store) keeps
        # evicting — a leak in either shows up as unbounded RSS.
        cache_capacity=args.pool + 2,
    )
    rounds: list[dict] = []
    plan_digests: dict[str, str] = {}
    http_requests = http_ok = 0
    failures: list[str] = []
    rss_samples: list[int] = []
    started = time.perf_counter()

    with (
        PlanService(make_planner(args.strategy), config) as service,
        HttpFrontendThread(service) as frontend,
    ):
        port = frontend.start()
        for round_index in range(args.rounds):
            arrivals = replay_arrivals(stable_workload, rate=200.0, seed=round_index)
            churn_profile = dataclasses.replace(
                profile,
                distinct_graphs=max(1, args.churn),
                seed=9000 + 17 * round_index + args.seed,
            )
            churn_workload = build_mec_system(
                max(1, args.churn), churn_profile, graph_size=args.graph_size
            )
            arrivals += replay_arrivals(churn_workload, seed=round_index)

            round_started = time.perf_counter()
            tickets = [(graph, service.submit(graph)) for _, graph in arrivals]
            ok = 0
            for graph, ticket in tickets:
                response = ticket.result(timeout=120.0)
                if not response.ok:
                    code = response.error.code if response.error else "unknown"
                    failures.append(f"round {round_index}: {graph.app_name} -> {code}")
                    continue
                ok += 1
                # Same request fingerprint must always yield the same
                # plan bits — even when cache eviction forced a
                # replan, possibly on a different (recycled) worker.
                digest = plan_digest(response.plan) if response.plan else ""
                previous = plan_digests.setdefault(response.key, digest)
                if previous != digest:
                    failures.append(
                        f"round {round_index}: {graph.app_name} plan digest changed"
                    )

            # Route one stable app through the HTTP frontend each
            # round so the serving surface soaks too.
            http_graph = arrivals[round_index % len(arrivals)][1]
            http_requests += 1
            body = _http_round_trip(port, graph_to_payload(http_graph))
            if body.get("ok"):
                http_ok += 1
            else:
                failures.append(f"round {round_index}: HTTP plan failed: {body.get('error')}")

            round_seconds = time.perf_counter() - round_started
            sample = rss_kib()
            rss_samples.append(sample)
            rounds.append(
                {
                    "round": round_index,
                    "requests": len(tickets),
                    "ok": ok,
                    "seconds": round_seconds,
                    "plans_per_sec": len(tickets) / round_seconds if round_seconds else 0.0,
                    "rss_kib": sample,
                }
            )
        total_seconds = time.perf_counter() - started
        invocations = service.planner_invocations

    warmup = min(args.warmup_rounds, len(rss_samples) - 1)
    baseline_kib = rss_samples[warmup]
    final_kib = rss_samples[-1]
    growth_kib = final_kib - baseline_kib
    within_ceiling = growth_kib <= args.rss_ceiling_mb * 1024
    if not within_ceiling:
        failures.append(
            f"RSS grew {growth_kib} KiB from round {warmup} baseline "
            f"(ceiling {args.rss_ceiling_mb} MiB)"
        )

    sanitizer_report = None
    if sanitizer is not None:
        sanitizer_report = sanitizer.report()
        for inversion in sanitizer.inversions:
            failures.append(
                "lock-order inversion: "
                f"{inversion.first.outer} -> {inversion.first.inner} "
                f"reversed by {inversion.second.thread}"
            )

    total_requests = sum(entry["requests"] for entry in rounds)
    total_ok = sum(entry["ok"] for entry in rounds)
    return {
        "benchmark": "soak",
        "smoke": args.smoke,
        "config": {
            "rounds": args.rounds,
            "users": args.users,
            "pool": args.pool,
            "churn": args.churn,
            "graph_size": args.graph_size,
            "workers": args.workers,
            "executor": executor,
            "executor_note": executor_note,
            "strategy": args.strategy,
            "warmup_rounds": warmup,
            "rss_ceiling_mb": args.rss_ceiling_mb,
            "seed": args.seed,
            "cpu_count": os.cpu_count(),
        },
        "totals": {
            "requests": total_requests,
            "ok": total_ok,
            "seconds": total_seconds,
            "plans_per_sec": total_requests / total_seconds if total_seconds else 0.0,
            "planner_invocations": invocations,
            "distinct_fingerprints": len(plan_digests),
        },
        "http": {"requests": http_requests, "ok": http_ok},
        "rss": {
            "baseline_kib": baseline_kib,
            "final_kib": final_kib,
            "peak_kib": max(rss_samples),
            "growth_kib": growth_kib,
            "within_ceiling": within_ceiling,
        },
        "rounds": rounds,
        "lock_sanitizer": sanitizer_report,
        "failures": failures,
        "passed": not failures and total_ok == total_requests and http_ok == http_requests,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="Soak the plan-serving stack under churn.")
    parser.add_argument("--smoke", action="store_true", help="short horizon for CI")
    parser.add_argument("--rounds", type=int, default=30)
    parser.add_argument("--users", type=int, default=24, help="stable-pool requests per round")
    parser.add_argument("--pool", type=int, default=8, help="distinct stable apps")
    parser.add_argument("--churn", type=int, default=2, help="fresh one-off apps per round")
    parser.add_argument("--graph-size", type=int, default=100, help="functions per app")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--executor", choices=("thread", "process"), default="process")
    parser.add_argument("--strategy", default="spectral")
    parser.add_argument("--warmup-rounds", type=int, default=2)
    parser.add_argument("--rss-ceiling-mb", type=int, default=192)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", type=Path, default=Path("BENCH_soak.json"))
    args = parser.parse_args(argv)
    if args.smoke:
        args.rounds, args.users, args.pool = 6, 12, 4
        args.churn, args.graph_size = 1, 36

    payload = run_soak(args)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    totals, rss = payload["totals"], payload["rss"]
    print(
        f"soak[{payload['config']['executor']}]: {totals['ok']}/{totals['requests']} plans ok "
        f"over {payload['config']['rounds']} rounds, "
        f"{totals['plans_per_sec']:.1f} plans/s sustained, "
        f"{payload['http']['ok']}/{payload['http']['requests']} HTTP round-trips ok"
    )
    print(
        f"rss: baseline {rss['baseline_kib'] / 1024:.1f} MiB, "
        f"final {rss['final_kib'] / 1024:.1f} MiB, "
        f"growth {rss['growth_kib'] / 1024:.1f} MiB "
        f"(ceiling {payload['config']['rss_ceiling_mb']} MiB, "
        f"{'within' if rss['within_ceiling'] else 'EXCEEDED'})"
    )
    for failure in payload["failures"]:
        print(f"FAILURE: {failure}", file=sys.stderr)
    print(f"wrote {args.output}")
    return 0 if payload["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
