"""Capstone bench — the reproduction ledger.

Checks every qualitative claim of the paper's evaluation against the
measurements the other benches share (the session-scoped sweeps), and
prints the pass/fail ledger.  This is the bench whose assertion *is* the
reproduction: all eight claims must hold at the active profile.
"""

from __future__ import annotations

from repro.experiments.claims import Measurements, check_claims
from repro.experiments.reporting import render_table
from repro.experiments.table1 import run_table1
from repro.workloads.netgen import NetgenConfig

from conftest import bench_profile


def test_claims_ledger(benchmark, single_user_rows, multiuser_rows, timing_rows):
    profile = bench_profile()
    configs = [
        NetgenConfig(n_nodes=s, n_edges=profile.edges_for(s), seed=profile.seed)
        for s in profile.graph_sizes
    ]
    table1 = run_table1(configs)
    measurements = Measurements(
        table1=table1,
        single_user=single_user_rows,
        multi_user=multiuser_rows,
        timing=timing_rows,
    )

    ledger = benchmark.pedantic(
        lambda: check_claims(measurements), rounds=3, iterations=1
    )

    print("\n=== Reproduction ledger: the paper's claims, checked by code ===")
    print(
        render_table(
            ["claim", "statement", "verdict", "evidence"],
            [
                [c.claim_id, c.statement, "PASS" if c.passed else "FAIL", c.detail]
                for c in ledger
            ],
        )
    )
    failures = [c for c in ledger if not c.passed]
    print(f"{len(ledger) - len(failures)}/{len(ledger)} claims reproduced")
    assert not failures, [c.claim_id for c in failures]
