"""Extension bench — the event simulator validates the analytic model.

Plans a multi-user system, executes the plan on the discrete-event
engine, and compares measured energy against the closed-form totals the
planner optimised (they must agree exactly under healthy conditions —
both are duration x power over the same durations).  Also reports the
simulator's event throughput, the figure that bounds how large a
scenario the engine can replay.
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.experiments.reporting import render_table
from repro.mec.scheme import PartitionedApplication
from repro.simulation import simulate_scheme
from repro.utils.timer import time_call
from repro.workloads.multiuser import build_mec_system, poisson_arrivals

from conftest import bench_profile


def test_simulation_validates_analytic_model(benchmark):
    profile = bench_profile()
    n_users = profile.user_counts[len(profile.user_counts) // 2]
    workload = build_mec_system(n_users, profile)
    planner = make_planner("spectral")
    result = planner.plan_system(workload.system, workload.call_graphs)

    apps = {
        user_id: PartitionedApplication(
            user_id, graph, result.user_plans[user_id].parts
        )
        for user_id, graph in workload.call_graphs.items()
    }
    placement = result.greedy.remote_parts

    report = benchmark.pedantic(
        lambda: simulate_scheme(workload.system, apps, placement),
        rounds=3,
        iterations=1,
    )
    report, seconds = time_call(simulate_scheme, workload.system, apps, placement)

    arrivals = poisson_arrivals(sorted(apps), rate=5.0, seed=profile.seed)
    staggered, _ = time_call(
        simulate_scheme, workload.system, apps, placement, (), None, arrivals
    )

    rows = [
        ["users", n_users, ""],
        ["events processed", report.events_processed, ""],
        ["events/second", f"{report.events_processed / max(seconds, 1e-9):,.0f}", ""],
        ["analytic E", result.consumption.energy, ""],
        ["simulated E (batch arrivals)", report.total_energy, ""],
        ["simulated E (Poisson arrivals)", staggered.total_energy, ""],
        ["makespan (batch)", report.makespan, "s"],
        ["makespan (Poisson)", staggered.makespan, "s"],
        ["server utilization (batch)", f"{100 * report.server_utilization:.1f}%", ""],
    ]
    print("\n=== Simulation vs analytic model ===")
    print(render_table(["metric", "value", "unit"], rows))

    # The validation: measured energy equals the optimised energy.
    assert abs(report.total_energy - result.consumption.energy) < 1e-6 * max(
        1.0, result.consumption.energy
    )
    # Arrival staggering cannot change energy (same work, same rates).
    assert abs(staggered.total_energy - report.total_energy) < 1e-6 * max(
        1.0, report.total_energy
    )
