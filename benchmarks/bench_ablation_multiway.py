"""Ablation — bisection vs recursive multiway partitioning.

The paper cuts each compressed sub-graph exactly once; the multiway
extension (:mod:`repro.spectral.recursive`) keeps splitting while splits
stay cheap, giving Algorithm 2 finer placement granularity.  This bench
measures what that granularity buys (combined objective) and costs
(planning time) on one workload.
"""

from __future__ import annotations

from repro.core.baselines import make_planner, spectral_cut_strategy
from repro.core.config import PlannerConfig
from repro.core.planner import OffloadingPlanner
from repro.experiments.reporting import render_table
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.utils.timer import time_call
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile


def test_ablation_multiway(benchmark):
    profile = bench_profile()
    size = profile.graph_sizes[len(profile.graph_sizes) // 2]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    device = MobileDevice("user00000", profile=profile.device)
    system = MECSystem(
        EdgeServer(profile.server_capacity_per_user), [UserContext(device, call_graph)]
    )

    def planner_for(k: int) -> OffloadingPlanner:
        if k <= 2:
            return make_planner("spectral")
        return OffloadingPlanner(
            spectral_cut_strategy(),
            config=PlannerConfig(multiway_parts=k),
            strategy_name=f"spectral-{k}way",
        )

    benchmark.pedantic(
        lambda: planner_for(4).plan_system(system, {"user00000": call_graph}),
        rounds=2,
        iterations=1,
    )

    rows = []
    combined: dict[int, float] = {}
    for k in (2, 4, 8):
        planner = planner_for(k)
        result, seconds = time_call(
            planner.plan_system, system, {"user00000": call_graph}
        )
        parts = sum(len(plan.parts) for plan in result.user_plans.values())
        combined[k] = result.consumption.combined()
        rows.append(
            [
                f"{k}-way",
                parts,
                result.consumption.energy,
                result.consumption.time,
                combined[k],
                f"{seconds:.3f}s",
            ]
        )
    print("\n=== Ablation: placement granularity (parts per sub-graph) ===")
    print(
        render_table(
            ["mode", "total parts", "energy E", "time T", "E+T", "plan time"], rows
        )
    )
    # Finer granularity must not substantially hurt the objective.
    assert combined[8] <= combined[2] * 1.1
