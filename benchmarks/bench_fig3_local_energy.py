"""Figure 3 — local energy consumption vs graph size (single user).

Regenerates the normalized local-energy series for the three algorithms
and benchmarks the full spectral pipeline on the largest graph size.

Paper's shape: local energy grows with graph size; our (spectral)
algorithm sits below the baselines at the large end.
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile, print_figure


def test_fig3_local_energy(benchmark, single_user_rows):
    profile = bench_profile()
    size = profile.graph_sizes[-1]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    device = MobileDevice("user00000", profile=profile.device)
    system = MECSystem(
        EdgeServer(profile.server_capacity_per_user), [UserContext(device, call_graph)]
    )
    planner = make_planner("spectral")

    benchmark.pedantic(
        lambda: planner.plan_system(system, {"user00000": call_graph}),
        rounds=3,
        iterations=1,
    )

    print_figure(
        "Figure 3: local energy consumption (single user)",
        single_user_rows,
        lambda r: r.local_energy,
    )
    # Shape checks: growth with size for every algorithm.
    by_alg: dict[str, list[float]] = {}
    for row in single_user_rows:
        by_alg.setdefault(row.algorithm, []).append(row.local_energy)
    for series in by_alg.values():
        assert series[-1] > series[0]
    # Ours below max-flow at the largest size (the paper's ordering).
    largest = {r.algorithm: r.local_energy for r in single_user_rows if r.scale == size}
    assert largest["spectral"] < largest["maxflow"]
