"""Ablation — cut algorithms head-to-head on identical sub-graphs.

Compares the cut weight and runtime of every bisection method in the
library (spectral sign split, spectral median split, Edmonds-Karp,
Dinic, Kernighan-Lin, KL + FM refinement, Stoer-Wagner global optimum)
on the same compressed components.  Stoer-Wagner provides the gold
standard the heuristics are judged against.
"""

from __future__ import annotations

from repro.compression import GraphCompressor
from repro.experiments.reporting import render_table
from repro.graphs.components import connected_components
from repro.mincut.dinic import dinic_max_flow
from repro.mincut.st_selection import maxflow_bisect, select_source_sink
from repro.mincut.stoer_wagner import stoer_wagner_min_cut
from repro.mincut.karger import karger_min_cut
from repro.partition.kernighan_lin import kernighan_lin_bisect
from repro.partition.refinement import fm_refine
from repro.partition.region_growth import region_growth_bisect
from repro.spectral.bisection import spectral_bisect
from repro.utils.timer import Stopwatch
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile


def _compressed_components():
    profile = bench_profile()
    size = profile.graph_sizes[-1]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    compressed = GraphCompressor().compress(call_graph.offloadable_subgraph())
    working = compressed.compressed.graph
    return [
        working.subgraph(c)
        for c in connected_components(working)
        if len(c) >= 3
    ]


def test_ablation_cut_algorithms(benchmark):
    components = _compressed_components()
    assert components, "workload produced no cuttable components"

    methods = {
        "spectral (sign)": lambda g: spectral_bisect(g).cut_value,
        "spectral (median)": lambda g: spectral_bisect(g, balanced=True).cut_value,
        "edmonds-karp": lambda g: maxflow_bisect(g).cut_value,
        "dinic": lambda g: dinic_max_flow(g, *select_source_sink(g)).value,
        "kernighan-lin": lambda g: kernighan_lin_bisect(g).cut_value,
        "kl + fm": lambda g: fm_refine(g, kernighan_lin_bisect(g).part_one)[2],
        "region growth": lambda g: region_growth_bisect(g).cut_value,
        "karger (mc)": lambda g: karger_min_cut(g, trials=40, seed=7).cut_value,
        "stoer-wagner (opt)": lambda g: stoer_wagner_min_cut(g)[0],
    }

    benchmark.pedantic(
        lambda: [spectral_bisect(g) for g in components], rounds=3, iterations=1
    )

    rows = []
    optimum = sum(stoer_wagner_min_cut(g)[0] for g in components)
    for name, method in methods.items():
        watch = Stopwatch()
        with watch:
            total = sum(method(g) for g in components)
        rows.append([name, total, total / optimum if optimum else 1.0, f"{watch.elapsed:.3f}s"])

    print("\n=== Ablation: cut algorithms on identical compressed components ===")
    print(render_table(["method", "total cut", "vs optimum", "time"], rows))

    totals = {row[0]: row[1] for row in rows}
    # The global optimum lower-bounds every bisection method.
    for name, value in totals.items():
        assert value >= totals["stoer-wagner (opt)"] - 1e-6, name
    # Spectral's sign cut must land under KL's balanced cut.
    assert totals["spectral (sign)"] <= totals["kernighan-lin"] + 1e-9
