"""Table I — graph compression results.

Regenerates the paper's compression table (function/edge counts before and
after compression for each network) and benchmarks the compression stage
on the largest quick-profile network.

Paper's claim: the scale is "reduced a lot", the ratio grows with graph
size, and the 5000-node network loses more than 90 % of its nodes.
"""

from __future__ import annotations

from repro.compression import GraphCompressor
from repro.experiments.reporting import render_table
from repro.experiments.table1 import run_table1
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile


def _configs() -> list[NetgenConfig]:
    profile = bench_profile()
    return [
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
        for size in profile.graph_sizes
    ]


def test_table1_compression(benchmark):
    configs = _configs()
    largest = configs[-1]
    graph = netgen_graph(largest)
    compressor = GraphCompressor()

    benchmark.pedantic(lambda: compressor.compress(graph), rounds=3, iterations=1)

    rows = run_table1(configs)
    print("\n=== Table I: graph compression results ===")
    print(
        render_table(
            [
                "Network",
                "function number",
                "edge number",
                "functions after",
                "edges after",
                "node reduction",
            ],
            [
                [
                    r.network,
                    r.function_number,
                    r.edge_number,
                    r.function_number_after,
                    r.edge_number_after,
                    f"{100 * r.node_reduction:.1f}%",
                ]
                for r in rows
            ],
        )
    )
    # Reproduction assertions: heavy reduction, growing with size.
    assert rows[-1].node_reduction > 0.75
    ratios = [r.function_number / r.function_number_after for r in rows]
    assert ratios[-1] > ratios[0]
