"""Ablation — the value of the compression stage (Algorithm 1).

DESIGN.md calls compression out as the design choice that makes
function-level offloading tractable: it shrinks the cut problem by an
order of magnitude *and* protects highly coupled functions from being
separated.  This bench cuts the same workload with and without
compression and reports both runtime and scheme quality.
"""

from __future__ import annotations

from repro.core.baselines import make_planner, spectral_cut_strategy
from repro.core.config import PlannerConfig
from repro.core.planner import OffloadingPlanner
from repro.experiments.reporting import render_table
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.utils.timer import time_call
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile


def test_ablation_compression(benchmark):
    profile = bench_profile()
    size = profile.graph_sizes[len(profile.graph_sizes) // 2]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    device = MobileDevice("user00000", profile=profile.device)
    system = MECSystem(
        EdgeServer(profile.server_capacity_per_user), [UserContext(device, call_graph)]
    )

    compressed_planner = make_planner("spectral")
    raw_planner = OffloadingPlanner(
        spectral_cut_strategy(),
        config=PlannerConfig(skip_compression=True),
        strategy_name="spectral-raw",
    )

    benchmark.pedantic(
        lambda: compressed_planner.plan_user(call_graph), rounds=3, iterations=1
    )

    rows = []
    for planner in (compressed_planner, raw_planner):
        result, seconds = time_call(
            planner.plan_system, system, {"user00000": call_graph}
        )
        plan = result.user_plans["user00000"]
        rows.append(
            [
                planner.strategy_name,
                plan.compressed_nodes,
                f"{seconds:.3f}s",
                result.consumption.energy,
                result.consumption.time,
            ]
        )
    print("\n=== Ablation: compression on vs off (same workload) ===")
    print(
        render_table(
            ["pipeline", "cut problem nodes", "plan time", "energy E", "time T"], rows
        )
    )
    # Compression must shrink the cut problem by a large factor.
    assert rows[0][1] * 3 <= rows[1][1]
