"""Mobility benchmark: handover disciplines on a vehicular corridor.

Not pytest-collected (``testpaths = ["tests"]``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_fleet_mobility.py --smoke

The workload engineers the trade-off the handover subsystem exists to
navigate.  Twelve vehicles circulate a single-lane ring road past four
evenly spaced roadside stations (:class:`~repro.mobility.models.VehicularCorridor`
under a :class:`~repro.mobility.latency.MobileLatencyMap`), each
offloading the same hot application, so every user's link decays and
recovers once per station spacing.  Four arms run the identical seeded
trace and differ only in the :class:`~repro.mobility.handover.HandoverPolicy`:

* ``never`` — keep the admission-time server; the link decays to the
  corridor's spatial-average RTT and E + T pays for it every tick;
* ``nearest`` (naive, hysteresis 0) — re-pin to the closest station the
  moment it wins; best possible link, but every boundary crossing is a
  priced migration and the debt compounds;
* ``damped`` (nearest with hysteresis) — only move when the gap beats
  the hysteresis margin; vehicles skip past marginal stations, roughly
  halving the moves for a modest link give-up;
* ``predictive`` — move off the telemetry's RTT *forecast* before the
  link breaches the threshold.

Emits ``BENCH_fleet_mobility.json``.  Unlike the timing benchmarks, the
headline claims are asserted — they must hold at any scale, on any
runner:

* the damped arm's tick-mean combined ``E + T`` (migration debt folded
  in by :meth:`~repro.fleet.fleet.EdgeFleet.total_consumption`) is
  *strictly lower* than both ``never``'s and naive ``nearest``'s;
* the damped arm executes *strictly fewer* handovers than the naive arm
  (hysteresis is what pays, not a different route);
* the same seed replays the identical handover sequence, tick for tick,
  across two independent runs (the subsystem's determinism contract).

``--smoke`` is accepted for CI symmetry with the other benchmarks; the
default workload is already tiny (seconds), so it changes nothing.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fleet import EdgeFleet, FingerprintAffinityRouting
from repro.fleet.migration import MigrationCostModel
from repro.mec.devices import MobileDevice
from repro.mobility import (
    MobileLatencyMap,
    MobilityField,
    evenly_spaced_stations,
    make_handover_policy,
    make_mobility_model,
)
from repro.workloads import synthesize_application
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import call_graph_from_dict, call_graph_to_dict

ARMS = {
    "never": ("never", {}),
    "nearest": ("nearest", {"hysteresis": 0.0}),
    "damped": ("nearest", {}),  # hysteresis from --hysteresis
    "predictive": ("predictive", {}),  # threshold from --threshold
}


def fresh_graph(app):
    """An independent copy of *app* (each admission owns its graph)."""
    return call_graph_from_dict(call_graph_to_dict(app))


def run_arm(arm: str, app, profile, args: argparse.Namespace) -> dict:
    """Drive one handover discipline over the seeded corridor trace."""
    policy_name, overrides = ARMS[arm]
    policy = make_handover_policy(
        policy_name,
        hysteresis=overrides.get("hysteresis", args.hysteresis),
        threshold=args.threshold,
        horizon=args.horizon,
    )
    model = make_mobility_model(
        "corridor", speed=args.speed, lanes=1, seed=args.seed
    )
    stations = evenly_spaced_stations(
        [f"edge-{i:02d}" for i in range(args.servers)]
    )
    field = MobilityField(model, stations)
    fleet = EdgeFleet(
        capacities=[args.capacity] * args.servers,
        routing=FingerprintAffinityRouting(latency_slack=args.latency_slack),
        latency=MobileLatencyMap(field, seconds_per_unit=args.rtt_scale),
        migration=MigrationCostModel(
            handoff_latency=args.handoff_latency, data_scale=args.data_scale
        ),
        forecaster=args.forecaster,
        handover=policy,
    )
    for i in range(args.users):
        fleet.admit(MobileDevice(f"u{i:02d}", profile=profile.device), fresh_graph(app))

    samples: list[float] = []
    rtts: list[float] = []
    sequence: list[tuple[int, str, str, str]] = []
    for _ in range(args.ticks):
        report = fleet.tick(args.dt)
        sequence.extend(
            (d.tick, d.user_id, d.source, d.target) for d in report.handovers
        )
        samples.append(fleet.total_consumption().combined())
        owned = [
            fleet.latency.rtt(user_id, server_id)
            for server_id, server in fleet.servers.items()
            for user_id in server.admitted
        ]
        rtts.append(sum(owned) / len(owned))

    migration = fleet.metrics.histogram("fleet_migration_cost")
    return {
        "arm": arm,
        "handovers": len(sequence),
        "mean_rtt": sum(rtts) / len(rtts),
        "migration_cost": migration.mean * migration.count,
        "final_combined": samples[-1],
        "mean_combined": sum(samples) / len(samples),
        "handover_sequence": [list(move) for move in sequence],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Handover policies on a vehicular corridor: E + T "
        "plus migration debt, per arm."
    )
    parser.add_argument("--smoke", action="store_true", help="accepted for CI symmetry")
    parser.add_argument("--users", type=int, default=12)
    parser.add_argument("--servers", type=int, default=4, help="roadside stations")
    parser.add_argument("--capacity", type=float, default=2000.0, help="per station")
    parser.add_argument("--ticks", type=int, default=30)
    parser.add_argument("--dt", type=float, default=1.0)
    parser.add_argument(
        "--speed", type=float, default=0.05,
        help="corridor speed: units of the square per simulated second",
    )
    parser.add_argument(
        "--rtt-scale", type=float, default=6.0,
        help="RTT seconds per unit of distance (the link-decay lever)",
    )
    parser.add_argument(
        "--hysteresis", type=float, default=1.8,
        help="damped arm: RTT-gap margin a move must beat",
    )
    parser.add_argument(
        "--threshold", type=float, default=1.8,
        help="predictive arm: forecasted-RTT trigger",
    )
    parser.add_argument("--horizon", type=int, default=3, help="forecast horizon")
    parser.add_argument(
        "--handoff-latency", type=float, default=0.2,
        help="migration cost model: control-plane delay charged per move",
    )
    parser.add_argument(
        "--data-scale", type=float, default=0.06,
        help="migration cost model: offloaded-input re-transmit scale",
    )
    parser.add_argument("--latency-slack", type=float, default=0.05)
    parser.add_argument("--forecaster", default="ewma")
    parser.add_argument("--graph-size", type=int, default=30, help="functions per app")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--app-seed", type=int, default=2, help="hot-app synthesis seed")
    parser.add_argument("--output", type=Path, default=Path("BENCH_fleet_mobility.json"))
    args = parser.parse_args(argv)

    profile = quick_profile()
    app = synthesize_application("hot", n_functions=args.graph_size, seed=args.app_seed)

    arms = {arm: run_arm(arm, app, profile, args) for arm in ARMS}
    never, naive, damped = arms["never"], arms["nearest"], arms["damped"]

    # The headline claims are asserted, not just recorded: hysteresis
    # must beat standing still AND chasing every station, with the
    # saving coming from fewer priced moves — or the benchmark fails.
    if damped["mean_combined"] >= never["mean_combined"]:
        raise RuntimeError(
            "damped handover must strictly beat never handing over on "
            f"tick-mean combined E + T: damped {damped['mean_combined']:.2f} "
            f"vs never {never['mean_combined']:.2f}"
        )
    if damped["mean_combined"] >= naive["mean_combined"]:
        raise RuntimeError(
            "damped handover must strictly beat naive nearest on "
            f"tick-mean combined E + T: damped {damped['mean_combined']:.2f} "
            f"vs naive {naive['mean_combined']:.2f}"
        )
    if damped["handovers"] >= naive["handovers"]:
        raise RuntimeError(
            "hysteresis must execute fewer handovers than naive nearest: "
            f"damped {damped['handovers']} vs naive {naive['handovers']}"
        )

    # Determinism contract: replaying the damped arm with the same seed
    # must reproduce the identical handover sequence, move for move.
    replay = run_arm("damped", app, profile, args)
    if replay["handover_sequence"] != damped["handover_sequence"]:
        raise RuntimeError(
            "same seed must replay the identical handover sequence: "
            f"{len(damped['handover_sequence'])} moves first run, "
            f"{len(replay['handover_sequence'])} second"
        )

    payload = {
        "benchmark": "fleet_mobility",
        "smoke": args.smoke,
        "config": {
            "users": args.users,
            "servers": args.servers,
            "capacity": args.capacity,
            "ticks": args.ticks,
            "dt": args.dt,
            "speed": args.speed,
            "rtt_scale": args.rtt_scale,
            "hysteresis": args.hysteresis,
            "threshold": args.threshold,
            "horizon": args.horizon,
            "handoff_latency": args.handoff_latency,
            "data_scale": args.data_scale,
            "latency_slack": args.latency_slack,
            "forecaster": args.forecaster,
            "graph_size": args.graph_size,
            "seed": args.seed,
            "app_seed": args.app_seed,
        },
        "arms": arms,
        "damped_vs_never": never["mean_combined"] - damped["mean_combined"],
        "damped_vs_nearest": naive["mean_combined"] - damped["mean_combined"],
        "handover_sequence_deterministic": True,
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    for arm in ARMS:
        row = arms[arm]
        print(
            f"{arm:>10}: mean E+T {row['mean_combined']:.2f} "
            f"(final {row['final_combined']:.2f}), "
            f"mean RTT {row['mean_rtt']:.3f}, "
            f"handovers {row['handovers']}, "
            f"migration cost {row['migration_cost']:.2f}"
        )
    print(
        f"damped hysteresis beats never by {payload['damped_vs_never']:.2f} "
        f"and naive nearest by {payload['damped_vs_nearest']:.2f} "
        f"on tick-mean combined E + T"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
