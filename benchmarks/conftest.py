"""Shared state for the benchmark suite.

The figure benches share one experiment sweep per family (Figs. 3-5 share
the single-user sweep; Figs. 6-8 the multi-user sweep) through
session-scoped fixtures, so the suite regenerates every figure while
running each underlying experiment exactly once.

Scales: the ``quick`` profile by default; set ``REPRO_FULL=1`` to run the
paper's full scales (hours of CPU).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.figures import (
    run_multiuser_energy_experiment,
    run_single_user_energy_experiment,
)
from repro.experiments.timing import run_timing_experiment
from repro.workloads.profiles import paper_profile, quick_profile


def bench_profile():
    """The active experiment profile (quick unless REPRO_FULL=1)."""
    if os.environ.get("REPRO_FULL") == "1":
        return paper_profile()
    return quick_profile()


@pytest.fixture(scope="session")
def profile():
    return bench_profile()


@pytest.fixture(scope="session")
def single_user_rows(profile):
    """One shared single-user sweep (Figs. 3, 4, 5)."""
    return run_single_user_energy_experiment(profile)


@pytest.fixture(scope="session")
def multiuser_rows(profile):
    """One shared multi-user sweep (Figs. 6, 7, 8)."""
    return run_multiuser_energy_experiment(profile)


@pytest.fixture(scope="session")
def timing_rows(profile):
    """One shared running-time sweep (Fig. 9)."""
    return run_timing_experiment(profile, repeats=2)


def print_figure(title: str, rows, value, scale_label: str = "scale") -> None:
    """Render one figure's normalized series like the paper's bar groups."""
    from repro.experiments.reporting import normalize_rows, render_table

    normalized = normalize_rows(rows, value)
    table = [
        [row.algorithm, getattr(row, scale_label), value(row), normalized[i]]
        for i, row in enumerate(rows)
    ]
    print(f"\n=== {title} ===")
    print(render_table(["algorithm", scale_label, "raw", "normalized"], table))
