"""Plan-service throughput: requests/sec and hit rate vs. pool size.

Not a paper artifact: pins the serving layer's performance on the
realistic pooled-app workload (many users, few distinct apps).  Each
round replays the same arrival trace through a *cold* service, so the
measured time covers 8 cold plans plus content-addressed cache hits for
everything else; the worker-count parametrisation shows how much of the
batching/queueing overhead the pool hides (planning is GIL-bound, so
this measures coordination cost, not parallel speed-up).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import make_planner
from repro.service import PlanService, ServiceConfig
from repro.workloads.multiuser import build_mec_system
from repro.workloads.traces import replay_arrivals

from conftest import bench_profile

POOL_SIZE = 8
REQUESTS = 96


@pytest.fixture(scope="module")
def arrival_trace():
    profile = dataclasses.replace(
        bench_profile(),
        distinct_graphs=POOL_SIZE,
        multiuser_graph_size=min(bench_profile().multiuser_graph_size, 120),
    )
    workload = build_mec_system(REQUESTS, profile)
    return replay_arrivals(workload, rate=200.0, seed=profile.seed)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_service_throughput_vs_pool_size(benchmark, arrival_trace, workers):
    config = ServiceConfig(workers=workers, max_queue_depth=REQUESTS + 1)

    def replay():
        with PlanService(make_planner("spectral"), config) as service:
            tickets = [service.submit(graph) for _, graph in arrival_trace]
            responses = [ticket.result() for ticket in tickets]
            return responses, service.planner_invocations

    responses, invocations = benchmark(replay)
    assert all(response.ok for response in responses)
    hit_rate = 1.0 - invocations / len(responses)
    assert hit_rate >= 0.9, f"hit rate {hit_rate:.3f} below 0.9"


def test_service_cache_amortization(benchmark, arrival_trace):
    """Warm-cache steady state: every request is a pure cache hit."""
    service = PlanService(make_planner("spectral"), ServiceConfig(workers=2))
    service.start()
    for _, graph in arrival_trace[:POOL_SIZE]:
        assert service.plan(graph).ok

    def replay_warm():
        return [service.plan(graph) for _, graph in arrival_trace]

    responses = benchmark(replay_warm)
    service.close()
    assert all(response.ok for response in responses)
    assert all(response.cached for response in responses)
