"""Extension bench — physical-parameter sensitivity and crossovers.

Not a paper figure: the evaluation an operator runs before believing one.
Sweeps transmission power and server capacity around the profile
defaults, reports the offloaded fraction at each point and the crossover
multiplier where offloading collapses.
"""

from __future__ import annotations

from repro.experiments.reporting import render_table
from repro.experiments.sensitivity import find_crossover, run_sensitivity_experiment

from conftest import bench_profile


def test_sensitivity_sweeps(benchmark):
    profile = bench_profile()
    size = profile.graph_sizes[len(profile.graph_sizes) // 2]

    benchmark.pedantic(
        lambda: run_sensitivity_experiment(
            "power_transmit", profile=profile, graph_size=size, multipliers=(1.0,)
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    crossovers = {}
    for parameter in ("power_transmit", "server_capacity"):
        sweep = run_sensitivity_experiment(
            parameter, profile=profile, graph_size=size
        )
        crossovers[parameter] = find_crossover(sweep)
        for r in sweep:
            rows.append(
                [
                    r.parameter,
                    r.multiplier,
                    f"{100 * r.offloaded_fraction:.1f}%",
                    r.total_energy,
                    r.total_time,
                ]
            )
    print("\n=== Sensitivity: offloading vs physical parameters ===")
    print(
        render_table(
            ["parameter", "x default", "offloaded", "total E", "total T"], rows
        )
    )
    for parameter, crossover in crossovers.items():
        note = f"collapses at {crossover}x" if crossover else "survives the sweep"
        print(f"{parameter}: {note}")

    by_parameter: dict[str, list[float]] = {}
    for row in rows:
        by_parameter.setdefault(row[0], []).append(float(row[2].rstrip("%")))
    # Raising radio cost can only reduce offloading.
    tx = by_parameter["power_transmit"]
    assert tx[0] >= tx[-1]
