"""Figure 7 — transmission energy consumption under multi-user conditions.

Regenerates the normalized transmission-energy series as user count grows
and benchmarks planning for the mid-size user count.

Paper's shape: transmission grows with user count; our algorithm
transmits less than Kernighan-Lin at every scale.
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.workloads.multiuser import build_mec_system

from conftest import bench_profile, print_figure


def test_fig7_multiuser_transmission_energy(benchmark, multiuser_rows):
    profile = bench_profile()
    n_users = profile.user_counts[len(profile.user_counts) // 2]
    workload = build_mec_system(n_users, profile)
    planner = make_planner("spectral")

    benchmark.pedantic(
        lambda: planner.plan_system(workload.system, workload.call_graphs),
        rounds=2,
        iterations=1,
    )

    print_figure(
        "Figure 7: transmission energy consumption (multi-user)",
        multiuser_rows,
        lambda r: r.transmission_energy,
    )
    by_scale: dict[int, dict[str, float]] = {}
    for row in multiuser_rows:
        by_scale.setdefault(row.scale, {})[row.algorithm] = row.transmission_energy
    for scale, algs in by_scale.items():
        assert algs["spectral"] <= algs["kl"] + 1e-9, f"KL beat spectral at {scale}"
