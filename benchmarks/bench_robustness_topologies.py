"""Extension bench — planner robustness across graph topologies.

The reproduction workloads are NETGEN-shaped (clustered, multi-component).
This bench re-runs the three-algorithm comparison on three classic random
models — structureless G(n, p), hub-dominated Barabási-Albert, and
small-world Watts-Strogatz — asking which conclusions survive a change
of topology and which are NETGEN artifacts.
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.experiments.reporting import render_table
from repro.experiments.topologies import (
    build_topology_graph,
    run_topology_experiment,
    winners_by_topology,
)
from repro.workloads.applications import call_graph_from_weighted_graph

from conftest import bench_profile


def test_robustness_across_topologies(benchmark):
    profile = bench_profile()
    size = profile.graph_sizes[min(1, len(profile.graph_sizes) - 1)]

    ba_graph = build_topology_graph(
        "barabasi-albert", size, profile.edges_for(size), profile.seed
    )
    ba_app = call_graph_from_weighted_graph(
        ba_graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    benchmark.pedantic(
        lambda: make_planner("spectral").plan_user(ba_app), rounds=3, iterations=1
    )

    rows = run_topology_experiment(profile, size=size)
    print("\n=== Robustness: three algorithms x four topologies ===")
    print(
        render_table(
            ["topology", "algorithm", "local E", "tx E", "total E", "E+T", "offloaded"],
            [
                [
                    r.topology,
                    r.algorithm,
                    r.local_energy,
                    r.transmission_energy,
                    r.total_energy,
                    r.combined,
                    r.offloaded_functions,
                ]
                for r in rows
            ],
        )
    )
    print("winner by combined objective:", winners_by_topology(rows))

    # Every planner handled every topology with a positive outcome.
    assert len(rows) == 4 * 3
    assert all(r.total_energy > 0 for r in rows)
