"""Fleet admission throughput and balance per routing policy.

Not a paper artifact: pins the fleet layer's behaviour on the pooled-app
workload.  Each round replays the same arrival trace through a *cold*
fleet, so the measured time covers the cold plans plus per-server
content-addressed cache hits, and the assertions pin the two properties
the routing policies are for — fingerprint affinity preserves the
single-server cache hit rate, and power-of-two-choices keeps the load
spread near-flat (max/mean <= 1.5).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.fleet import EdgeFleet, make_routing_policy
from repro.mec.devices import MobileDevice
from repro.workloads.multiuser import build_mec_system
from repro.workloads.traces import replay_arrivals

from conftest import bench_profile

POOL_SIZE = 6
REQUESTS = 48
SERVERS = 4


@pytest.fixture(scope="module")
def fleet_profile():
    return dataclasses.replace(
        bench_profile(),
        distinct_graphs=POOL_SIZE,
        multiuser_graph_size=min(bench_profile().multiuser_graph_size, 60),
    )


@pytest.fixture(scope="module")
def arrival_trace(fleet_profile):
    workload = build_mec_system(REQUESTS, fleet_profile)
    return replay_arrivals(workload, rate=200.0, seed=fleet_profile.seed)


@pytest.mark.parametrize(
    "policy", ["round-robin", "least-loaded", "power-of-two", "affinity"]
)
def test_fleet_admission_per_policy(benchmark, arrival_trace, fleet_profile, policy):
    capacity = fleet_profile.server_capacity_per_user * REQUESTS / SERVERS

    def replay():
        fleet = EdgeFleet(
            SERVERS, capacity, routing=make_routing_policy(policy, seed=1)
        )
        for user_id, graph in arrival_trace:
            fleet.admit(MobileDevice(user_id, profile=fleet_profile.device), graph)
        return fleet.stats(), fleet.total_consumption()

    stats, consumption = benchmark(replay)
    assert stats.users == REQUESTS
    assert stats.degraded_users == 0
    assert consumption.combined() > 0
    if policy == "power-of-two":
        assert stats.imbalance <= 1.5, f"max/mean {stats.imbalance:.2f} above 1.5"
    if policy == "affinity":
        single_rate = (REQUESTS - POOL_SIZE) / REQUESTS
        assert stats.cache_hit_rate >= single_rate - 0.10, (
            f"affinity hit rate {stats.cache_hit_rate:.3f} more than 10% below "
            f"the single-server rate {single_rate:.3f}"
        )
