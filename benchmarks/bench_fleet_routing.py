"""Fleet admission throughput, balance, and rebalance economics.

Not a paper artifact: pins the fleet layer's behaviour on the pooled-app
workload.  Each round replays the same arrival trace through a *cold*
fleet, so the measured time covers the cold plans plus per-server
content-addressed cache hits.  Three families of assertions:

* routing — fingerprint affinity preserves the single-server cache hit
  rate, and power-of-two-choices keeps the load spread near-flat
  (max/mean <= 1.5);
* heterogeneous pools — on skewed capacities, least-loaded routing on
  *utilisation* beats least-loaded on raw user counts on both fleet-wide
  ``E + T`` and utilisation spread;
* rebalancing — cost-aware rebalance performs strictly fewer moves than
  unconditional flattening and lands at equal-or-better net ``E + T``
  once every move is charged its migration cost.

Set ``REPRO_FLEET_TINY=1`` for the CI smoke sweep (smaller trace, same
assertions).
"""

from __future__ import annotations

import dataclasses
import os

import pytest

from repro.fleet import EdgeFleet, make_routing_policy
from repro.mec.devices import MobileDevice
from repro.workloads.multiuser import build_mec_system
from repro.workloads.traces import replay_arrivals

from conftest import bench_profile

TINY = os.environ.get("REPRO_FLEET_TINY") == "1"
POOL_SIZE = 4 if TINY else 6
REQUESTS = 24 if TINY else 48
SERVERS = 4

HETERO_CAPACITIES = (250.0, 500.0, 1000.0)
HETERO_REQUESTS = 18 if TINY else 36


@pytest.fixture(scope="module")
def fleet_profile():
    return dataclasses.replace(
        bench_profile(),
        distinct_graphs=POOL_SIZE,
        multiuser_graph_size=min(bench_profile().multiuser_graph_size, 60),
    )


@pytest.fixture(scope="module")
def arrival_trace(fleet_profile):
    workload = build_mec_system(REQUESTS, fleet_profile)
    return replay_arrivals(workload, rate=200.0, seed=fleet_profile.seed)


@pytest.mark.parametrize(
    "policy", ["round-robin", "least-loaded", "power-of-two", "affinity"]
)
def test_fleet_admission_per_policy(benchmark, arrival_trace, fleet_profile, policy):
    capacity = fleet_profile.server_capacity_per_user * REQUESTS / SERVERS

    def replay():
        fleet = EdgeFleet(
            SERVERS, capacity, routing=make_routing_policy(policy, seed=1)
        )
        for user_id, graph in arrival_trace:
            fleet.admit(MobileDevice(user_id, profile=fleet_profile.device), graph)
        return fleet.stats(), fleet.total_consumption()

    stats, consumption = benchmark(replay)
    assert stats.users == REQUESTS
    assert stats.degraded_users == 0
    assert consumption.combined() > 0
    if policy == "power-of-two":
        assert stats.imbalance <= 1.5, f"max/mean {stats.imbalance:.2f} above 1.5"
    if policy == "affinity":
        single_rate = (REQUESTS - POOL_SIZE) / REQUESTS
        assert stats.cache_hit_rate >= single_rate - 0.10, (
            f"affinity hit rate {stats.cache_hit_rate:.3f} more than 10% below "
            f"the single-server rate {single_rate:.3f}"
        )


@pytest.fixture(scope="module")
def hetero_profile():
    return dataclasses.replace(
        bench_profile(),
        distinct_graphs=POOL_SIZE,
        multiuser_graph_size=min(bench_profile().multiuser_graph_size, 40),
        seed=2019,
    )


@pytest.fixture(scope="module")
def hetero_trace(hetero_profile):
    workload = build_mec_system(HETERO_REQUESTS, hetero_profile)
    return replay_arrivals(workload, rate=200.0, seed=hetero_profile.seed)


def _hetero_replay(trace, profile, balance_on):
    fleet = EdgeFleet(
        len(HETERO_CAPACITIES),
        sum(HETERO_CAPACITIES) / len(HETERO_CAPACITIES),
        capacities=HETERO_CAPACITIES,
        routing=make_routing_policy("least-loaded", balance_on=balance_on),
    )
    for user_id, graph in trace:
        fleet.admit(MobileDevice(user_id, profile=profile.device), graph)
    return fleet.stats(), fleet.total_consumption()


def test_fleet_heterogeneous_utilisation_routing(benchmark, hetero_trace, hetero_profile):
    """On a 250/500/1000 pool, routing on utilisation beats user counts."""
    util_stats, util_consumption = benchmark(
        lambda: _hetero_replay(hetero_trace, hetero_profile, "utilisation")
    )
    users_stats, users_consumption = _hetero_replay(hetero_trace, hetero_profile, "users")
    assert util_stats.users == users_stats.users == HETERO_REQUESTS
    assert util_consumption.combined() <= users_consumption.combined(), (
        f"utilisation routing E+T {util_consumption.combined():.3f} worse than "
        f"user-count routing {users_consumption.combined():.3f}"
    )
    assert util_stats.utilisation_imbalance <= users_stats.utilisation_imbalance, (
        f"utilisation spread {util_stats.utilisation_imbalance:.2f} worse than "
        f"user-count routing's {users_stats.utilisation_imbalance:.2f}"
    )


def _rebalance_replay(trace, profile, cost_aware):
    # Affinity routing concentrates each app's users on one server, so the
    # replay ends skewed and the rebalance pass has real work to refuse.
    capacity = profile.server_capacity_per_user * REQUESTS / SERVERS
    fleet = EdgeFleet(
        SERVERS, capacity, routing=make_routing_policy("affinity")
    )
    for user_id, graph in trace:
        fleet.admit(MobileDevice(user_id, profile=profile.device), graph)
    moves = fleet.rebalance(cost_aware=cost_aware)
    return moves, fleet.stats(), fleet.total_consumption()


def test_fleet_cost_aware_rebalance(benchmark, arrival_trace, fleet_profile):
    """Cost-aware rebalance moves strictly less and nets equal-or-better E+T."""
    aware_moves, aware_stats, aware_consumption = benchmark(
        lambda: _rebalance_replay(arrival_trace, fleet_profile, True)
    )
    free_moves, free_stats, free_consumption = _rebalance_replay(
        arrival_trace, fleet_profile, False
    )
    assert free_moves > 0, "affinity skew should leave the free pass work to do"
    assert aware_moves < free_moves, (
        f"cost-aware made {aware_moves} moves, free made {free_moves}"
    )
    assert aware_consumption.combined() <= free_consumption.combined(), (
        f"cost-aware net E+T {aware_consumption.combined():.3f} worse than "
        f"free rebalance's {free_consumption.combined():.3f} (which pays "
        f"migration for every move)"
    )
    assert aware_stats.users == free_stats.users == REQUESTS
