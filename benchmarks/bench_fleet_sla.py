"""SLA benchmark: proactive vs reactive rebalancing on a hotspot trace.

Not pytest-collected (``testpaths = ["tests"]``) — run it directly:

    PYTHONPATH=src python benchmarks/bench_fleet_sla.py --smoke

The trace engineers the failure mode the forecast subsystem exists to
prevent.  A heterogeneous pool (two big servers, one tiny one) receives
one affinity-pinned hot application, so every arrival lands on the same
big server and its utilisation climbs tick by tick.  Every user carries
a :class:`~repro.forecast.sla.UserSLA` deadline calibrated from a solo
probe admission.  After each admission tick one arm rebalances
*reactively* (``cost_aware=False``: flatten user counts, blind to
capacity and deadlines — it happily parks users on the tiny server,
whose waiting times then blow their SLAs) and the other *proactively*
(``proactive=True``: drain the server whose *forecasted* utilisation
breaches the threshold, but only onto servers that stay under it and
remain SLA-feasible for the moved user — the tiny server is never a
destination).

Emits ``BENCH_fleet_sla.json`` with the violation *rate* per arm as the
first-class column.  Unlike the timing benchmarks, the headline claims
are asserted — they must hold at any scale, on any runner:

* the proactive arm's SLA-violation rate is *strictly lower* than the
  reactive arm's;
* at *equal-or-lower* total migration cost (every move in both arms is
  priced through the fleet's ``MigrationCostModel``).

``--smoke`` is accepted for CI symmetry with the other benchmarks; the
default workload is already tiny (seconds), so it changes nothing.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.fleet import EdgeFleet, FingerprintAffinityRouting
from repro.forecast import UserSLA
from repro.mec.devices import MobileDevice
from repro.workloads import synthesize_application
from repro.workloads.profiles import quick_profile
from repro.workloads.traces import call_graph_from_dict, call_graph_to_dict


def fresh_graph(app):
    """An independent copy of *app* (each admission owns its graph)."""
    return call_graph_from_dict(call_graph_to_dict(app))


def calibrate_deadline(app, profile, capacity: float, margin: float) -> tuple[float, float]:
    """(solo cost, deadline): one user alone on one big server, scaled.

    The margin buys room for co-resident users, link charges and one
    migration; what it must *not* absorb is the waiting-time blow-up of
    an overloaded tiny server — that is the violation being measured.
    """
    probe = EdgeFleet(capacities=[capacity])
    probe.admit(MobileDevice("probe", profile=profile.device), fresh_graph(app))
    breakdown = probe.total_consumption().per_user["probe"]
    solo = probe.config.objective.combine(breakdown.energy, breakdown.time)
    return solo, margin * solo


def run_arm(
    mode: str,
    app,
    profile,
    capacities: list[float],
    n_users: int,
    ticks: int,
    deadline: float,
    forecaster: str,
    horizon: int,
    threshold: float,
) -> dict:
    """Replay the hotspot trace with one rebalancing discipline."""
    fleet = EdgeFleet(
        capacities=capacities,
        routing=FingerprintAffinityRouting(),
        forecaster=forecaster,
    )
    sla = UserSLA(deadline)
    per_tick = n_users // ticks
    admitted = 0
    for tick in range(ticks):
        batch = per_tick + (n_users % ticks if tick == ticks - 1 else 0)
        for _ in range(batch):
            fleet.admit(
                MobileDevice(f"u{admitted}", profile=profile.device),
                fresh_graph(app),
                sla=sla,
            )
            admitted += 1
        if mode == "reactive":
            fleet.rebalance(cost_aware=False)
        else:
            fleet.rebalance(
                proactive=True, horizon=horizon, utilisation_threshold=threshold
            )
    report = fleet.sla_report()
    migration = fleet.metrics.histogram("fleet_migration_cost")
    consumption = fleet.total_consumption()
    return {
        "mode": mode,
        "users": report.users,
        "violations": report.violations,
        "violation_rate": report.violation_rate,
        "worst_excess": report.worst_excess,
        "rejections": report.rejections,
        "degraded": fleet.stats().degraded_users,
        "moves": fleet.metrics.counter("fleet_migrations").value,
        "migration_cost": migration.mean * migration.count,
        "combined": consumption.combined(),
        "per_server_users": {
            server_id: server.users
            for server_id, server in sorted(fleet.servers.items())
        },
        "per_server_utilisation": {
            server_id: server.utilisation
            for server_id, server in sorted(fleet.servers.items())
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Proactive vs reactive rebalancing under per-user SLAs."
    )
    parser.add_argument("--smoke", action="store_true", help="accepted for CI symmetry")
    parser.add_argument("--users", type=int, default=12)
    parser.add_argument("--ticks", type=int, default=4, help="admission batches")
    parser.add_argument("--graph-size", type=int, default=30, help="functions per app")
    parser.add_argument(
        "--capacities",
        type=str,
        default="2000,120,2000",
        help="per-server capacities; the tiny middle server is the trap",
    )
    parser.add_argument(
        "--margin",
        type=float,
        default=1.1,
        help="deadline = margin x solo probe cost",
    )
    parser.add_argument("--forecaster", default="auto")
    parser.add_argument("--horizon", type=int, default=3)
    parser.add_argument("--utilisation-threshold", type=float, default=0.8)
    parser.add_argument("--seed", type=int, default=2, help="hot-app synthesis seed")
    parser.add_argument("--output", type=Path, default=Path("BENCH_fleet_sla.json"))
    args = parser.parse_args(argv)

    capacities = [float(value) for value in args.capacities.split(",")]
    profile = dataclasses.replace(
        quick_profile(), distinct_graphs=4, multiuser_graph_size=args.graph_size
    )
    app = synthesize_application("hot", n_functions=args.graph_size, seed=args.seed)
    solo, deadline = calibrate_deadline(app, profile, max(capacities), args.margin)

    arms = {
        mode: run_arm(
            mode,
            app,
            profile,
            capacities,
            args.users,
            args.ticks,
            deadline,
            args.forecaster,
            args.horizon,
            args.utilisation_threshold,
        )
        for mode in ("reactive", "proactive")
    }
    reactive, proactive = arms["reactive"], arms["proactive"]

    # The headline claims are asserted, not just recorded: forecasting
    # must strictly reduce the violation rate without paying more in
    # migrations, or the benchmark fails.
    if proactive["violation_rate"] >= reactive["violation_rate"]:
        raise RuntimeError(
            "proactive rebalancing must strictly lower the SLA-violation "
            f"rate: proactive {proactive['violation_rate']:.3f} vs "
            f"reactive {reactive['violation_rate']:.3f}"
        )
    if proactive["migration_cost"] > reactive["migration_cost"]:
        raise RuntimeError(
            "proactive rebalancing must not pay more in migrations: "
            f"proactive {proactive['migration_cost']:.2f} vs "
            f"reactive {reactive['migration_cost']:.2f}"
        )

    payload = {
        "benchmark": "fleet_sla",
        "smoke": args.smoke,
        "config": {
            "users": args.users,
            "ticks": args.ticks,
            "graph_size": args.graph_size,
            "capacities": capacities,
            "margin": args.margin,
            "forecaster": args.forecaster,
            "horizon": args.horizon,
            "utilisation_threshold": args.utilisation_threshold,
            "seed": args.seed,
        },
        "solo_cost": solo,
        "sla_deadline": deadline,
        "arms": arms,
        "violation_rate_drop": reactive["violation_rate"] - proactive["violation_rate"],
        "migration_cost_saving": reactive["migration_cost"] - proactive["migration_cost"],
    }
    args.output.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"deadline {deadline:.2f} (solo {solo:.2f} x margin {args.margin})")
    for mode in ("reactive", "proactive"):
        arm = arms[mode]
        print(
            f"{mode:>9}: viol rate {arm['violation_rate']:.3f} "
            f"({arm['violations']}/{arm['users']}), moves {arm['moves']}, "
            f"migration cost {arm['migration_cost']:.2f}, "
            f"users/server {list(arm['per_server_users'].values())}"
        )
    print(
        f"proactive lowers the violation rate by "
        f"{payload['violation_rate_drop']:.3f} and saves "
        f"{payload['migration_cost_saving']:.2f} in migration cost"
    )
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
