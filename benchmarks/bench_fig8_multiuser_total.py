"""Figure 8 — total energy consumption under multi-user conditions.

Regenerates the normalized total-energy series (the paper's headline
multi-user result) and benchmarks the Kernighan-Lin pipeline for
comparison with Figure 6's spectral benchmark.
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.workloads.multiuser import build_mec_system

from conftest import bench_profile, print_figure


def test_fig8_multiuser_total_energy(benchmark, multiuser_rows):
    profile = bench_profile()
    n_users = profile.user_counts[-1]
    workload = build_mec_system(n_users, profile)
    planner = make_planner("kl")

    benchmark.pedantic(
        lambda: planner.plan_system(workload.system, workload.call_graphs),
        rounds=2,
        iterations=1,
    )

    print_figure(
        "Figure 8: total energy consumption (multi-user)",
        multiuser_rows,
        lambda r: r.total_energy,
    )
    by_scale: dict[int, dict[str, float]] = {}
    for row in multiuser_rows:
        by_scale.setdefault(row.scale, {})[row.algorithm] = row.total_energy
    # Ours wins total energy at every user count (the paper's Fig. 8).
    for scale, algs in by_scale.items():
        assert algs["spectral"] <= min(algs["maxflow"], algs["kl"]) + 1e-9, (
            f"spectral not best at {scale} users: {algs}"
        )
