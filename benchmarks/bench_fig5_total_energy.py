"""Figure 5 — total energy consumption vs graph size (single user).

Regenerates the normalized total-energy series (the paper's headline
single-user result: our algorithm's total consumption "is also the
least") and benchmarks the complete three-algorithm comparison at one
representative size.
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile, print_figure


def test_fig5_total_energy(benchmark, single_user_rows):
    profile = bench_profile()
    size = profile.graph_sizes[len(profile.graph_sizes) // 2]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    device = MobileDevice("user00000", profile=profile.device)
    system = MECSystem(
        EdgeServer(profile.server_capacity_per_user), [UserContext(device, call_graph)]
    )
    planners = [make_planner(name) for name in ("spectral", "maxflow", "kl")]

    def compare_all():
        return [p.plan_system(system, {"user00000": call_graph}) for p in planners]

    benchmark.pedantic(compare_all, rounds=2, iterations=1)

    print_figure(
        "Figure 5: total energy consumption (single user)",
        single_user_rows,
        lambda r: r.total_energy,
    )
    # The headline: ours has the least mean total energy at every size.
    by_scale: dict[int, dict[str, float]] = {}
    for row in single_user_rows:
        by_scale.setdefault(row.scale, {})[row.algorithm] = row.total_energy
    wins = sum(
        1
        for algs in by_scale.values()
        if algs["spectral"] <= min(algs["maxflow"], algs["kl"]) + 1e-9
    )
    # Averages over few repetitions stay noisy at small scales; require a
    # majority of sizes, and strictly the largest.
    assert wins >= (len(by_scale) + 1) // 2
    largest = by_scale[max(by_scale)]
    assert largest["spectral"] <= min(largest["maxflow"], largest["kl"]) + 1e-9
