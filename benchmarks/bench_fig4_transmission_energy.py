"""Figure 4 — transmission energy consumption vs graph size (single user).

Regenerates the normalized transmission-energy series and benchmarks the
cut stage (compression + spectral bisection of every sub-graph) that the
transmission cost depends on.

Paper's shape: transmission energy grows with graph size; our algorithm
transmits less than Kernighan-Lin everywhere (the spectral cut is the
lighter cut).
"""

from __future__ import annotations

from repro.core.baselines import make_planner
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph

from conftest import bench_profile, print_figure


def test_fig4_transmission_energy(benchmark, single_user_rows):
    profile = bench_profile()
    size = profile.graph_sizes[-1]
    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    planner = make_planner("spectral")

    benchmark.pedantic(lambda: planner.plan_user(call_graph), rounds=3, iterations=1)

    print_figure(
        "Figure 4: transmission energy consumption (single user)",
        single_user_rows,
        lambda r: r.transmission_energy,
    )
    # Ours transmits less than KL at every size (cut quality).
    by_scale: dict[int, dict[str, float]] = {}
    for row in single_user_rows:
        by_scale.setdefault(row.scale, {})[row.algorithm] = row.transmission_energy
    for scale, algs in by_scale.items():
        assert algs["spectral"] <= algs["kl"] + 1e-9, f"KL beat spectral at {scale}"
