"""A miniature mobile-application IR (the Soot substitute's input).

The paper feeds compiled executables to Soot to recover functions and their
calling relationships.  We model the part of an executable that matters to
COPMECS: per-function instruction lists whose instructions either burn
cycles, move data to another function, or touch device-local resources.

The IR is deliberately simple — the downstream algorithms only consume the
*extracted* weighted graph — but it is a real substrate: the extractor in
:mod:`repro.callgraph.extractor` performs an honest static pass over these
instructions, and tests build small binaries by hand to check extraction.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Opcode(enum.Enum):
    """Instruction kinds recognised by the static extractor."""

    COMPUTE = "compute"
    """Burn ``amount`` units of computation in this function."""

    CALL = "call"
    """Invoke ``target``, shipping ``amount`` units of argument data."""

    RETURN_DATA = "return_data"
    """Return ``amount`` units of data to the caller (attributed to the
    most recent call edge by the extractor)."""

    SENSOR_READ = "sensor_read"
    """Read a device sensor — makes the function unoffloadable."""

    IO_ACCESS = "io_access"
    """Touch local storage / peripherals — makes the function unoffloadable."""

    UI_RENDER = "ui_render"
    """Draw to the device screen — makes the function unoffloadable."""


_LOCAL_OPCODES = frozenset({Opcode.SENSOR_READ, Opcode.IO_ACCESS, Opcode.UI_RENDER})


@dataclass(frozen=True)
class Instruction:
    """One IR instruction.

    ``target`` is only meaningful for :attr:`Opcode.CALL`; ``amount`` is the
    computation units for ``COMPUTE``, the payload size for ``CALL`` and
    ``RETURN_DATA``, and ignored for device-local opcodes.
    """

    opcode: Opcode
    amount: float = 0.0
    target: str | None = None

    def __post_init__(self) -> None:
        if self.opcode is Opcode.CALL and not self.target:
            raise ValueError("CALL instruction requires a target function name")
        if self.opcode is not Opcode.CALL and self.target is not None:
            raise ValueError(f"{self.opcode.name} instruction cannot have a target")
        if self.amount < 0:
            raise ValueError(f"instruction amount must be >= 0, got {self.amount!r}")

    @property
    def touches_device(self) -> bool:
        """Whether this instruction binds the function to the device."""
        return self.opcode in _LOCAL_OPCODES


@dataclass
class FunctionBytecode:
    """The compiled body of one function.

    ``component`` names the application component (activity/service/
    package) the function belongs to; Algorithm 1 compresses each
    component's sub-graph independently.
    """

    name: str
    component: str = "main"
    instructions: list[Instruction] = field(default_factory=list)

    def compute(self, amount: float) -> "FunctionBytecode":
        """Append a COMPUTE instruction (builder style, returns self)."""
        self.instructions.append(Instruction(Opcode.COMPUTE, amount))
        return self

    def call(self, target: str, payload: float) -> "FunctionBytecode":
        """Append a CALL instruction shipping *payload* units of data."""
        self.instructions.append(Instruction(Opcode.CALL, payload, target))
        return self

    def return_data(self, payload: float) -> "FunctionBytecode":
        """Append a RETURN_DATA instruction."""
        self.instructions.append(Instruction(Opcode.RETURN_DATA, payload))
        return self

    def sensor_read(self) -> "FunctionBytecode":
        """Append a SENSOR_READ instruction (pins the function locally)."""
        self.instructions.append(Instruction(Opcode.SENSOR_READ))
        return self

    def io_access(self) -> "FunctionBytecode":
        """Append an IO_ACCESS instruction (pins the function locally)."""
        self.instructions.append(Instruction(Opcode.IO_ACCESS))
        return self

    def ui_render(self) -> "FunctionBytecode":
        """Append a UI_RENDER instruction (pins the function locally)."""
        self.instructions.append(Instruction(Opcode.UI_RENDER))
        return self

    @property
    def total_compute(self) -> float:
        """Total computation units in this function's body."""
        return sum(i.amount for i in self.instructions if i.opcode is Opcode.COMPUTE)

    @property
    def touches_device(self) -> bool:
        """Whether any instruction binds this function to the device."""
        return any(i.touches_device for i in self.instructions)

    def call_targets(self) -> list[str]:
        """Names of functions invoked from this body, in call-site order."""
        return [i.target for i in self.instructions if i.opcode is Opcode.CALL and i.target]


@dataclass
class ApplicationBinary:
    """A compiled application: a set of function bodies and an entry point."""

    name: str
    functions: dict[str, FunctionBytecode] = field(default_factory=dict)
    entry_point: str = "main"

    def add_function(self, bytecode: FunctionBytecode) -> FunctionBytecode:
        """Register a function body; duplicate names are rejected."""
        if bytecode.name in self.functions:
            raise ValueError(f"function {bytecode.name!r} already defined")
        self.functions[bytecode.name] = bytecode
        return bytecode

    def define(self, name: str, component: str = "main") -> FunctionBytecode:
        """Create, register and return an empty function body."""
        return self.add_function(FunctionBytecode(name=name, component=component))

    def validate(self) -> None:
        """Raise ``ValueError`` on dangling call targets or a bad entry point.

        A binary whose entry point is missing, or that calls an undefined
        function, would have failed to link; the extractor refuses it.
        """
        if self.entry_point not in self.functions:
            raise ValueError(f"entry point {self.entry_point!r} is not defined")
        for bytecode in self.functions.values():
            for target in bytecode.call_targets():
                if target not in self.functions:
                    raise ValueError(
                        f"function {bytecode.name!r} calls undefined function {target!r}"
                    )

    @property
    def function_count(self) -> int:
        """Number of functions in the binary."""
        return len(self.functions)
