"""Rules deciding which functions are unoffloadable.

Section II: "Some functions participate in large amount of data exchange
with other functions and their execution highly depends on local data
interaction like sensors' data reading, local I/O devices accessing, etc.
We call these functions unoffloaded functions."

Two signals are implemented:

* **device binding** — any instruction that touches a sensor, local I/O or
  the UI pins the function to the device;
* **data locality** — a function whose per-unit-of-computation traffic
  exceeds ``max_traffic_ratio`` is so chatty that shipping it would always
  lose; the policy may optionally pin such functions too (off by default,
  because the compression stage already fuses chatty neighborhoods).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.bytecode import ApplicationBinary, Opcode


@dataclass(frozen=True)
class OffloadabilityPolicy:
    """Configuration for the unoffloadable-function classifier."""

    pin_device_bound: bool = True
    """Pin functions containing sensor/I-O/UI instructions."""

    pin_entry_point: bool = True
    """Pin the application entry point (it drives the device-side UI loop)."""

    max_traffic_ratio: float | None = None
    """If set, pin functions whose (traffic / max(computation, 1)) exceeds
    this ratio."""

    pinned_names: frozenset[str] = field(default_factory=frozenset)
    """Explicitly pinned function names (analyst overrides)."""


def classify_offloadability(
    binary: ApplicationBinary, policy: OffloadabilityPolicy | None = None
) -> dict[str, bool]:
    """Return ``{function name: offloadable?}`` for every function in *binary*."""
    policy = policy or OffloadabilityPolicy()
    traffic: dict[str, float] = {name: 0.0 for name in binary.functions}
    for bytecode in binary.functions.values():
        pending_callee: str | None = None
        for instruction in bytecode.instructions:
            if instruction.opcode is Opcode.CALL and instruction.target:
                traffic[bytecode.name] += instruction.amount
                traffic[instruction.target] += instruction.amount
                pending_callee = instruction.target
            elif instruction.opcode is Opcode.RETURN_DATA and pending_callee is None:
                # Return data flows to this function's caller; attribute to
                # the function itself (callers accumulate via their CALLs).
                traffic[bytecode.name] += instruction.amount

    result: dict[str, bool] = {}
    for name, bytecode in binary.functions.items():
        offloadable = True
        if policy.pin_device_bound and bytecode.touches_device:
            offloadable = False
        if policy.pin_entry_point and name == binary.entry_point:
            offloadable = False
        if name in policy.pinned_names:
            offloadable = False
        if offloadable and policy.max_traffic_ratio is not None:
            compute = max(bytecode.total_compute, 1.0)
            if traffic[name] / compute > policy.max_traffic_ratio:
                offloadable = False
        result[name] = offloadable
    return result
