"""A plain-text interchange format for function call graphs.

Users with access to a real static analyzer (Soot, or any call-graph
dumper) can export to this format and feed the result straight into the
planner.  The format is line-oriented and diff-friendly:

.. code-block:: text

    # comments and blank lines are ignored
    app photo-assistant
    func main ui 5.0 pinned
    func decode media 120.0
    func upload_log net 2.5
    flow main decode 10.0
    flow decode upload_log 3.0

* ``app NAME`` — optional, names the application (first occurrence wins);
* ``func NAME COMPONENT COMPUTATION [pinned]`` — declares a function;
  ``pinned`` marks it unoffloadable;
* ``flow A B AMOUNT`` — declares communication between two functions
  (repeats accumulate, like multiple call sites).
"""

from __future__ import annotations

from pathlib import Path
from collections.abc import Iterable

from repro.callgraph.model import FunctionCallGraph


def parse_call_graph_text(lines: Iterable[str]) -> FunctionCallGraph:
    """Parse the text format into a :class:`FunctionCallGraph`.

    Malformed lines raise ``ValueError`` with the offending line number.
    Flows referencing undeclared functions are rejected (declare all
    ``func`` lines first — the format is single-pass).
    """
    fcg: FunctionCallGraph | None = None
    declared: set[str] = set()
    pending_flows: list[tuple[int, str, str, float]] = []
    app_name = "app"

    for number, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        keyword = parts[0]

        if keyword == "app":
            if len(parts) != 2:
                raise ValueError(f"line {number}: 'app' takes exactly one name")
            if fcg is None:
                app_name = parts[1]
            continue

        if keyword == "func":
            if len(parts) not in (4, 5):
                raise ValueError(
                    f"line {number}: expected 'func NAME COMPONENT COMPUTATION [pinned]'"
                )
            if fcg is None:
                fcg = FunctionCallGraph(app_name)
            name, component = parts[1], parts[2]
            try:
                computation = float(parts[3])
            except ValueError as exc:
                raise ValueError(f"line {number}: bad computation {parts[3]!r}") from exc
            pinned = False
            if len(parts) == 5:
                if parts[4] != "pinned":
                    raise ValueError(f"line {number}: unknown flag {parts[4]!r}")
                pinned = True
            if name in declared:
                raise ValueError(f"line {number}: duplicate function {name!r}")
            fcg.add_function(
                name, computation=computation, component=component, offloadable=not pinned
            )
            declared.add(name)
            continue

        if keyword == "flow":
            if len(parts) != 4:
                raise ValueError(f"line {number}: expected 'flow A B AMOUNT'")
            try:
                amount = float(parts[3])
            except ValueError as exc:
                raise ValueError(f"line {number}: bad amount {parts[3]!r}") from exc
            pending_flows.append((number, parts[1], parts[2], amount))
            continue

        raise ValueError(f"line {number}: unknown keyword {keyword!r}")

    if fcg is None:
        raise ValueError("no functions declared")

    for number, a, b, amount in pending_flows:
        for endpoint in (a, b):
            if endpoint not in declared:
                raise ValueError(f"line {number}: flow references undeclared {endpoint!r}")
        fcg.add_data_flow(a, b, amount)
    return fcg


def format_call_graph_text(fcg: FunctionCallGraph) -> str:
    """Serialise *fcg* back to the text format (round-trips with parse)."""
    lines = [f"app {fcg.app_name}"]
    for name in fcg.functions():
        info = fcg.info(name)
        flag = " pinned" if not info.offloadable else ""
        lines.append(f"func {name} {info.component} {info.computation}{flag}")
    for u, v, weight in fcg.graph.edges():
        lines.append(f"flow {u} {v} {weight}")
    return "\n".join(lines) + "\n"


def load_call_graph_text(path: str | Path) -> FunctionCallGraph:
    """Read a call graph from a text-format file."""
    return parse_call_graph_text(Path(path).read_text().splitlines())


def save_call_graph_text(fcg: FunctionCallGraph, path: str | Path) -> None:
    """Write a call graph to a text-format file."""
    Path(path).write_text(format_call_graph_text(fcg))
