"""Static extraction of the function data-flow graph (the Soot substitute).

Given an :class:`~repro.callgraph.bytecode.ApplicationBinary`, the extractor
performs one linear pass over every function body and produces the weighted
function data flow graph of Section II:

* node weight   — the function's total COMPUTE amount;
* edge weight   — accumulated CALL payloads between the two functions, plus
  RETURN_DATA payloads attributed to the most recent call site (this mirrors
  Figure 1 of the paper, where ``a = f2()`` contributes ``|a|`` to the
  ``f1 - f2`` edge);
* offloadability — decided by :mod:`repro.callgraph.offloadability`.
"""

from __future__ import annotations

from repro.callgraph.bytecode import ApplicationBinary, Opcode
from repro.callgraph.model import FunctionCallGraph
from repro.callgraph.offloadability import OffloadabilityPolicy, classify_offloadability


def extract_call_graph(
    binary: ApplicationBinary, policy: OffloadabilityPolicy | None = None
) -> FunctionCallGraph:
    """Extract the function data flow graph from *binary*.

    The binary is validated first (dangling call targets are rejected).
    Data flows between a pair of functions accumulate over all call sites,
    in both directions, onto a single undirected edge.
    """
    binary.validate()
    offloadable = classify_offloadability(binary, policy)

    fcg = FunctionCallGraph(binary.name)
    for name, bytecode in binary.functions.items():
        fcg.add_function(
            name,
            computation=bytecode.total_compute,
            component=bytecode.component,
            offloadable=offloadable[name],
        )

    # Pass 1: caller-side payloads. Each CALL contributes its argument
    # payload; every callee's pending return payload is attached to the
    # *most recent* call edge into it (resolved in pass 2).
    flows: dict[frozenset[str], float] = {}
    return_payload = {
        name: sum(
            i.amount for i in bytecode.instructions if i.opcode is Opcode.RETURN_DATA
        )
        for name, bytecode in binary.functions.items()
    }
    call_count: dict[str, int] = {name: 0 for name in binary.functions}
    for name, bytecode in binary.functions.items():
        for instruction in bytecode.instructions:
            if instruction.opcode is not Opcode.CALL or instruction.target is None:
                continue
            call_count[instruction.target] += 1
            key = frozenset((name, instruction.target))
            flows[key] = flows.get(key, 0.0) + instruction.amount

    # Pass 2: spread each callee's return payload evenly over its incoming
    # call edges (a callee with no caller keeps its data on-device).
    for name, bytecode in binary.functions.items():
        callers = call_count[name]
        if callers == 0 or return_payload[name] == 0.0:
            continue
        per_call = return_payload[name] / callers
        for caller, caller_bytecode in binary.functions.items():
            hits = sum(1 for t in caller_bytecode.call_targets() if t == name)
            if hits == 0:
                continue
            key = frozenset((caller, name))
            flows[key] = flows.get(key, 0.0) + per_call * hits

    for key, amount in flows.items():
        endpoints = sorted(key)
        if len(endpoints) != 2:
            # Recursive self-call: internal traffic, never crosses the cut.
            continue
        if amount > 0:
            fcg.add_data_flow(endpoints[0], endpoints[1], amount)
    return fcg
