"""A dynamic interpreter for the bytecode IR (profiling substitute).

The static extractor (:mod:`repro.callgraph.extractor`) derives the
function data flow graph from code; real deployments often *profile*
instead.  This interpreter executes an
:class:`~repro.callgraph.bytecode.ApplicationBinary` from its entry point
— every CALL invokes the target body once, depth-first, like a concrete
run — and measures executed computation per function and traffic per
function pair.

The test suite asserts that, for non-recursive binaries whose functions
are reachable from the entry point, the dynamic profile agrees exactly
with the static extraction — the classic static-vs-dynamic analysis
cross-check, here certifying the Soot substitute from a second direction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.callgraph.bytecode import ApplicationBinary, Opcode


@dataclass
class ExecutionProfile:
    """What one run of the application measured."""

    compute_per_function: dict[str, float] = field(default_factory=dict)
    traffic_per_pair: dict[frozenset[str], float] = field(default_factory=dict)
    call_count: dict[str, int] = field(default_factory=dict)
    device_touches: dict[str, int] = field(default_factory=dict)
    max_call_depth: int = 0

    @property
    def total_compute(self) -> float:
        """Total executed computation units."""
        return sum(self.compute_per_function.values())

    @property
    def total_traffic(self) -> float:
        """Total transferred data units."""
        return sum(self.traffic_per_pair.values())

    def traffic_between(self, a: str, b: str) -> float:
        """Measured traffic between two functions (0 if never spoke)."""
        return self.traffic_per_pair.get(frozenset((a, b)), 0.0)


class BytecodeInterpreter:
    """Depth-first concrete executor for application binaries."""

    def __init__(self, binary: ApplicationBinary, max_depth: int = 10_000) -> None:
        binary.validate()
        self.binary = binary
        self.max_depth = max_depth

    def run(self) -> ExecutionProfile:
        """Execute from the entry point and return the measured profile."""
        profile = ExecutionProfile()
        self._execute(self.binary.entry_point, profile, depth=1, caller=None)
        return profile

    def _execute(
        self,
        function_name: str,
        profile: ExecutionProfile,
        depth: int,
        caller: str | None,
    ) -> float:
        """Run one function body; returns the data it sends back up."""
        if depth > self.max_depth:
            raise RecursionError(
                f"call depth exceeded {self.max_depth} at {function_name!r} "
                "(recursive binary?)"
            )
        profile.max_call_depth = max(profile.max_call_depth, depth)
        profile.call_count[function_name] = profile.call_count.get(function_name, 0) + 1

        bytecode = self.binary.functions[function_name]
        returned = 0.0
        for instruction in bytecode.instructions:
            if instruction.opcode is Opcode.COMPUTE:
                profile.compute_per_function[function_name] = (
                    profile.compute_per_function.get(function_name, 0.0)
                    + instruction.amount
                )
            elif instruction.opcode is Opcode.CALL and instruction.target:
                self._record_traffic(
                    profile, function_name, instruction.target, instruction.amount
                )
                child_return = self._execute(
                    instruction.target, profile, depth + 1, caller=function_name
                )
                self._record_traffic(
                    profile, function_name, instruction.target, child_return
                )
            elif instruction.opcode is Opcode.RETURN_DATA:
                returned += instruction.amount
            elif instruction.touches_device:
                profile.device_touches[function_name] = (
                    profile.device_touches.get(function_name, 0) + 1
                )
        return returned

    @staticmethod
    def _record_traffic(
        profile: ExecutionProfile, a: str, b: str, amount: float
    ) -> None:
        if a == b or amount <= 0:
            return
        key = frozenset((a, b))
        profile.traffic_per_pair[key] = profile.traffic_per_pair.get(key, 0.0) + amount


def profile_application(binary: ApplicationBinary) -> ExecutionProfile:
    """Convenience wrapper: execute *binary* once and return the profile."""
    return BytecodeInterpreter(binary).run()
