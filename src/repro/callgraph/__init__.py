"""Application model: function data-flow graphs and their extraction.

The paper obtains each application's function call relationships with Soot
from compiled executables (Section II).  Soot and real APKs are not
available here, so this package provides the closest synthetic equivalent:

* :mod:`repro.callgraph.bytecode` — a miniature mobile-app IR in which a
  function is a list of instructions (compute, call-with-payload, sensor
  read, local I/O, return-with-payload);
* :mod:`repro.callgraph.extractor` — a static analyzer that walks that IR
  and produces the weighted function data-flow graph the algorithms
  consume, exactly the artifact Soot would have produced;
* :mod:`repro.callgraph.offloadability` — the rule set that marks functions
  as unoffloadable (sensor access, local I/O, UI interaction);
* :mod:`repro.callgraph.model` — the :class:`FunctionCallGraph` wrapper
  carrying per-function metadata on top of the graph substrate.
"""

from repro.callgraph.bytecode import (
    ApplicationBinary,
    FunctionBytecode,
    Instruction,
    Opcode,
)
from repro.callgraph.extractor import extract_call_graph
from repro.callgraph.interpreter import (
    BytecodeInterpreter,
    ExecutionProfile,
    profile_application,
)
from repro.callgraph.model import FunctionCallGraph, FunctionInfo
from repro.callgraph.offloadability import (
    OffloadabilityPolicy,
    classify_offloadability,
)
from repro.callgraph.textformat import (
    format_call_graph_text,
    load_call_graph_text,
    parse_call_graph_text,
    save_call_graph_text,
)

__all__ = [
    "Opcode",
    "Instruction",
    "FunctionBytecode",
    "ApplicationBinary",
    "extract_call_graph",
    "BytecodeInterpreter",
    "ExecutionProfile",
    "profile_application",
    "FunctionCallGraph",
    "FunctionInfo",
    "OffloadabilityPolicy",
    "classify_offloadability",
    "parse_call_graph_text",
    "format_call_graph_text",
    "load_call_graph_text",
    "save_call_graph_text",
]
