"""Function call graph model: the artifact the offloading pipeline consumes.

A :class:`FunctionCallGraph` is a weighted undirected graph (node weight =
computation, edge weight = communication, per Section II of the paper) plus
per-function metadata: which component the function belongs to and whether
it may be offloaded.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator

from repro.graphs.weighted_graph import WeightedGraph


@dataclass(frozen=True)
class FunctionInfo:
    """Metadata for one function node."""

    name: str
    computation: float
    component: str = "main"
    offloadable: bool = True


class FunctionCallGraph:
    """The function data flow graph ``G^i = (V^i, F^i)`` of one application.

    Wraps a :class:`WeightedGraph` and maintains the ``V_c`` (must run
    locally) / ``V_s`` (offloadable) split of Section II.

    >>> fcg = FunctionCallGraph("demo")
    >>> _ = fcg.add_function("main", computation=1.0, offloadable=False)
    >>> _ = fcg.add_function("fft", computation=50.0)
    >>> fcg.add_data_flow("main", "fft", amount=10.0)
    >>> sorted(fcg.offloadable_functions())
    ['fft']
    """

    def __init__(self, app_name: str = "app") -> None:
        self.app_name = app_name
        self._graph = WeightedGraph()
        self._info: dict[str, FunctionInfo] = {}

    @classmethod
    def from_parts(
        cls,
        app_name: str,
        graph: WeightedGraph,
        info: dict[str, FunctionInfo],
    ) -> "FunctionCallGraph":
        """Reassemble a call graph from a prebuilt graph and metadata map.

        Codec entry point (shared-memory transfer, serialization): *graph*
        and *info* are adopted as-is, so the caller is responsible for
        their consistency — every graph node must appear in *info* with a
        matching computation weight, and iteration orders are taken
        verbatim (decoders reconstruct insertion order deliberately).
        """
        if set(info) != set(graph.node_list()):
            raise ValueError("info keys must match graph nodes exactly")
        fcg = cls(app_name)
        fcg._graph = graph
        fcg._info = info
        return fcg

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_function(
        self,
        name: str,
        computation: float,
        component: str = "main",
        offloadable: bool = True,
    ) -> FunctionInfo:
        """Register a function node; returns its :class:`FunctionInfo`."""
        info = FunctionInfo(
            name=name,
            computation=float(computation),
            component=component,
            offloadable=offloadable,
        )
        self._graph.add_node(name, weight=info.computation, component=component)
        self._info[name] = info
        return info

    def add_data_flow(self, u: str, v: str, amount: float) -> None:
        """Record *amount* units of communication between functions u and v.

        Repeated calls accumulate (multiple call sites between the same
        functions add up their traffic).
        """
        self._graph.add_edge(u, v, weight=amount)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> WeightedGraph:
        """The underlying weighted graph (shared, not a copy)."""
        return self._graph

    def info(self, name: str) -> FunctionInfo:
        """Return metadata for function *name*."""
        if name not in self._info:
            raise KeyError(f"function {name!r} does not exist")
        return self._info[name]

    def functions(self) -> Iterator[str]:
        """Iterate over function names."""
        return iter(self._info)

    @property
    def function_count(self) -> int:
        """Number of functions."""
        return len(self._info)

    def offloadable_functions(self) -> list[str]:
        """Names of functions in ``V_s`` (may be offloaded)."""
        return [name for name, info in self._info.items() if info.offloadable]

    def unoffloadable_functions(self) -> list[str]:
        """Names of functions in ``V_c`` (pinned to the device)."""
        return [name for name, info in self._info.items() if not info.offloadable]

    def components(self) -> list[str]:
        """Distinct component names, in first-seen order."""
        seen: list[str] = []
        for info in self._info.values():
            if info.component not in seen:
                seen.append(info.component)
        return seen

    def component_members(self, component: str) -> list[str]:
        """Function names belonging to *component*."""
        return [name for name, info in self._info.items() if info.component == component]

    def total_computation(self) -> float:
        """Total computation weight across all functions."""
        return self._graph.total_node_weight()

    def total_communication(self) -> float:
        """Total communication weight across all data flows."""
        return self._graph.total_edge_weight()

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def offloadable_subgraph(self) -> WeightedGraph:
        """Induced subgraph over ``V_s`` only.

        This is Line 1 of Algorithm 1 ("remove_unoffloaded"): unoffloadable
        functions are excluded before compression; their cost is accounted
        separately by the MEC energy model as mandatory local work.
        """
        return self._graph.subgraph(self.offloadable_functions())

    def local_anchor_traffic(self, nodes: Iterable[str]) -> float:
        """Communication between *nodes* and the unoffloadable functions.

        When a group of offloadable functions executes remotely, every data
        flow it has with a pinned-local function crosses the wireless link;
        the greedy scheme generator charges that traffic via this helper.
        """
        pinned = set(self.unoffloadable_functions())
        total = 0.0
        for node in nodes:
            for neighbor, weight in self._graph.neighbor_items(node):
                if neighbor in pinned:
                    total += weight
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FunctionCallGraph(app={self.app_name!r}, functions={self.function_count}, "
            f"flows={self._graph.edge_count})"
        )
