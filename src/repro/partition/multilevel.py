"""Multilevel Kernighan-Lin bisection (extension baseline).

The strongest classical bisection heuristic family: coarsen with heavy
edge matching, bisect the small coarse graph with KL, then walk back up
the levels projecting the partition and polishing with FM refinement at
every level.  Offered as a fourth cut strategy for ablations — it is what
a modern implementation of the paper's KL baseline would actually use.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.graphs.coarsening import CoarseningLevel, coarsen_graph
from repro.graphs.weighted_graph import WeightedGraph
from repro.partition.kernighan_lin import kernighan_lin_bisect
from repro.partition.refinement import fm_refine

NodeId = Hashable


@dataclass
class MultilevelResult:
    """Outcome of a multilevel bisection."""

    part_one: set[NodeId]
    part_two: set[NodeId]
    cut_value: float
    levels: int


def multilevel_kl_bisect(
    graph: WeightedGraph,
    target_nodes: int = 32,
    seed: int = 7,
    refine_passes: int = 3,
) -> MultilevelResult:
    """Coarsen, bisect, uncoarsen-and-refine.

    Degenerate graphs (< 2 nodes) return the trivial partition, matching
    the behaviour of the flat bisection routines.
    """
    if graph.node_count == 0:
        raise ValueError("cannot bisect an empty graph")
    if graph.node_count == 1:
        return MultilevelResult(set(graph.nodes()), set(), 0.0, 0)

    levels = coarsen_graph(graph, target_nodes=target_nodes, seed=seed)
    coarsest = levels[-1].graph if levels else graph

    initial = kernighan_lin_bisect(coarsest, seed=seed)
    part_one = set(initial.part_one)

    # Project back up, refining at every level.
    for level in reversed(levels):
        finer = _finer_graph(levels, level, graph)
        part_one = {
            node for node in finer.nodes() if level.parent[node] in part_one
        }
        part_one, _, _ = fm_refine(
            finer, part_one, max_passes=refine_passes, min_side_fraction=0.05
        )

    part_two = set(graph.nodes()) - part_one
    if not part_one or not part_two:
        # Refinement collapsed a side (possible on near-disconnected
        # inputs): fall back to flat KL, which guarantees balance.
        flat = kernighan_lin_bisect(graph, seed=seed)
        return MultilevelResult(
            flat.part_one, flat.part_two, flat.cut_value, len(levels)
        )
    return MultilevelResult(
        part_one=part_one,
        part_two=part_two,
        cut_value=graph.cut_weight(part_one),
        levels=len(levels),
    )


def _finer_graph(
    levels: list[CoarseningLevel], level: CoarseningLevel, original: WeightedGraph
) -> WeightedGraph:
    """The graph one step finer than *level* in the hierarchy."""
    index = levels.index(level)
    if index == 0:
        return original
    return levels[index - 1].graph
