"""Greedy region-growing bisection (the simplest credible baseline).

Grow a region from a seed by repeatedly absorbing the frontier node with
the strongest attachment to the region (heaviest total edge weight into
it), stopping at half the total node weight.  This is the BFS-flavoured
baseline graph-partitioning surveys use as the floor every serious method
must beat; including it calibrates how much the paper's machinery
actually buys over near-zero effort.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


@dataclass
class RegionGrowthResult:
    """Outcome of a region-growing bisection."""

    part_one: set[NodeId]
    part_two: set[NodeId]
    cut_value: float
    seed_node: NodeId


def region_growth_bisect(
    graph: WeightedGraph, seed_node: NodeId | None = None
) -> RegionGrowthResult:
    """Bisect by growing a half-weight region from *seed_node*.

    The default seed is the max-weighted-degree node (same rule as the
    max-flow baseline's source).  Ties in attachment break toward the
    earlier-discovered frontier node, keeping the result deterministic.
    """
    if graph.node_count == 0:
        raise ValueError("cannot bisect an empty graph")
    nodes = graph.node_list()
    if graph.node_count == 1:
        return RegionGrowthResult(set(nodes), set(), 0.0, nodes[0])

    if seed_node is None:
        seed_node = max(
            nodes, key=lambda n: (graph.weighted_degree(n), graph.degree(n))
        )
    elif not graph.has_node(seed_node):
        raise KeyError(f"seed node {seed_node!r} does not exist")

    half_weight = graph.total_node_weight() / 2.0
    region = {seed_node}
    region_weight = graph.node_weight(seed_node)
    attachment: dict[NodeId, float] = {}
    order: dict[NodeId, int] = {}
    counter = 0
    for neighbor, weight in graph.neighbor_items(seed_node):
        attachment[neighbor] = weight
        order[neighbor] = counter
        counter += 1

    while region_weight < half_weight and attachment:
        best = max(attachment, key=lambda n: (attachment[n], -order[n]))
        del attachment[best]
        region.add(best)
        region_weight += graph.node_weight(best)
        for neighbor, weight in graph.neighbor_items(best):
            if neighbor in region:
                continue
            if neighbor not in attachment:
                order[neighbor] = counter
                counter += 1
                attachment[neighbor] = 0.0
            attachment[neighbor] += weight

    # A region that swallowed everything (disconnected remainders with
    # zero weight, tiny graphs) must still leave a non-empty complement.
    if len(region) == graph.node_count:
        region.discard(nodes[-1] if nodes[-1] != seed_node else nodes[0])

    part_two = set(nodes) - region
    return RegionGrowthResult(
        part_one=region,
        part_two=part_two,
        cut_value=graph.cut_weight(region),
        seed_node=seed_node,
    )
