"""Kernighan-Lin two-way graph partitioning, from scratch.

The algorithm alternates *passes*; each pass tentatively swaps every node
pair exactly once (greedily, highest gain first, swapped nodes locked) and
then rolls back to the prefix of swaps with the best cumulative gain.
Passes repeat until a pass yields no positive gain.

Pair selection uses the standard near-optimal simplification: take the
unlocked node with the best D-value on each side and evaluate the pair
gain ``g = D_a + D_b - 2 w(a, b)`` over the top few candidates per side,
which keeps a pass at O(n^2) instead of O(n^3) while matching exact pair
selection on all but adversarial inputs.  Determinism: every scan breaks
ties by node insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph
from repro.utils.rng import RandomSource

NodeId = Hashable

_CANDIDATES_PER_SIDE = 8


@dataclass
class KLResult:
    """Outcome of a Kernighan-Lin bisection."""

    part_one: set[NodeId]
    part_two: set[NodeId]
    cut_value: float
    passes: int


def kernighan_lin_bisect(
    graph: WeightedGraph,
    max_passes: int = 10,
    seed: int | None = None,
) -> KLResult:
    """Bisect *graph* into two (near-)equal halves minimising edge cut.

    The initial split alternates nodes by insertion order (or by a seeded
    shuffle when *seed* is given, matching the randomised restarts used in
    the literature).  Sizes differ by at most one node.
    """
    nodes = graph.node_list()
    n = len(nodes)
    if n == 0:
        raise ValueError("cannot bisect an empty graph")
    if n == 1:
        return KLResult(set(nodes), set(), 0.0, 0)

    if seed is not None:
        nodes = RandomSource(seed).shuffled(nodes)
    side: dict[NodeId, int] = {node: i % 2 for i, node in enumerate(nodes)}

    passes = 0
    for _ in range(max_passes):
        passes += 1
        improved = _run_pass(graph, side)
        if not improved:
            break

    part_one = {node for node, s in side.items() if s == 0}
    part_two = {node for node, s in side.items() if s == 1}
    return KLResult(part_one, part_two, graph.cut_weight(part_one), passes)


def _d_values(graph: WeightedGraph, side: dict[NodeId, int]) -> dict[NodeId, float]:
    """D(v) = external cost - internal cost for every node."""
    d: dict[NodeId, float] = {}
    for node in graph.nodes():
        external = 0.0
        internal = 0.0
        for neighbor, weight in graph.neighbor_items(node):
            if side[neighbor] == side[node]:
                internal += weight
            else:
                external += weight
        d[node] = external - internal
    return d


def _run_pass(graph: WeightedGraph, side: dict[NodeId, int]) -> bool:
    """One KL pass; mutates *side* if a positive-gain prefix exists."""
    d = _d_values(graph, side)
    locked: set[NodeId] = set()
    swaps: list[tuple[NodeId, NodeId, float]] = []

    pair_budget = min(
        sum(1 for s in side.values() if s == 0),
        sum(1 for s in side.values() if s == 1),
    )
    for _ in range(pair_budget):
        pair = _best_pair(graph, side, d, locked)
        if pair is None:
            break
        a, b, gain = pair
        swaps.append((a, b, gain))
        locked.add(a)
        locked.add(b)
        _update_d_after_swap(graph, side, d, a, b, locked)

    # Best prefix of cumulative gains.
    best_total = 0.0
    best_k = 0
    running = 0.0
    for k, (_, _, gain) in enumerate(swaps, start=1):
        running += gain
        if running > best_total + 1e-12:
            best_total = running
            best_k = k

    if best_k == 0:
        return False
    for a, b, _ in swaps[:best_k]:
        side[a], side[b] = side[b], side[a]
    return True


def _best_pair(
    graph: WeightedGraph,
    side: dict[NodeId, int],
    d: dict[NodeId, float],
    locked: set[NodeId],
) -> tuple[NodeId, NodeId, float] | None:
    """Highest-gain unlocked (a in part 0, b in part 1) pair.

    Scans the top ``_CANDIDATES_PER_SIDE`` D-values per side, which makes
    missing the true best pair possible only when the pair's edge weight
    dwarfs its D-values — exactly the pairs not worth swapping.
    """
    side_zero = [node for node in graph.nodes() if side[node] == 0 and node not in locked]
    side_one = [node for node in graph.nodes() if side[node] == 1 and node not in locked]
    if not side_zero or not side_one:
        return None
    side_zero.sort(key=lambda node: -d[node])
    side_one.sort(key=lambda node: -d[node])

    best: tuple[NodeId, NodeId, float] | None = None
    for a in side_zero[:_CANDIDATES_PER_SIDE]:
        for b in side_one[:_CANDIDATES_PER_SIDE]:
            weight_ab = graph.edge_weight(a, b) if graph.has_edge(a, b) else 0.0
            gain = d[a] + d[b] - 2.0 * weight_ab
            if best is None or gain > best[2]:
                best = (a, b, gain)
    return best


def _update_d_after_swap(
    graph: WeightedGraph,
    side: dict[NodeId, int],
    d: dict[NodeId, float],
    a: NodeId,
    b: NodeId,
    locked: set[NodeId],
) -> None:
    """Incremental D updates after tentatively swapping *a* and *b*.

    Standard KL update: for an unlocked x on a's side,
    ``D'(x) = D(x) + 2 w(x, a) - 2 w(x, b)`` (symmetrically for b's side).
    The swap itself is *not* applied to ``side`` — KL evaluates all swaps
    against the original partition with locked nodes virtually exchanged.
    """
    for x in graph.nodes():
        if x in locked or x == a or x == b:
            continue
        w_xa = graph.edge_weight(x, a) if graph.has_edge(x, a) else 0.0
        w_xb = graph.edge_weight(x, b) if graph.has_edge(x, b) else 0.0
        if side[x] == side[a]:
            d[x] += 2.0 * w_xa - 2.0 * w_xb
        else:
            d[x] += 2.0 * w_xb - 2.0 * w_xa
