"""Graph partitioning heuristics (the paper's second baseline).

Kernighan-Lin (1970) is the classic two-way partition-improvement
heuristic the paper compares against; :mod:`repro.partition.refinement`
adds a Fiduccia-Mattheyses-style single-move refinement pass used both as
an ablation and as an optional polish step after spectral bisection.
"""

from repro.partition.kernighan_lin import KLResult, kernighan_lin_bisect
from repro.partition.multilevel import MultilevelResult, multilevel_kl_bisect
from repro.partition.refinement import fm_refine
from repro.partition.region_growth import RegionGrowthResult, region_growth_bisect

__all__ = [
    "kernighan_lin_bisect",
    "KLResult",
    "fm_refine",
    "multilevel_kl_bisect",
    "MultilevelResult",
    "region_growth_bisect",
    "RegionGrowthResult",
]
