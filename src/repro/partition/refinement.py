"""Fiduccia-Mattheyses-style single-move refinement.

Unlike KL's pairwise swaps, FM moves one node at a time across the cut,
subject to a balance constraint.  The pipeline offers it as an optional
polish step after spectral bisection (``PlannerConfig.refine_cuts``) and
the ablation bench measures how much cut weight it recovers.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def fm_refine(
    graph: WeightedGraph,
    part_one: Iterable[NodeId],
    max_passes: int = 5,
    min_side_fraction: float = 0.1,
) -> tuple[set[NodeId], set[NodeId], float]:
    """Refine a bipartition by greedy single-node moves.

    Returns ``(part_one, part_two, cut_value)``.  A move is admissible
    when the shrinking side keeps at least ``min_side_fraction`` of the
    nodes (so refinement cannot collapse the partition to one side, which
    would trivially zero the cut and destroy the offloading decision).
    """
    side: dict[NodeId, int] = {}
    one = set(part_one)
    for node in graph.nodes():
        side[node] = 0 if node in one else 1
    n = graph.node_count
    if n <= 2:
        part_two = {node for node in graph.nodes() if side[node] == 1}
        return one, part_two, graph.cut_weight(one)

    min_side = max(1, int(min_side_fraction * n))

    for _ in range(max_passes):
        moved = _fm_pass(graph, side, min_side)
        if not moved:
            break

    final_one = {node for node, s in side.items() if s == 0}
    final_two = set(graph.nodes()) - final_one
    return final_one, final_two, graph.cut_weight(final_one)


def _gain(graph: WeightedGraph, side: dict[NodeId, int], node: NodeId) -> float:
    """Cut reduction if *node* moved to the other side."""
    external = 0.0
    internal = 0.0
    for neighbor, weight in graph.neighbor_items(node):
        if side[neighbor] == side[node]:
            internal += weight
        else:
            external += weight
    return external - internal


def _fm_pass(graph: WeightedGraph, side: dict[NodeId, int], min_side: int) -> bool:
    """One FM pass with rollback to the best prefix; returns improvement."""
    locked: set[NodeId] = set()
    history: list[NodeId] = []
    gains: list[float] = []
    counts = [sum(1 for s in side.values() if s == 0), sum(1 for s in side.values() if s == 1)]

    while len(locked) < graph.node_count:
        best_node: NodeId | None = None
        best_gain = -float("inf")
        for node in graph.nodes():
            if node in locked:
                continue
            if counts[side[node]] - 1 < min_side:
                continue
            gain = _gain(graph, side, node)
            if gain > best_gain:
                best_gain = gain
                best_node = node
        if best_node is None:
            break
        origin = side[best_node]
        side[best_node] = 1 - origin
        counts[origin] -= 1
        counts[1 - origin] += 1
        locked.add(best_node)
        history.append(best_node)
        gains.append(best_gain)

    best_total = 0.0
    best_k = 0
    running = 0.0
    for k, gain in enumerate(gains, start=1):
        running += gain
        if running > best_total + 1e-12:
            best_total = running
            best_k = k

    # Roll back moves beyond the best prefix.
    for node in history[best_k:]:
        origin = side[node]
        side[node] = 1 - origin
    return best_k > 0
