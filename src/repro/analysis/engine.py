"""The analysis engine: module model, rule registry, and the driver.

Rules come in two shapes.  *Module rules* are small classes over one
parsed module (:class:`ModuleUnit`): they receive the AST plus the raw
source lines and return :class:`~repro.analysis.findings.Finding`
objects.  *Program rules* (:class:`ProgramRule`) instead receive the
whole-program graph built by :mod:`repro.analysis.program` — symbol
table, call edges, lock acquisitions — and can report cross-module
facts (a deadlock cycle spanning three files, a blocking call four
frames below an ``async def``).  The engine owns everything around
that — file discovery, parsing (optionally parallel), graph
construction, suppression matching (:mod:`repro.analysis.suppressions`),
the suppression audit, baseline filtering, and stable ordering of
results — so each rule stays a pure check.

Registration is by decorator::

    @register
    class MyRule(Rule):
        rule_id = "family/rule-name"
        description = "one line for --list-rules"

        def check(self, module: ModuleUnit) -> list[Finding]: ...

    @register
    class MyProgramRule(ProgramRule):
        rule_id = "family/other-rule"
        description = "one line for --list-rules"

        def check_program(self, program: ProgramGraph) -> list[Finding]: ...

The built-in battery lives in :mod:`repro.analysis.rules`; importing it
(which :func:`all_rules` does lazily) populates the registry.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterable, Mapping, Sequence
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar

from repro.analysis.findings import Finding
from repro.analysis.suppressions import (
    Suppression,
    audit_suppressions,
    collect_suppressions,
)

if TYPE_CHECKING:
    from repro.analysis.program import ProgramGraph


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for *path*.

    Anchors at the last path component named ``repro`` so the same
    module resolves identically whether scanned as ``src/repro/...``,
    an installed tree, or a test fixture mirroring the layout.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return parts[-1] if parts else ""


@dataclass
class ModuleUnit:
    """One parsed module plus everything a rule may want to know."""

    path: str
    module_name: str
    source: str
    lines: list[str]
    tree: ast.Module

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives under any of the dotted *packages*."""
        return any(
            self.module_name == package or self.module_name.startswith(package + ".")
            for package in packages
        )

    def finding(
        self,
        rule_id: str,
        node: ast.AST | int,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a finding anchored to *node* (or an explicit line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            path=self.path, line=line, rule_id=rule_id, message=message, hint=hint
        )

    def comment_text_near(self, start_line: int, end_line: int) -> str:
        """Concatenated comment text on lines ``[start_line, end_line]``.

        Lines are 1-indexed and clamped; used by rules that require a
        written rationale next to a construct (e.g. broad ``except``).
        The scan is a lexical heuristic — a ``#`` inside a string
        literal can count — which errs on the permissive side.
        """
        pieces: list[str] = []
        for index in range(max(0, start_line - 1), min(len(self.lines), end_line)):
            line = self.lines[index]
            if "#" in line:
                pieces.append(line.split("#", 1)[1].strip("# ").strip())
        return " ".join(piece for piece in pieces if piece)


class Rule(abc.ABC):
    """One named invariant checked against a :class:`ModuleUnit`."""

    rule_id: ClassVar[str] = ""
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, module: ModuleUnit) -> list[Finding]:
        """Return every violation of this rule in *module*."""


class ProgramRule(Rule):
    """A rule over the whole-program graph instead of one module.

    Program rules see every scanned module at once — symbol table, call
    edges, lock acquisitions — so they can chase facts across module
    boundaries.  The per-module :meth:`check` is a no-op; the engine
    calls :meth:`check_program` exactly once per run, after all modules
    parse, and matches the returned findings against each file's
    suppressions like any other finding.
    """

    def check(self, module: ModuleUnit) -> list[Finding]:
        return []

    @abc.abstractmethod
    def check_program(self, program: ProgramGraph) -> list[Finding]:
        """Return every violation of this rule across *program*."""


_REGISTRY: dict[str, Rule] = {}
_BUILTINS_LOADED = False


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the global registry."""
    rule = rule_class()
    if not rule.rule_id or "/" not in rule.rule_id:
        raise ValueError(
            f"rule {rule_class.__name__} needs a 'family/name' rule_id, "
            f"got {rule.rule_id!r}"
        )
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def _ensure_builtin_rules() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.analysis.rules  # noqa: F401  (registers on import)

        _BUILTINS_LOADED = True


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_builtin_rules()
    return [rule for _, rule in sorted(_REGISTRY.items())]


def select_rules(selectors: Sequence[str]) -> list[Rule]:
    """Rules matching *selectors* (full ids or family prefixes).

    Raises :class:`ValueError` on a selector that matches nothing, so
    CLI typos fail loudly instead of silently checking nothing.
    """
    chosen: list[Rule] = []
    for selector in selectors:
        matched = [
            rule
            for rule in all_rules()
            if rule.rule_id == selector or rule.rule_id.startswith(selector + "/")
        ]
        if not matched:
            known = sorted({rule.rule_id for rule in all_rules()})
            raise ValueError(f"unknown rule selector {selector!r}; known rules: {known}")
        chosen.extend(rule for rule in matched if rule not in chosen)
    return chosen


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressions: list[Suppression] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    """Findings acknowledged by the ``--baseline`` file: excluded from
    :attr:`findings` (and from ``--strict`` failure) but still reported
    in the artifact so the remaining debt stays visible."""

    @property
    def suppressed_count(self) -> int:
        return sum(1 for suppression in self.suppressions if suppression.used)

    @property
    def clean(self) -> bool:
        return not self.findings

    @property
    def errors(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "warning"]

    def to_dict(self) -> dict[str, object]:
        """The JSON artifact schema (uploaded by CI).

        Version history: 2 added per-finding ``severity`` and the
        ``baselined`` list.
        """
        return {
            "version": 2,
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "baselined": [finding.to_dict() for finding in self.baselined],
            "suppressions": [
                {
                    "path": suppression.path,
                    "line": suppression.line,
                    "rule": suppression.rule_id,
                    "reason": suppression.reason,
                    "used": suppression.used,
                }
                for suppression in self.suppressions
            ],
        }


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories into a sorted, de-duplicated file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                seen.setdefault(file, None)
        else:
            seen.setdefault(path, None)
    return list(seen)


def _parse_unit(
    source: str, path: str, module_name: str | None = None
) -> ModuleUnit | Finding:
    """Parse one module; a syntax error becomes a finding, not a crash."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            path=path,
            line=exc.lineno or 1,
            rule_id="analysis/parse-error",
            message=f"file does not parse: {exc.msg}",
            suppressible=False,
        )
    return ModuleUnit(
        path=path,
        module_name=(
            module_name if module_name is not None else module_name_for(Path(path))
        ),
        source=source,
        lines=source.splitlines(),
        tree=tree,
    )


def _split_rules(rules: Sequence[Rule]) -> tuple[list[Rule], list[ProgramRule]]:
    module_rules = [rule for rule in rules if not isinstance(rule, ProgramRule)]
    program_rules = [rule for rule in rules if isinstance(rule, ProgramRule)]
    return module_rules, program_rules


def _analyze_units(
    units: Sequence[ModuleUnit | Finding],
    rules: Sequence[Rule],
    jobs: int = 1,
) -> tuple[list[Finding], list[Suppression]]:
    """The full pipeline over already-parsed *units*.

    Stages: per-module rules (parallel when ``jobs > 1`` — rules are
    stateless, so threads only race on the GIL), then program rules
    over the graph of every module that parsed, then suppression
    matching and the suppression audit.  Findings are sorted at the
    end, so the result is byte-identical for any ``jobs`` value.
    """
    module_rules, program_rules = _split_rules(rules)
    modules = [unit for unit in units if isinstance(unit, ModuleUnit)]
    raw: list[Finding] = [unit for unit in units if isinstance(unit, Finding)]

    def run_module_rules(module: ModuleUnit) -> list[Finding]:
        findings: list[Finding] = []
        for rule in module_rules:
            findings.extend(rule.check(module))
        return findings

    if jobs > 1 and len(modules) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            for per_module in pool.map(run_module_rules, modules):
                raw.extend(per_module)
    else:
        for module in modules:
            raw.extend(run_module_rules(module))

    if program_rules and modules:
        # Imported here, not at module top: program.py imports
        # ModuleUnit from this module.
        from repro.analysis.program import ProgramGraph

        program = ProgramGraph.build(modules)
        for program_rule in program_rules:
            raw.extend(program_rule.check_program(program))

    suppressions: list[Suppression] = []
    by_path: dict[str, list[Suppression]] = {}
    for module in modules:
        module_suppressions = collect_suppressions(module.path, module.source)
        suppressions.extend(module_suppressions)
        by_path[module.path] = module_suppressions

    kept: list[Finding] = []
    for finding in raw:
        match = next(
            (
                suppression
                for suppression in by_path.get(finding.path, [])
                if suppression.matches(finding)
                and suppression.covers_line(finding.line)
            ),
            None,
        )
        if match is not None and finding.suppressible:
            match.used = True
            continue
        kept.append(finding)
    kept.extend(audit_suppressions(suppressions))
    kept.sort(key=lambda finding: finding.sort_key)
    return kept, suppressions


def analyze_source(
    source: str,
    path: str = "<memory>",
    rules: Sequence[Rule] | None = None,
    module_name: str | None = None,
) -> list[Finding]:
    """Analyze one in-memory module (the unit-test entry point).

    Program rules still run — over the one-module program — so fixtures
    exercising intra-module lock cycles or async-safety work unchanged.
    """
    active = list(rules) if rules is not None else all_rules()
    findings, _ = _analyze_units([_parse_unit(source, path, module_name)], active)
    return findings


def analyze_sources(
    sources: Mapping[str, str],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Analyze several in-memory modules as one program.

    *sources* maps dotted module names to source text; each module gets
    a synthetic path derived from its name.  This is the test entry
    point for cross-module facts — a lock cycle whose two halves live
    in different files, an async handler whose blocking call is three
    modules away.
    """
    active = list(rules) if rules is not None else all_rules()
    units = [
        _parse_unit(source, module_name.replace(".", "/") + ".py", module_name)
        for module_name, source in sorted(sources.items())
    ]
    findings, _ = _analyze_units(units, active)
    return findings


def analyze_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule] | None = None,
    jobs: int = 1,
    baseline: set[str] | None = None,
) -> AnalysisReport:
    """Analyze every Python file under *paths* and return the report.

    ``jobs > 1`` parallelizes file reading/parsing and the per-module
    rules across a thread pool; findings are identical to a serial run.
    *baseline* is a set of finding fingerprints (see
    :mod:`repro.analysis.baseline`) to divert into
    :attr:`AnalysisReport.baselined`.
    """
    active = list(rules) if rules is not None else all_rules()
    files = iter_python_files(Path(path) for path in paths)

    def load(file: Path) -> ModuleUnit | Finding:
        return _parse_unit(file.read_text(encoding="utf-8"), str(file))

    if jobs > 1 and len(files) > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            units = list(pool.map(load, files))
    else:
        units = [load(file) for file in files]

    findings, suppressions = _analyze_units(units, active, jobs=jobs)

    report = AnalysisReport(files_scanned=len(files), suppressions=suppressions)
    if baseline:
        from repro.analysis.baseline import finding_fingerprint

        for finding in findings:
            if finding_fingerprint(finding) in baseline:
                report.baselined.append(finding)
            else:
                report.findings.append(finding)
    else:
        report.findings = findings
    return report
