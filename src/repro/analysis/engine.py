"""The analysis engine: module model, rule registry, and the driver.

Rules are small classes over one parsed module (:class:`ModuleUnit`):
they receive the AST plus the raw source lines and return
:class:`~repro.analysis.findings.Finding` objects.  The engine owns
everything around that — file discovery, parsing, suppression matching
(:mod:`repro.analysis.suppressions`), the suppression audit, and stable
ordering of results — so each rule stays a pure AST check.

Registration is by decorator::

    @register
    class MyRule(Rule):
        rule_id = "family/rule-name"
        description = "one line for --list-rules"

        def check(self, module: ModuleUnit) -> list[Finding]: ...

The built-in battery lives in :mod:`repro.analysis.rules`; importing it
(which :func:`all_rules` does lazily) populates the registry.
"""

from __future__ import annotations

import abc
import ast
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import ClassVar

from repro.analysis.findings import Finding
from repro.analysis.suppressions import (
    Suppression,
    audit_suppressions,
    collect_suppressions,
)


def module_name_for(path: Path) -> str:
    """Best-effort dotted module name for *path*.

    Anchors at the last path component named ``repro`` so the same
    module resolves identically whether scanned as ``src/repro/...``,
    an installed tree, or a test fixture mirroring the layout.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "repro" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
        return ".".join(parts[anchor:])
    return parts[-1] if parts else ""


@dataclass
class ModuleUnit:
    """One parsed module plus everything a rule may want to know."""

    path: str
    module_name: str
    source: str
    lines: list[str]
    tree: ast.Module

    def in_package(self, *packages: str) -> bool:
        """Whether this module lives under any of the dotted *packages*."""
        return any(
            self.module_name == package or self.module_name.startswith(package + ".")
            for package in packages
        )

    def finding(
        self,
        rule_id: str,
        node: ast.AST | int,
        message: str,
        hint: str = "",
    ) -> Finding:
        """Build a finding anchored to *node* (or an explicit line)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            path=self.path, line=line, rule_id=rule_id, message=message, hint=hint
        )

    def comment_text_near(self, start_line: int, end_line: int) -> str:
        """Concatenated comment text on lines ``[start_line, end_line]``.

        Lines are 1-indexed and clamped; used by rules that require a
        written rationale next to a construct (e.g. broad ``except``).
        The scan is a lexical heuristic — a ``#`` inside a string
        literal can count — which errs on the permissive side.
        """
        pieces: list[str] = []
        for index in range(max(0, start_line - 1), min(len(self.lines), end_line)):
            line = self.lines[index]
            if "#" in line:
                pieces.append(line.split("#", 1)[1].strip("# ").strip())
        return " ".join(piece for piece in pieces if piece)


class Rule(abc.ABC):
    """One named invariant checked against a :class:`ModuleUnit`."""

    rule_id: ClassVar[str] = ""
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def check(self, module: ModuleUnit) -> list[Finding]:
        """Return every violation of this rule in *module*."""


_REGISTRY: dict[str, Rule] = {}
_BUILTINS_LOADED = False


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to the global registry."""
    rule = rule_class()
    if not rule.rule_id or "/" not in rule.rule_id:
        raise ValueError(
            f"rule {rule_class.__name__} needs a 'family/name' rule_id, "
            f"got {rule.rule_id!r}"
        )
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return rule_class


def _ensure_builtin_rules() -> None:
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        import repro.analysis.rules  # noqa: F401  (registers on import)

        _BUILTINS_LOADED = True


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _ensure_builtin_rules()
    return [rule for _, rule in sorted(_REGISTRY.items())]


def select_rules(selectors: Sequence[str]) -> list[Rule]:
    """Rules matching *selectors* (full ids or family prefixes).

    Raises :class:`ValueError` on a selector that matches nothing, so
    CLI typos fail loudly instead of silently checking nothing.
    """
    chosen: list[Rule] = []
    for selector in selectors:
        matched = [
            rule
            for rule in all_rules()
            if rule.rule_id == selector or rule.rule_id.startswith(selector + "/")
        ]
        if not matched:
            known = sorted({rule.rule_id for rule in all_rules()})
            raise ValueError(f"unknown rule selector {selector!r}; known rules: {known}")
        chosen.extend(rule for rule in matched if rule not in chosen)
    return chosen


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_scanned: int = 0
    suppressions: list[Suppression] = field(default_factory=list)

    @property
    def suppressed_count(self) -> int:
        return sum(1 for suppression in self.suppressions if suppression.used)

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_dict(self) -> dict[str, object]:
        """The JSON artifact schema (uploaded by CI)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "suppressions": [
                {
                    "path": suppression.path,
                    "line": suppression.line,
                    "rule": suppression.rule_id,
                    "reason": suppression.reason,
                    "used": suppression.used,
                }
                for suppression in self.suppressions
            ],
        }


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files and directories into a sorted, de-duplicated file list."""
    seen: dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                seen.setdefault(file, None)
        else:
            seen.setdefault(path, None)
    return list(seen)


def _analyze_module(
    source: str,
    path: str,
    rules: Sequence[Rule],
    module_name: str | None = None,
) -> tuple[list[Finding], list[Suppression]]:
    """Run *rules* over one module; apply and audit its suppressions."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        parse_error = Finding(
            path=path,
            line=exc.lineno or 1,
            rule_id="analysis/parse-error",
            message=f"file does not parse: {exc.msg}",
            suppressible=False,
        )
        return [parse_error], []

    module = ModuleUnit(
        path=path,
        module_name=(
            module_name if module_name is not None else module_name_for(Path(path))
        ),
        source=source,
        lines=source.splitlines(),
        tree=tree,
    )
    raw: list[Finding] = []
    for rule in rules:
        raw.extend(rule.check(module))

    suppressions = collect_suppressions(path, source)
    kept: list[Finding] = []
    for finding in raw:
        match = next(
            (
                suppression
                for suppression in suppressions
                if suppression.matches(finding)
                and suppression.covers_line(finding.line)
            ),
            None,
        )
        if match is not None and finding.suppressible:
            match.used = True
            continue
        kept.append(finding)
    kept.extend(audit_suppressions(suppressions))
    kept.sort(key=lambda finding: finding.sort_key)
    return kept, suppressions


def analyze_source(
    source: str,
    path: str = "<memory>",
    rules: Sequence[Rule] | None = None,
    module_name: str | None = None,
) -> list[Finding]:
    """Analyze one in-memory module (the unit-test entry point)."""
    active = list(rules) if rules is not None else all_rules()
    findings, _ = _analyze_module(source, path, active, module_name)
    return findings


def analyze_paths(
    paths: Sequence[Path | str],
    rules: Sequence[Rule] | None = None,
) -> AnalysisReport:
    """Analyze every Python file under *paths* and return the report."""
    active = list(rules) if rules is not None else all_rules()
    report = AnalysisReport()
    files = iter_python_files(Path(path) for path in paths)
    report.files_scanned = len(files)
    for file in files:
        source = file.read_text(encoding="utf-8")
        findings, suppressions = _analyze_module(source, str(file), active)
        report.findings.extend(findings)
        report.suppressions.extend(suppressions)
    report.findings.sort(key=lambda finding: finding.sort_key)
    return report
