"""The built-in rule battery.

Importing this package registers every built-in rule with the engine's
registry (each rule module applies :func:`repro.analysis.engine.register`
at import time).  The engine imports it lazily from
:func:`~repro.analysis.engine.all_rules`, so user code never needs to.
"""

from __future__ import annotations

from repro.analysis.rules import (  # noqa: F401  (imported for registration)
    asyncsafety,
    determinism,
    exceptions,
    locks,
    lockorder,
    poolsafety,
)

__all__ = [
    "asyncsafety",
    "determinism",
    "exceptions",
    "locks",
    "lockorder",
    "poolsafety",
]
