"""Async-safety rules: nothing reachable from an ``async def`` may block.

The HTTP frontend runs every handler on the event loop thread; one
``time.sleep``, queue ``get``, or contended ``with lock:`` anywhere in
the synchronous call tree below a handler stalls *every* connection.
These rules walk the whole-program call graph
(:class:`~repro.analysis.program.ProgramGraph`) from each ``async def``
and report blocking operations that are transitively reachable on the
loop thread.

What counts as blocking comes from the program graph's per-function
facts: known blocking calls (``time.sleep``, ``queue.Queue.get/put``,
``socket`` I/O, ``open``, ``pool.apply_async().get()``,
``Future.result()``, ``lock.acquire()``) plus every ``with <lock>:``
acquisition — a lock wait is a thread block like any other.

What does *not* count: anything behind a **deferred** call edge.  A
callable handed to ``loop.run_in_executor`` / ``asyncio.to_thread`` /
``Thread(target=...)`` / pool ``submit`` runs off the loop thread, so
the walk stops there — wrapping a blocking call in an executor is
exactly the sanctioned fix.  Unresolvable calls produce no edge, so
every reported chain is a real code path (no false paths), at the cost
of missing chains through dynamic dispatch.

Findings anchor where the fix belongs: a *direct* blocking operation
anchors at its own line; a *transitive* one anchors at the first call
the async function makes into the blocking chain (that is the call to
wrap in an executor), with the full witness chain and the blocking site
spelled out in the message.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.engine import ProgramRule, register
from repro.analysis.findings import Finding
from repro.analysis.program import (
    CallEdge,
    FunctionFacts,
    FunctionSymbol,
    ProgramGraph,
)


def _blocking_sites(facts: FunctionFacts) -> list[tuple[str, str, int]]:
    """``(op, path, line)`` for every blocking operation in one function."""
    sites = [
        (blocking.op, blocking.path, blocking.line)
        for blocking in facts.blocking_calls
    ]
    sites.extend(
        (f"{acquisition.lock_id} (with-lock)", acquisition.path, acquisition.line)
        for acquisition in facts.acquisitions
    )
    sites.sort(key=lambda site: (site[1], site[2], site[0]))
    return sites


@register
class BlockingInAsyncRule(ProgramRule):
    """Blocking operations reachable from ``async def`` block the loop."""

    rule_id = "asyncsafety/blocking-call"
    description = (
        "an async function must not perform, or transitively call into, "
        "thread-blocking operations (sleep/queue/lock/file/socket) on the "
        "event loop thread"
    )

    def check_program(self, program: ProgramGraph) -> list[Finding]:
        findings: list[Finding] = []
        for symbol in program.async_functions():
            findings.extend(self._check_origin(program, symbol))
        return findings

    def _check_origin(
        self, program: ProgramGraph, symbol: FunctionSymbol
    ) -> list[Finding]:
        origin = symbol.qualname
        facts = program.facts_for(origin)
        if facts is None:
            return []

        findings: list[Finding] = []
        reported: set[tuple[int, str, str, int]] = set()

        for op, path, line in _blocking_sites(facts):
            key = (line, op, path, line)
            if key in reported:
                continue
            reported.add(key)
            findings.append(
                Finding(
                    path=path,
                    line=line,
                    rule_id=self.rule_id,
                    message=(
                        f"async function {origin} blocks the event loop "
                        f"with {op}"
                    ),
                    hint=(
                        "move the operation off-loop: await "
                        "loop.run_in_executor(None, ...) or asyncio.to_thread"
                    ),
                )
            )

        # Breadth-first over non-deferred call edges into synchronous
        # code.  Async callees are skipped: their blocking operations
        # are reported against themselves, once, where the fix belongs.
        queue: deque[tuple[str, CallEdge, tuple[str, ...]]] = deque()
        enqueued: set[str] = {origin}
        for edge in facts.calls:
            if self._traversable(program, edge) and edge.callee not in enqueued:
                enqueued.add(edge.callee)
                queue.append((edge.callee, edge, (origin, edge.callee)))

        while queue:
            qualname, first_edge, chain = queue.popleft()
            callee_facts = program.facts_for(qualname)
            if callee_facts is None:
                continue
            for op, path, line in _blocking_sites(callee_facts):
                key = (first_edge.line, op, path, line)
                if key in reported:
                    continue
                reported.add(key)
                findings.append(
                    Finding(
                        path=first_edge.path,
                        line=first_edge.line,
                        rule_id=self.rule_id,
                        message=(
                            f"async function {origin} reaches blocking {op} "
                            f"at {path}:{line} (call chain "
                            f"{' -> '.join(chain)})"
                        ),
                        hint=(
                            "wrap this call in await loop.run_in_executor"
                            "(None, ...), or make the callee non-blocking"
                        ),
                    )
                )
            for edge in callee_facts.calls:
                if (
                    self._traversable(program, edge)
                    and edge.callee not in enqueued
                ):
                    enqueued.add(edge.callee)
                    queue.append((edge.callee, first_edge, chain + (edge.callee,)))
        return findings

    @staticmethod
    def _traversable(program: ProgramGraph, edge: CallEdge) -> bool:
        if edge.deferred:
            return False
        callee = program.functions.get(edge.callee)
        return callee is not None and not callee.is_async
