"""Lock-discipline rules: declared locks must be honoured everywhere.

The serving stack guards shared mutable state with per-object locks
(``self._lock``, ``self._warm_lock``, ``self._cond``, ...).  The
contract these rules enforce is the one the code already follows:

* an attribute that is *ever* assigned inside a ``with self.<lock>:``
  block is lock-guarded state, and every other assignment to it (except
  construction in ``__init__``) must also hold a lock;
* a class that nests two different locks must always nest them in the
  same order — an ``A then B`` block in one method and ``B then A`` in
  another is a deadlock waiting for the right interleaving.

The analysis is lexical (per-class, per-``with``-block): helper methods
documented as "caller must hold the lock" and ``.acquire()``/
``.release()`` pairs are invisible to it and need a suppression with the
reason written down.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass

from repro.analysis.engine import ModuleUnit, Rule, register
from repro.analysis.findings import Finding

_LOCK_ATTR = re.compile(r"lock|cond|mutex|sem", re.IGNORECASE)


def _held_locks(item: ast.withitem) -> str | None:
    """The ``self.<attr>`` lock a with-item acquires, if any."""
    expr = item.context_expr
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and _LOCK_ATTR.search(expr.attr)
    ):
        return expr.attr
    return None


@dataclass
class _Write:
    """One ``self.<attr> = ...`` observed in a class body."""

    attr: str
    line: int
    method: str
    locks_held: tuple[str, ...]


class _ClassScanner:
    """Walks one class, recording attribute writes and lock nestings."""

    def __init__(self) -> None:
        self.writes: list[_Write] = []
        self.orderings: dict[tuple[str, str], int] = {}

    def scan_class(self, class_node: ast.ClassDef) -> None:
        for node in class_node.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_block(node.body, node.name, ())

    def _scan_block(
        self, body: list[ast.stmt], method: str, locks: tuple[str, ...]
    ) -> None:
        for node in body:
            self._scan_statement(node, method, locks)

    def _scan_statement(
        self, node: ast.stmt, method: str, locks: tuple[str, ...]
    ) -> None:
        if isinstance(node, ast.With):
            acquired = [
                attr for item in node.items if (attr := _held_locks(item)) is not None
            ]
            for inner in acquired:
                for outer in locks:
                    if outer != inner:
                        self.orderings.setdefault((outer, inner), node.lineno)
            self._scan_block(node.body, method, locks + tuple(acquired))
            return
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    self.writes.append(
                        _Write(target.attr, node.lineno, method, locks)
                    )
            return
        if isinstance(node, ast.ClassDef):
            return  # a nested class is its own locking domain
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # A closure defined here may run later on another thread;
            # conservatively treat its writes as happening without the
            # enclosing lock held.
            self._scan_block(node.body, method, ())
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._scan_statement(child, method, locks)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                self._scan_block(child.body, method, locks)


@register
class UnguardedAttributeRule(Rule):
    """Lock-guarded attributes must be written under their lock."""

    rule_id = "locks/unguarded-attribute"
    description = (
        "an attribute assigned under a with-lock block anywhere in a class "
        "must be assigned under a lock everywhere (except __init__)"
    )

    def check(self, module: ModuleUnit) -> list[Finding]:
        findings: list[Finding] = []
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            scanner = _ClassScanner()
            scanner.scan_class(class_node)
            guarded: dict[str, str] = {}
            for write in scanner.writes:
                if write.locks_held and write.attr not in guarded:
                    guarded[write.attr] = write.locks_held[-1]
            for write in scanner.writes:
                if (
                    write.attr in guarded
                    and not write.locks_held
                    and write.method != "__init__"
                ):
                    lock = guarded[write.attr]
                    findings.append(
                        module.finding(
                            self.rule_id,
                            write.line,
                            f"{class_node.name}.{write.attr} is assigned under "
                            f"self.{lock} elsewhere but written here without "
                            "any lock held",
                            hint=f"wrap the write in `with self.{lock}:` "
                            "(construction belongs in __init__)",
                        )
                    )
        return findings


@register
class LockOrderRule(Rule):
    """Nested locks must nest in one consistent order per class."""

    rule_id = "locks/lock-order"
    description = (
        "a class acquiring two locks in both orders can deadlock; pick one "
        "order and keep it"
    )

    def check(self, module: ModuleUnit) -> list[Finding]:
        findings: list[Finding] = []
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            scanner = _ClassScanner()
            scanner.scan_class(class_node)
            reported: set[frozenset[str]] = set()
            for (outer, inner), line in sorted(
                scanner.orderings.items(), key=lambda item: item[1]
            ):
                pair = frozenset((outer, inner))
                if (inner, outer) in scanner.orderings and pair not in reported:
                    reported.add(pair)
                    other_line = scanner.orderings[(inner, outer)]
                    findings.append(
                        module.finding(
                            self.rule_id,
                            max(line, other_line),
                            f"{class_node.name} acquires self.{outer} and "
                            f"self.{inner} in both orders (lines {line} and "
                            f"{other_line}); two threads can deadlock",
                            hint="pick one acquisition order and restructure "
                            "the other block to follow it",
                        )
                    )
        return findings
