"""Exception hygiene: broad handlers must explain and account for themselves.

A ``except Exception`` that silently swallows is how a fleet loses a
node without a metric moving: the failure is converted into "nothing
happened".  The stack does legitimately need broad handlers — retry
loops in the cluster executor, failover paths in the fleet — but each
one must satisfy two obligations:

* a written rationale (a comment on the handler or its first lines)
  saying *why* catching everything is correct here;
* the failure must not vanish: the handler re-raises, or records the
  event somewhere observable (a logger, a metric, a retry counter).

A bare ``except:`` is never acceptable — it also traps
``KeyboardInterrupt`` and ``SystemExit``.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import ModuleUnit, Rule, register
from repro.analysis.findings import Finding

_BROAD_NAMES = {"Exception", "BaseException"}

_RECORDING_CALL = re.compile(
    r"log|warn|error|debug|exception|record|metric|counter|histogram"
    r"|observe|inc\b|increment|retry|stat",
    re.IGNORECASE,
)


def _is_broad(handler: ast.ExceptHandler) -> str | None:
    """The broad exception name this handler catches, or None."""
    if handler.type is None:
        return "bare"
    names = (
        list(handler.type.elts)
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for name_node in names:
        if isinstance(name_node, ast.Name) and name_node.id in _BROAD_NAMES:
            return name_node.id
        if isinstance(name_node, ast.Attribute) and name_node.attr in _BROAD_NAMES:
            return name_node.attr
    return None


def _records_failure(handler: ast.ExceptHandler) -> bool:
    """Whether the handler re-raises or calls something observability-shaped."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            attr = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else ""
            )
            if _RECORDING_CALL.search(attr):
                return True
    return False


@register
class BroadExceptRule(Rule):
    """Broad handlers need a rationale and must re-raise or record."""

    rule_id = "exceptions/silent-broad-except"
    description = (
        "every `except Exception` must carry a rationale comment and either "
        "re-raise or record the failure to a log/metric; bare `except:` is "
        "never allowed"
    )

    def check(self, module: ModuleUnit) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _is_broad(node)
            if broad is None:
                continue
            if broad == "bare":
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        "bare `except:` also traps KeyboardInterrupt and "
                        "SystemExit; the process becomes uninterruptible",
                        hint="catch Exception (with rationale) or the "
                        "specific exceptions expected",
                    )
                )
                continue
            first_body_line = node.body[0].lineno if node.body else node.lineno
            rationale = module.comment_text_near(node.lineno - 1, first_body_line)
            if not rationale:
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"`except {broad}` without a rationale comment: why "
                        "is catching everything correct here?",
                        hint="add a comment on or just above the handler "
                        "explaining the contract that makes this safe",
                    )
                )
            if not _records_failure(node):
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"`except {broad}` neither re-raises nor records the "
                        "failure; the error vanishes without a trace",
                        hint="re-raise, log, or bump a metric inside the "
                        "handler",
                    )
                )
        return findings
