"""Determinism rules: plans must be pure functions of their inputs.

The serving stack's correctness rests on one invariant: a plan is a
deterministic function of the request's content fingerprint.  The plan
cache answers one user's request with another user's plan; thread and
process executors must produce byte-identical plans; every fleet node
must compute the same answer from the same inputs.  These rules police
the planning packages (``repro.core``, ``repro.compression``,
``repro.spectral``, ``repro.mec``) and the forecasting package
(``repro.forecast``, whose predictions drive proactive placement and
must replay identically from a recorded trace) for the three ways that
invariant historically breaks:

* randomness drawn from global, unseeded generators;
* wall-clock values (only *measurement* clocks — ``perf_counter``,
  ``monotonic``, ``process_time`` — are allowed, because they feed
  timing telemetry, never identity or decisions);
* ``id()``-derived values, whose reuse after garbage collection can
  alias two different graphs onto one cache entry.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleUnit, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import dotted_name, import_aliases

DETERMINISTIC_PACKAGES = (
    "repro.core",
    "repro.compression",
    "repro.spectral",
    "repro.mec",
    "repro.forecast",
    "repro.mobility",
)
"""Packages whose outputs feed caches, fingerprints, or plan decisions.
``repro.mec`` includes the shared-channel contention model
(``repro.mec.channel``) and the best-response game (``repro.mec.game``):
channel quality draws and best-response visit orders must replay
identically for a given seed."""

_SEEDED_NUMPY_ENTRYPOINTS = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}

_MEASUREMENT_CLOCKS = {
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
}

_WALL_CLOCKS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


def _scoped(module: ModuleUnit) -> bool:
    return module.in_package(*DETERMINISTIC_PACKAGES)


@register
class UnseededRandomRule(Rule):
    """No global or unseeded RNGs in the planning packages."""

    rule_id = "determinism/unseeded-random"
    description = (
        "planning packages must draw randomness from explicitly seeded "
        "generators (repro.utils.rng.RandomSource, numpy default_rng(seed))"
    )

    def check(self, module: ModuleUnit) -> list[Finding]:
        if not _scoped(module):
            return []
        aliases = import_aliases(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name is None:
                continue
            unseeded = not node.args and not node.keywords
            if name.startswith("random."):
                tail = name.split(".", 1)[1]
                if tail == "Random":
                    if unseeded:
                        findings.append(
                            module.finding(
                                self.rule_id,
                                node,
                                "random.Random() without a seed is "
                                "nondeterministic across runs",
                                hint="pass an explicit seed, or use "
                                "repro.utils.rng.RandomSource",
                            )
                        )
                elif tail == "SystemRandom":
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            "random.SystemRandom draws OS entropy and can "
                            "never be replayed",
                            hint="use repro.utils.rng.RandomSource with an "
                            "explicit seed",
                        )
                    )
                else:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            f"{name}() uses the process-global RNG, whose "
                            "state depends on everything run before it",
                            hint="use repro.utils.rng.RandomSource with an "
                            "explicit seed",
                        )
                    )
            elif name.startswith("numpy.random."):
                tail = name[len("numpy.random.") :]
                if tail == "default_rng":
                    if unseeded:
                        findings.append(
                            module.finding(
                                self.rule_id,
                                node,
                                "numpy.random.default_rng() without a seed is "
                                "nondeterministic across runs",
                                hint="pass an explicit seed",
                            )
                        )
                elif tail.split(".", 1)[0] not in _SEEDED_NUMPY_ENTRYPOINTS:
                    findings.append(
                        module.finding(
                            self.rule_id,
                            node,
                            f"{name}() is numpy's legacy global-state RNG API",
                            hint="use numpy.random.default_rng(seed)",
                        )
                    )
        return findings


@register
class WallClockRule(Rule):
    """No wall-clock reads in the planning packages."""

    rule_id = "determinism/wall-clock"
    description = (
        "planning packages may time work (perf_counter/monotonic) but never "
        "read the wall clock — wall time must not feed caches or decisions"
    )

    def check(self, module: ModuleUnit) -> list[Finding]:
        if not _scoped(module):
            return []
        aliases = import_aliases(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func, aliases)
            if name in _WALL_CLOCKS and name not in _MEASUREMENT_CLOCKS:
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        f"{name}() reads the wall clock; two nodes planning "
                        "the same request would disagree",
                        hint="use time.perf_counter() for durations; derive "
                        "identity from content fingerprints, never time",
                    )
                )
        return findings


@register
class IdKeyedStateRule(Rule):
    """No ``id()``-derived values in the planning packages."""

    rule_id = "determinism/id-keyed-state"
    description = (
        "planning packages must not derive cache keys or decisions from "
        "id() — ids are reused after GC and differ across processes"
    )

    def check(self, module: ModuleUnit) -> list[Finding]:
        if not _scoped(module):
            return []
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
            ):
                findings.append(
                    module.finding(
                        self.rule_id,
                        node,
                        "id() is process-lifetime state: CPython reuses ids "
                        "after garbage collection, so an id-keyed cache can "
                        "serve one graph's plan for a different graph",
                        hint="key by content fingerprint "
                        "(repro.service.fingerprint.request_fingerprint)",
                    )
                )
        return findings
