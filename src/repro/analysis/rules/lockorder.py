"""Whole-program lock-order analysis: cross-module deadlock cycles.

The per-module ``locks/lock-order`` rule catches a class that nests its
own two locks in both orders.  The dangerous cycles at serving scale are
the ones no single file shows: ``PlanService.submit`` takes the metrics
lock while holding the queue lock, and a drain helper three modules away
takes them the other way round.  This rule builds the global
*lock-acquisition graph* — one node per lock identity
(``module.Class.attr`` / ``module.NAME``), one edge ``A -> B`` for every
program point that acquires ``B`` while holding ``A``, following
(non-deferred) call edges through :class:`~repro.analysis.program
.ProgramGraph` — and reports every strongly-connected component with two
or more locks as a potential deadlock, with a concrete witness for each
edge of one cycle.

Polarity: the program graph under-approximates calls, so every reported
cycle is realised by actual code paths; cycles hidden behind an
unresolvable indirection are missed, not invented.  Edges between a
lock and itself are ignored — the identity is per *class attribute*,
and two distinct instances of one class may nest legitimately.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.analysis.engine import ProgramRule, register
from repro.analysis.findings import Finding
from repro.analysis.program import LockAcquisition, ProgramGraph

_TransAcq = dict[str, tuple[tuple[str, ...], LockAcquisition]]


@dataclass(frozen=True)
class _Witness:
    """How one ``held -> acquired`` edge is realised in code."""

    site_path: str
    site_line: int
    chain: tuple[str, ...]
    """Function qualnames from the lock holder down to the acquirer."""


def _transitive_acquisitions(program: ProgramGraph) -> dict[str, _TransAcq]:
    """For every function: locks it may acquire, directly or via calls.

    Each entry carries the call chain and the concrete acquisition site
    so a cycle report can show *where* the nested acquisition happens.
    Recursive call cycles are cut at the revisit (the revisited frame
    adds no new acquisitions beyond its first traversal).
    """
    memo: dict[str, _TransAcq] = {}

    def visit(qualname: str, visiting: set[str]) -> _TransAcq:
        cached = memo.get(qualname)
        if cached is not None:
            return cached
        if qualname in visiting:
            return {}
        visiting.add(qualname)
        result: _TransAcq = {}
        facts = program.facts_for(qualname)
        if facts is not None:
            for acquisition in facts.acquisitions:
                result.setdefault(acquisition.lock_id, ((qualname,), acquisition))
            for edge in facts.calls:
                if edge.deferred:
                    continue
                for lock_id, (chain, acquisition) in visit(
                    edge.callee, visiting
                ).items():
                    result.setdefault(lock_id, ((qualname,) + chain, acquisition))
        visiting.discard(qualname)
        memo[qualname] = result
        return result

    for qualname in sorted(program.facts):
        visit(qualname, set())
    return memo


def _lock_edges(program: ProgramGraph) -> dict[tuple[str, str], _Witness]:
    """Every ``held -> acquired`` pair with its first (sorted) witness."""
    transitive = _transitive_acquisitions(program)
    edges: dict[tuple[str, str], _Witness] = {}
    for qualname in sorted(program.facts):
        facts = program.facts[qualname]
        for acquisition in facts.acquisitions:
            for held in acquisition.held:
                if held != acquisition.lock_id:
                    edges.setdefault(
                        (held, acquisition.lock_id),
                        _Witness(
                            acquisition.path, acquisition.line, (qualname,)
                        ),
                    )
        for held_locks, edge in facts.calls_under_lock:
            for lock_id, (chain, acquisition) in transitive.get(
                edge.callee, {}
            ).items():
                for held in held_locks:
                    if held != lock_id:
                        edges.setdefault(
                            (held, lock_id),
                            _Witness(
                                acquisition.path,
                                acquisition.line,
                                (qualname,) + chain,
                            ),
                        )
    return edges


def _strongly_connected(
    nodes: set[str], adjacency: dict[str, set[str]]
) -> list[set[str]]:
    """Kosaraju's SCCs, iterative, deterministic order."""
    order: list[str] = []
    visited: set[str] = set()
    for start in sorted(nodes):
        if start in visited:
            continue
        visited.add(start)
        stack: list[tuple[str, list[str]]] = [
            (start, sorted(adjacency.get(start, ())))
        ]
        while stack:
            current, pending = stack[-1]
            while pending and pending[-1] in visited:
                pending.pop()
            if pending:
                nxt = pending.pop()
                visited.add(nxt)
                stack.append((nxt, sorted(adjacency.get(nxt, ()))))
            else:
                order.append(current)
                stack.pop()

    reverse: dict[str, set[str]] = {}
    for source, targets in adjacency.items():
        for target in targets:
            reverse.setdefault(target, set()).add(source)

    components: list[set[str]] = []
    assigned: set[str] = set()
    for start in reversed(order):
        if start in assigned:
            continue
        component = {start}
        assigned.add(start)
        work = [start]
        while work:
            current = work.pop()
            for nxt in sorted(reverse.get(current, ())):
                if nxt in nodes and nxt not in assigned:
                    assigned.add(nxt)
                    component.add(nxt)
                    work.append(nxt)
        components.append(component)
    return components


def _cycle_through(
    anchor: str, component: set[str], adjacency: dict[str, set[str]]
) -> list[str]:
    """A shortest concrete cycle ``anchor -> ... -> anchor`` in *component*."""
    parent: dict[str, str] = {}
    seen = {anchor}
    queue = deque([anchor])
    while queue:
        current = queue.popleft()
        for nxt in sorted(adjacency.get(current, ())):
            if nxt not in component:
                continue
            if nxt == anchor:
                path = [current]
                while path[-1] != anchor:
                    path.append(parent[path[-1]])
                path.reverse()
                return path + [anchor]
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = current
                queue.append(nxt)
    return [anchor, anchor]


@register
class GlobalLockOrderRule(ProgramRule):
    """Cross-module lock-order cycles are potential deadlocks."""

    rule_id = "lockorder/cycle"
    description = (
        "the global lock-acquisition graph (lock held -> lock acquired, "
        "following call edges across modules) must be acyclic"
    )

    def check_program(self, program: ProgramGraph) -> list[Finding]:
        edges = _lock_edges(program)
        adjacency: dict[str, set[str]] = {}
        nodes: set[str] = set()
        for held, acquired in edges:
            adjacency.setdefault(held, set()).add(acquired)
            nodes.update((held, acquired))

        findings: list[Finding] = []
        for component in _strongly_connected(nodes, adjacency):
            if len(component) < 2:
                continue
            anchor = min(component)
            cycle = _cycle_through(anchor, component, adjacency)
            witnesses = [
                (pair, edges[pair])
                for pair in zip(cycle, cycle[1:])
                if pair in edges
            ]
            details = "; ".join(
                f"{held} then {acquired} at {witness.site_path}:"
                f"{witness.site_line} via {' -> '.join(witness.chain)}"
                for (held, acquired), witness in witnesses
            )
            first = witnesses[0][1]
            findings.append(
                Finding(
                    path=first.site_path,
                    line=first.site_line,
                    rule_id=self.rule_id,
                    message=(
                        "potential deadlock: lock-order cycle "
                        f"{' -> '.join(cycle)} ({details})"
                    ),
                    hint=(
                        "pick one global acquisition order for these locks "
                        "and restructure the off-order site (move the inner "
                        "acquisition outside the outer lock, or defer the "
                        "call past the release)"
                    ),
                )
            )
        return findings
