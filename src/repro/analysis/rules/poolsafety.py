"""Process-pool safety: only rebuildable payloads cross the boundary.

``PlanningBackend``'s process mode works because nothing stateful ever
crosses the fork: worker processes rebuild their planner from a
``(strategy name, config)`` pair via the registry, and only plain
picklable dataclasses travel as arguments.  A lambda, closure, or bound
method handed to a pool drags its enclosing environment along — locks in
undefined states, open files, live planner instances — and either fails
to pickle or, worse under ``fork``, silently shares what must not be
shared.

This rule checks every submission to a pool-like object (a receiver
whose name contains ``pool``) in modules that use ``multiprocessing`` or
``concurrent.futures.ProcessPoolExecutor``: the submitted callable (and
any ``initializer=``) must be a module-level name, which pickles by
reference and is rebuilt cleanly on the other side.  Thread pools are
exempt — modules that never import a process-pool API are skipped.
"""

from __future__ import annotations

import ast

from repro.analysis.engine import ModuleUnit, Rule, register
from repro.analysis.findings import Finding
from repro.analysis.rules.common import module_level_callables

_POOL_METHODS = {
    "apply",
    "apply_async",
    "map",
    "map_async",
    "imap",
    "imap_unordered",
    "starmap",
    "starmap_async",
    "submit",
}

_POOL_CONSTRUCTORS = {"Pool", "ProcessPoolExecutor"}


def _uses_process_pools(tree: ast.Module) -> bool:
    """Whether the module imports a process-pool API at all."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name.split(".", 1)[0] == "multiprocessing"
                for alias in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module.split(".", 1)[0] == "multiprocessing":
                return True
            if node.module.startswith("concurrent.futures") and any(
                alias.name == "ProcessPoolExecutor" for alias in node.names
            ):
                return True
    return False


def _poolish_receiver(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Attribute):
        return "pool" in expr.attr.lower()
    if isinstance(expr, ast.Name):
        return "pool" in expr.id.lower()
    return False


@register
class PoolSubmissionRule(Rule):
    """Callables submitted to process pools must be module-level."""

    rule_id = "poolsafety/nonportable-callable"
    description = (
        "process pools may only receive module-level functions — lambdas, "
        "closures and bound methods drag locks/files/planners across the fork"
    )

    def check(self, module: ModuleUnit) -> list[Finding]:
        if not _uses_process_pools(module.tree):
            return []
        portable = module_level_callables(module.tree)
        findings: list[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _POOL_METHODS
                and _poolish_receiver(func.value)
                and node.args
            ):
                findings.extend(
                    self._check_callable(
                        module, node.args[0], f".{func.attr}()", portable
                    )
                )
            constructor = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if constructor in _POOL_CONSTRUCTORS:
                for keyword in node.keywords:
                    if keyword.arg == "initializer":
                        findings.extend(
                            self._check_callable(
                                module, keyword.value, "initializer=", portable
                            )
                        )
        return findings

    def _check_callable(
        self,
        module: ModuleUnit,
        callable_node: ast.expr,
        where: str,
        portable: set[str],
    ) -> list[Finding]:
        if isinstance(callable_node, ast.Lambda):
            return [
                module.finding(
                    self.rule_id,
                    callable_node,
                    f"lambda passed to a process pool via {where}: its "
                    "closure (and anything it captures) cannot cross the "
                    "process boundary",
                    hint="hoist the body to a module-level function taking "
                    "only (strategy, config)-rebuildable arguments",
                )
            ]
        if isinstance(callable_node, ast.Attribute):
            return [
                module.finding(
                    self.rule_id,
                    callable_node,
                    f"bound method passed to a process pool via {where}: it "
                    "pickles its whole instance — locks, open files, planner "
                    "state — into the worker",
                    hint="use a module-level function that rebuilds what it "
                    "needs from (strategy, config)",
                )
            ]
        if isinstance(callable_node, ast.Name):
            if callable_node.id in portable:
                return []
            return [
                module.finding(
                    self.rule_id,
                    callable_node,
                    f"{callable_node.id!r} passed to a process pool via "
                    f"{where} is not a module-level function in this module; "
                    "it cannot be proven to pickle by reference",
                    hint="pass a module-level function (or suppress with the "
                    "reason it is known-portable)",
                )
            ]
        return [
            module.finding(
                self.rule_id,
                callable_node,
                f"dynamic callable expression passed to a process pool via "
                f"{where} cannot be verified portable",
                hint="pass a module-level function",
            )
        ]


def _imports_shared_memory(tree: ast.Module) -> bool:
    """Whether the module imports ``multiprocessing.shared_memory``."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            if any(
                alias.name.startswith("multiprocessing.shared_memory")
                for alias in node.names
            ):
                return True
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module == "multiprocessing" and any(
                alias.name == "shared_memory" for alias in node.names
            ):
                return True
            if node.module.startswith("multiprocessing.shared_memory"):
                return True
    return False


def _creates_segment(call: ast.Call) -> bool:
    """Whether a ``SharedMemory(...)`` call is the create (owner) form."""
    for keyword in call.keywords:
        if keyword.arg == "create":
            return isinstance(keyword.value, ast.Constant) and bool(keyword.value.value)
    if len(call.args) >= 2:
        second = call.args[1]
        return isinstance(second, ast.Constant) and bool(second.value)
    return False


@register
class SharedMemoryLifecycleRule(Rule):
    """Shared-memory segments must be closed — and, when owned, unlinked.

    A ``SharedMemory(create=True)`` segment outlives every process that
    maps it: without an ``unlink()`` it stays in ``/dev/shm`` until
    reboot, and without ``close()`` the mapping pins the pages for the
    process lifetime.  Attach-side (``create=False``) users only need
    ``close()`` — unlinking from an attacher would yank the segment out
    from under its owner.  The check is module-wide presence, not
    per-object flow: a module that creates segments must contain both a
    ``.close()`` and an ``.unlink()`` call somewhere; a module that only
    attaches must contain ``.close()``.
    """

    rule_id = "poolsafety/shm-unlink"
    description = (
        "modules creating shared-memory segments must close() and unlink() "
        "them; attach-only modules must close()"
    )

    def check(self, module: ModuleUnit) -> list[Finding]:
        if not _imports_shared_memory(module.tree):
            return []
        creates: list[ast.Call] = []
        attaches: list[ast.Call] = []
        has_close = has_unlink = False
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = (
                func.attr
                if isinstance(func, ast.Attribute)
                else func.id
                if isinstance(func, ast.Name)
                else None
            )
            if name == "SharedMemory":
                (creates if _creates_segment(node) else attaches).append(node)
            elif isinstance(func, ast.Attribute):
                if func.attr == "close":
                    has_close = True
                elif func.attr == "unlink":
                    has_unlink = True
        findings: list[Finding] = []
        if creates and not (has_close and has_unlink):
            missing = " and ".join(
                part
                for part, present in (("close()", has_close), ("unlink()", has_unlink))
                if not present
            )
            for call in creates:
                findings.append(
                    module.finding(
                        self.rule_id,
                        call,
                        f"SharedMemory(create=True) here, but the module never "
                        f"calls {missing}: owned segments leak in /dev/shm "
                        "until reboot",
                        hint="close() the mapping and unlink() the segment on "
                        "every exit path (eviction, shutdown, error)",
                    )
                )
        if attaches and not has_close:
            for call in attaches:
                findings.append(
                    module.finding(
                        self.rule_id,
                        call,
                        "SharedMemory attach here, but the module never calls "
                        "close(): the mapping pins the segment's pages for "
                        "the process lifetime",
                        hint="close() the segment after decoding (attachers "
                        "must not unlink)",
                    )
                )
        return findings
