"""Shared AST plumbing for the rule battery.

The rules need two recurring answers: *what fully-qualified thing does
this expression refer to* (through import aliases), and *which names are
module-level callables* (for process-pool safety).  Both are resolved
lexically — no execution, no cross-module resolution — which is exactly
the precision this battery promises: a name that cannot be proven safe
is reported, with a suppression as the escape hatch.
"""

from __future__ import annotations

import ast


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the dotted names they import.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    time`` maps ``time -> time.time``; ``import multiprocessing.pool``
    maps ``multiprocessing -> multiprocessing``.  Relative imports are
    skipped — they can never name the stdlib modules the rules watch.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Fully-qualified dotted form of a Name/Attribute chain, or None.

    ``np.random.rand`` with ``np -> numpy`` resolves to
    ``numpy.random.rand``; anything rooted in a call or subscript
    resolves to ``None`` (not a static reference).
    """
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    base = aliases.get(current.id, current.id)
    parts.append(base)
    return ".".join(reversed(parts))


def module_level_callables(tree: ast.Module) -> set[str]:
    """Names bound at module scope to defs, classes, or imports.

    These are the only callables that pickle by reference and can be
    rebuilt inside a process-pool worker; anything else (lambdas,
    closures, bound methods) drags live state across the fork.
    """
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".", 1)[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
    return names
