"""The ``repro-lint`` command line.

Scans the given paths with the built-in rule battery and prints
findings as text (one per line, ``path:line rule message``), JSON (the
CI artifact schema), or SARIF 2.1.0 (``--sarif``, for code-review
ingestion).  Analysis parallelizes across ``--jobs`` worker threads
(default: all cores) with findings guaranteed identical to a serial
run.  A findings baseline (``--baseline`` / ``--write-baseline``, see
:mod:`repro.analysis.baseline`) lets a new rule land before its legacy
findings are burned down.

Exit codes: ``0`` clean (or findings without ``--strict``), ``1``
findings — errors *or* warnings — under ``--strict``, ``2`` bad
invocation (unknown rule selector, missing path, corrupt baseline).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.engine import all_rules, analyze_paths, select_rules
from repro.analysis.sarif import report_to_sarif


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach repro-lint's arguments to *parser* (shared with `repro lint`)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        action="append",
        default=None,
        metavar="SELECTOR",
        help="restrict to rule ids or families (repeatable), "
        "e.g. --rules determinism --rules locks/lock-order",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        default=None,
        help="also write the report as SARIF 2.1.0 to FILE",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="analyze with N worker threads (default: all cores); "
        "findings are identical for any N",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default=None,
        help="divert findings recorded in FILE (see --write-baseline) out "
        "of the failure set; they still appear under 'baselined' in the "
        "JSON artifact",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        default=None,
        help="record every current finding's fingerprint to FILE and exit 0",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any finding (error or warning) remains after "
        "suppressions and the baseline",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed repro-lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:35s} {rule.description}")
        return 0

    try:
        rules = select_rules(args.rules) if args.rules else None
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    paths = [Path(raw) for raw in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    if jobs < 1:
        print(f"repro-lint: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2

    fingerprints: set[str] | None = None
    if args.baseline:
        try:
            fingerprints = load_baseline(Path(args.baseline))
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2

    started = time.perf_counter()
    report = analyze_paths(paths, rules, jobs=jobs, baseline=fingerprints)
    elapsed = time.perf_counter() - started

    if args.write_baseline:
        count = write_baseline(
            Path(args.write_baseline), report.findings + report.baselined
        )
        print(
            f"repro-lint: wrote {count} finding(s) to baseline "
            f"{args.write_baseline}"
        )
        return 0

    # Timing is injected here, not in to_dict(): the report itself stays
    # deterministic so a --jobs N run is byte-identical to --jobs 1.
    payload = report.to_dict()
    payload["timing"] = {"seconds": round(elapsed, 3), "jobs": jobs}

    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )
    if args.sarif:
        sarif = report_to_sarif(report, rules if rules is not None else all_rules())
        Path(args.sarif).write_text(
            json.dumps(sarif, indent=2) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        if report.clean:
            status = "clean"
        else:
            status = (
                f"{len(report.errors)} error(s), "
                f"{len(report.warnings)} warning(s)"
            )
        extras = [
            f"{report.files_scanned} file(s) scanned",
            f"{report.suppressed_count} finding(s) suppressed",
        ]
        if report.baselined:
            extras.append(f"{len(report.baselined)} finding(s) baselined")
        print(f"repro-lint: {status} — {', '.join(extras)}")

    if report.findings and args.strict:
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static analysis for determinism, lock discipline, "
        "process-pool safety, exception hygiene, and whole-program "
        "concurrency (lock-order cycles, async safety)",
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
