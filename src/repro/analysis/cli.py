"""The ``repro-lint`` command line.

Scans the given paths with the built-in rule battery and prints
findings as text (one per line, ``path:line rule message``) or JSON
(the CI artifact schema).  Exit codes: ``0`` clean (or findings without
``--strict``), ``1`` findings under ``--strict``, ``2`` bad invocation
(unknown rule selector, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.engine import all_rules, analyze_paths, select_rules


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach repro-lint's arguments to *parser* (shared with `repro lint`)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to scan (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        action="append",
        default=None,
        metavar="SELECTOR",
        help="restrict to rule ids or families (repeatable), "
        "e.g. --rules determinism --rules locks/lock-order",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--json-out",
        metavar="FILE",
        default=None,
        help="also write the JSON report to FILE (the CI artifact)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if any finding remains after suppressions",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )


def run(args: argparse.Namespace) -> int:
    """Execute a parsed repro-lint invocation; returns the exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:35s} {rule.description}")
        return 0

    try:
        rules = select_rules(args.rules) if args.rules else None
    except ValueError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    paths = [Path(raw) for raw in args.paths]
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"repro-lint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    report = analyze_paths(paths, rules)
    payload = report.to_dict()

    if args.json_out:
        Path(args.json_out).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        status = "clean" if report.clean else f"{len(report.findings)} finding(s)"
        print(
            f"repro-lint: {status} — {report.files_scanned} file(s) scanned, "
            f"{report.suppressed_count} finding(s) suppressed"
        )

    if report.findings and args.strict:
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-lint`` console script."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="static analysis for determinism, lock discipline, "
        "process-pool safety, and exception hygiene",
    )
    add_arguments(parser)
    args = parser.parse_args(argv)
    return run(args)


if __name__ == "__main__":
    raise SystemExit(main())
