"""Findings: what a rule reports, where, and how to fix it.

A :class:`Finding` is one concrete violation anchored to a file and
line.  Findings are plain frozen data — the engine produces them, the
CLI renders them (text or JSON), and tests assert on them — so they
carry everything a reader needs in one place: the rule id, a message
stating the defect, and a fix hint stating the repo-sanctioned remedy.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    """File the violation lives in (as given to the analyzer)."""

    line: int
    """1-indexed source line of the offending node."""

    rule_id: str
    """``family/rule-name`` identifier (e.g. ``determinism/id-keyed-state``)."""

    message: str
    """What is wrong, stated as a fact about this code."""

    hint: str = ""
    """The repo-sanctioned fix, when one exists."""

    suppressible: bool = True
    """Audit findings about suppressions themselves are not suppressible —
    otherwise a stale ``allow`` comment could hide its own staleness."""

    severity: str = "error"
    """``"error"`` or ``"warning"``.  Warnings are advisory in a normal
    run and only fail the build under ``--strict`` (the unused-suppression
    audit is the canonical warning: stale, but not broken, code)."""

    @property
    def family(self) -> str:
        """The rule family (text before the first ``/``)."""
        return self.rule_id.split("/", 1)[0]

    @property
    def sort_key(self) -> tuple[str, int, str]:
        return (self.path, self.line, self.rule_id)

    def render(self) -> str:
        """One-line human-readable form (``path:line: [rule] message``)."""
        marker = "warning: " if self.severity == "warning" else ""
        text = f"{self.path}:{self.line}: {marker}[{self.rule_id}] {self.message}"
        if self.hint:
            text += f"\n    fix: {self.hint}"
        return text

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the CI artifact schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule_id,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }
