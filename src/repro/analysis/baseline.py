"""Findings baseline: ship the engine now, ratchet legacy findings down.

A new whole-program rule can surface findings in code that predates it.
Blocking the rule on a full burn-down would delay the protection for
*new* code; silently accepting the legacy findings would let new ones
hide among them.  The baseline file is the middle path:

* ``repro-lint --write-baseline FILE`` records every current finding's
  fingerprint;
* ``repro-lint --baseline FILE`` filters exactly those findings out of
  the report (they are still counted, listed under ``baselined`` in the
  JSON artifact) while any finding *not* in the file fails ``--strict``;
* deleting entries (or the file) ratchets the debt down — a baselined
  finding that gets fixed simply stops matching, and the stale entry is
  harmless.

Fingerprints hash ``(path, rule id, message)`` — deliberately not the
line number, so unrelated edits shifting a finding up or down the file
do not un-baseline it.  Paths are recorded as given on the command
line; run the tool from the repository root (as CI does) for stable
fingerprints.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1


def finding_fingerprint(finding: Finding) -> str:
    """Stable identity of a finding, independent of its line number."""
    blob = "\x00".join((finding.path, finding.rule_id, finding.message))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def load_baseline(path: Path) -> set[str]:
    """The fingerprint set in a baseline file.

    Raises :class:`ValueError` on a malformed or wrong-version file —
    a corrupt baseline must fail loudly, not silently accept everything.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"unreadable baseline file {path}: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"baseline file {path} is not a version-{BASELINE_VERSION} baseline"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise ValueError(f"baseline file {path} has no entries list")
    fingerprints: set[str] = set()
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(f"baseline file {path} has a malformed entry")
        fingerprints.add(str(entry["fingerprint"]))
    return fingerprints


def write_baseline(path: Path, findings: list[Finding]) -> int:
    """Write the baseline for *findings*; returns the entry count.

    Entries carry the human-readable context next to the fingerprint so
    a reviewer can see what debt the file acknowledges without re-running
    the tool.
    """
    entries = [
        {
            "fingerprint": finding_fingerprint(finding),
            "rule": finding.rule_id,
            "path": finding.path,
            "message": finding.message,
        }
        for finding in sorted(findings, key=lambda finding: finding.sort_key)
    ]
    payload = {"version": BASELINE_VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


__all__ = [
    "BASELINE_VERSION",
    "finding_fingerprint",
    "load_baseline",
    "write_baseline",
]
