"""Runtime lock sanitizer: observed-order deadlock detection for tests.

Static lock-order analysis (``lockorder/cycle``) sees the code; the
sanitizer sees the *execution*.  :meth:`LockSanitizer.install` replaces
``threading.Lock`` / ``threading.RLock`` with instrumented factories, so
every lock created afterwards — including the ones ``queue.Queue`` and
``threading.Condition`` build internally — records, per thread, the
stack of locks held at each acquisition:

* **lock-order inversion**: thread 1 was ever seen holding ``A`` while
  acquiring ``B``, and any thread was ever seen holding ``B`` while
  acquiring ``A``.  The two orders need not overlap in time — that is
  the point: the schedule that interleaves them deadlocks, even if this
  run got lucky.  Inversions are the gating signal (CI fails on any).
* **hold-budget overrun**: a lock held longer than the budget
  (default 1s).  Informational — long holds are a throughput smell, not
  a proven bug — and capped to keep reports bounded.

Condition variables are first-class: the wrapper implements the
``_release_save`` / ``_acquire_restore`` / ``_is_owned`` protocol that
``threading.Condition`` looks for, and resets hold timing across a
``wait()`` so a blocked consumer is not reported as a long hold.

Install per process (``REPRO_LOCK_SANITIZER=1`` + the conftest hook, or
:func:`install_from_env` in a harness).  Locks created *before* install
are invisible — install early.  The sanitizer's own state is guarded by
a raw ``_thread`` lock so instrumentation never recurses into itself.
"""

from __future__ import annotations

import _thread
import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from types import TracebackType
from typing import Any

_MAX_LONG_HOLDS = 100

_ENV_FLAG = "REPRO_LOCK_SANITIZER"
_ENV_REPORT = "REPRO_LOCK_SANITIZER_REPORT"


@dataclass(frozen=True)
class OrderWitness:
    """One observed ``outer held -> inner acquired`` event."""

    outer: str
    inner: str
    thread: str


@dataclass(frozen=True)
class Inversion:
    """Two witnesses proving both acquisition orders of a lock pair."""

    first: OrderWitness
    second: OrderWitness

    def to_dict(self) -> dict[str, Any]:
        return {
            "first": vars(self.first),
            "second": vars(self.second),
        }


@dataclass(frozen=True)
class LongHold:
    """One hold that exceeded the budget."""

    lock: str
    seconds: float
    thread: str

    def to_dict(self) -> dict[str, Any]:
        return {"lock": self.lock, "seconds": self.seconds, "thread": self.thread}


@dataclass
class _HeldEntry:
    serial: int
    label: str
    acquired_at: float
    depth: int = 1


class LockSanitizer:
    """Instrumented ``threading`` lock factories with order tracking."""

    def __init__(self, hold_budget_seconds: float = 1.0) -> None:
        self.hold_budget_seconds = hold_budget_seconds
        self.inversions: list[Inversion] = []
        self.long_holds: list[LongHold] = []
        self._state_lock = _thread.allocate_lock()
        self._held = threading.local()
        self._serial = 0
        self._orders: dict[tuple[int, int], OrderWitness] = {}
        self._reported: set[frozenset[int]] = set()
        self._installed = False
        self._original_lock: Any = None
        self._original_rlock: Any = None

    # ------------------------------------------------------------------
    # Factory patching
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Patch ``threading.Lock``/``threading.RLock`` (idempotent)."""
        if self._installed:
            return
        self._original_lock = threading.Lock
        self._original_rlock = threading.RLock
        sanitizer = self

        def make_lock() -> "_SanitizedLock":
            return _SanitizedLock(sanitizer, sanitizer._original_lock())

        def make_rlock() -> "_SanitizedLock":
            return _SanitizedLock(sanitizer, sanitizer._original_rlock())

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        self._installed = True

    def uninstall(self) -> None:
        """Restore the original factories (existing wrappers keep working)."""
        if not self._installed:
            return
        threading.Lock = self._original_lock
        threading.RLock = self._original_rlock
        self._installed = False

    # ------------------------------------------------------------------
    # Event recording (called from the wrappers)
    # ------------------------------------------------------------------
    def next_serial(self) -> int:
        with self._state_lock:
            self._serial += 1
            return self._serial

    def _stack(self) -> list[_HeldEntry]:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    def on_acquired(self, serial: int, label: str) -> None:
        stack = self._stack()
        for entry in stack:
            if entry.serial == serial:
                entry.depth += 1
                return
        thread_name = _thread_label()
        with self._state_lock:
            for outer in stack:
                if outer.serial == serial:
                    continue
                pair = (outer.serial, serial)
                if pair not in self._orders:
                    self._orders[pair] = OrderWitness(
                        outer=outer.label, inner=label, thread=thread_name
                    )
                reverse = self._orders.get((serial, outer.serial))
                key = frozenset(pair)
                if reverse is not None and key not in self._reported:
                    self._reported.add(key)
                    self.inversions.append(
                        Inversion(first=reverse, second=self._orders[pair])
                    )
        stack.append(_HeldEntry(serial=serial, label=label, acquired_at=time.monotonic()))

    def on_released(self, serial: int) -> None:
        stack = self._stack()
        for position in range(len(stack) - 1, -1, -1):
            entry = stack[position]
            if entry.serial != serial:
                continue
            entry.depth -= 1
            if entry.depth == 0:
                del stack[position]
                held_for = time.monotonic() - entry.acquired_at
                if held_for > self.hold_budget_seconds:
                    with self._state_lock:
                        if len(self.long_holds) < _MAX_LONG_HOLDS:
                            self.long_holds.append(
                                LongHold(
                                    lock=entry.label,
                                    seconds=round(held_for, 3),
                                    thread=_thread_label(),
                                )
                            )
            return
        # Released on a thread that never recorded the acquire (bare
        # Lock handed across threads): nothing to unwind.

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.inversions

    def report(self) -> dict[str, Any]:
        """Machine-readable result (the CI artifact schema)."""
        with self._state_lock:
            return {
                "version": 1,
                "hold_budget_seconds": self.hold_budget_seconds,
                "orders_observed": len(self._orders),
                "inversions": [inversion.to_dict() for inversion in self.inversions],
                "long_holds": [hold.to_dict() for hold in self.long_holds],
            }

    def write_report(self, path: Path) -> None:
        path.write_text(json.dumps(self.report(), indent=2) + "\n", encoding="utf-8")


class _SanitizedLock:
    """Wrapper around a real lock that reports to the sanitizer.

    Implements the full lock protocol plus the private hooks
    ``threading.Condition`` binds when present.
    """

    def __init__(self, sanitizer: LockSanitizer, inner: Any) -> None:
        self._sanitizer = sanitizer
        self._inner = inner
        self._serial = sanitizer.next_serial()
        self._label = _creation_site(self._serial)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._sanitizer.on_acquired(self._serial, self._label)
        return acquired

    def release(self) -> None:
        self._inner.release()
        self._sanitizer.on_released(self._serial)

    def locked(self) -> bool:
        return bool(self._inner.locked())

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<sanitized {self._inner!r} at {self._label}>"

    # -- threading.Condition protocol ----------------------------------
    def _release_save(self) -> Any:
        # Condition.wait: drop the lock (and our hold tracking) while
        # the thread sleeps; a blocked waiter is not "holding" anything.
        self._sanitizer.on_released(self._serial)
        if hasattr(self._inner, "_release_save"):
            return self._inner._release_save()
        self._inner.release()
        return None

    def _acquire_restore(self, state: Any) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(state)
        else:
            self._inner.acquire()
        # Fresh hold timing: the wait itself must not count against the
        # hold budget.
        self._sanitizer.on_acquired(self._serial, self._label)

    def _is_owned(self) -> bool:
        if hasattr(self._inner, "_is_owned"):
            return bool(self._inner._is_owned())
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _recursion_count(self) -> int:
        # multiprocessing.resource_tracker introspects its RLock with
        # this (3.11+); fall back to our own per-thread depth when the
        # inner lock predates the API.
        if hasattr(self._inner, "_recursion_count"):
            return int(self._inner._recursion_count())
        for entry in self._sanitizer._stack():
            if entry.serial == self._serial:
                return entry.depth
        return 0

    def _at_fork_reinit(self) -> None:  # pragma: no cover - fork path
        if hasattr(self._inner, "_at_fork_reinit"):
            self._inner._at_fork_reinit()

    def __getattr__(self, name: str) -> Any:
        # Anything else stdlib internals poke at (the lock protocol has
        # grown private members before) passes straight through.
        return getattr(object.__getattribute__(self, "_inner"), name)


def _thread_label() -> str:
    """The current thread's name without touching ``current_thread()``.

    ``threading.current_thread()`` registers a ``_DummyThread`` for
    unregistered threads — and a thread acquiring a sanitized lock
    *during its own bootstrap* (``Thread._started.set()`` runs before
    registration) is exactly that, so calling it from the acquisition
    hook recurses without bound.  A raw registry lookup never registers
    anything.
    """
    ident = _thread.get_ident()
    registry: dict[int, Any] = getattr(threading, "_active", {})
    thread = registry.get(ident)
    return str(thread.name) if thread is not None else f"thread-{ident}"


def _creation_site(serial: int) -> str:
    """``file:line`` of the code that created the lock, plus its serial.

    Walks out of this module and :mod:`threading` so ``Condition()``'s
    internal ``RLock()`` is attributed to the Condition's creator.
    """
    import sys

    frame = sys._getframe(1)
    here = __file__
    threading_file = threading.__file__
    while frame is not None:
        filename = frame.f_code.co_filename
        if filename not in (here, threading_file):
            return f"{filename}:{frame.f_lineno}#{serial}"
        frame = frame.f_back
    return f"<unknown>#{serial}"


_ACTIVE: LockSanitizer | None = None


def install_from_env() -> LockSanitizer | None:
    """Install a process-wide sanitizer when ``REPRO_LOCK_SANITIZER=1``.

    Returns the (singleton) sanitizer, or None when the flag is unset.
    Harnesses call this as early as possible, read ``.report()`` at the
    end, and gate on ``.clean``.
    """
    global _ACTIVE
    if os.environ.get(_ENV_FLAG, "") not in {"1", "true", "yes"}:
        return None
    if _ACTIVE is None:
        _ACTIVE = LockSanitizer()
        _ACTIVE.install()
    return _ACTIVE


def active_sanitizer() -> LockSanitizer | None:
    """The process-wide sanitizer installed by :func:`install_from_env`."""
    return _ACTIVE


def report_path_from_env(default: str = "lock-sanitizer-report.json") -> Path:
    """Where the harness should write the report (env-overridable)."""
    return Path(os.environ.get(_ENV_REPORT, default))


__all__ = [
    "Inversion",
    "LockSanitizer",
    "LongHold",
    "OrderWitness",
    "active_sanitizer",
    "install_from_env",
    "report_path_from_env",
]
