"""Runtime concurrency instrumentation (the dynamic half of the linter).

The static rules in :mod:`repro.analysis.rules` prove what they can see;
:class:`~repro.analysis.runtime.sanitizer.LockSanitizer` watches what
actually happens: it patches the :mod:`threading` lock factories so the
test suite records every real acquisition order and flags lock-order
inversions (and over-budget hold times) that only manifest under a
particular interleaving.
"""

from __future__ import annotations

from repro.analysis.runtime.sanitizer import (
    LockSanitizer,
    install_from_env,
)

__all__ = ["LockSanitizer", "install_from_env"]
