"""Inline suppressions: ``# repro: allow[rule-id] <reason>``.

A suppression silences one rule (or a whole family) on the line it
annotates — or on the statement directly below, for the common case of
a comment placed above a long statement.  Several rules can share one
comment (``allow[rule-a,rule-b] reason``), several allow clauses can
share one comment line, and suppression comments **stack**: a run of
consecutive comment-only suppression lines covers the first statement
after the stack, so multi-rule waivers stay one-per-line and readable.

Suppressions are *audited*:

* a suppression without a written reason is itself a finding
  (``analysis/suppression-missing-reason``) — the reason is the review
  record for why the invariant is waived here;
* a suppression that silences nothing is itself a *warning*
  (``analysis/unused-suppression``) — stale allows hide future
  violations on the same line; advisory in a normal run, an error under
  ``--strict``.

Neither audit finding can be suppressed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

_SUPPRESSION = re.compile(
    r"repro:\s*allow\[(?P<rules>[A-Za-z0-9_./, -]+)\]"
    r"\s*(?P<reason>(?:(?!repro:\s*allow\[).)*)"
)

_MIN_REASON_LENGTH = 8
"""Shortest acceptable reason; anything shorter is noise, not a record."""


@dataclass
class Suppression:
    """One rule id allowed by one ``# repro: allow[...]`` clause."""

    path: str
    line: int
    rule_id: str
    """Full rule id or bare family name (``determinism`` allows all
    ``determinism/*`` rules on the line)."""

    reason: str
    used: bool = field(default=False, compare=False)
    covered_lines: tuple[int, ...] = ()
    """Lines this suppression silences; computed at collection time
    (its own line, the line below, and — for stacked comment-only
    suppressions — the first statement after the stack)."""

    def matches(self, finding: Finding) -> bool:
        """Whether this suppression covers *finding* (id or family)."""
        return finding.rule_id == self.rule_id or finding.family == self.rule_id

    def covers_line(self, line: int) -> bool:
        """Whether *line* falls in this suppression's computed coverage."""
        if self.covered_lines:
            return line in self.covered_lines
        return line in (self.line, self.line + 1)


def collect_suppressions(path: str, source: str) -> list[Suppression]:
    """Extract every suppression clause from *source*.

    Tokenizing (rather than regex over raw lines) keeps the scan from
    matching the pattern inside string literals — the analyzer's own
    test fixtures embed suppressions in source strings.
    """
    suppressions: list[Suppression] = []
    lines = source.splitlines()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            for match in _SUPPRESSION.finditer(token.string):
                reason = match.group("reason").strip().rstrip("#").strip()
                for rule_id in match.group("rules").split(","):
                    rule_id = rule_id.strip()
                    if rule_id:
                        suppressions.append(
                            Suppression(
                                path=path,
                                line=token.start[0],
                                rule_id=rule_id,
                                reason=reason,
                            )
                        )
    except tokenize.TokenError:
        # The engine only tokenizes sources that already parsed with
        # ast; a tokenize failure here means no comments are readable,
        # so the module simply has no suppressions.
        return suppressions
    _assign_coverage(suppressions, lines)
    return suppressions


def _assign_coverage(suppressions: list[Suppression], lines: list[str]) -> None:
    """Compute each suppression's covered lines, honouring stacks.

    A clause always covers its own line and the next line.  When the
    clause sits on a comment-only line and the lines below are also
    comment-only suppression lines, coverage extends through the stack
    to the first following statement — so two stacked ``allow`` comments
    both silence the statement beneath them.
    """

    def comment_only(line_number: int) -> bool:
        if not 1 <= line_number <= len(lines):
            return False
        return lines[line_number - 1].lstrip().startswith("#")

    stack_lines = {
        suppression.line
        for suppression in suppressions
        if comment_only(suppression.line)
    }
    for suppression in suppressions:
        covered = {suppression.line, suppression.line + 1}
        cursor = suppression.line + 1
        while cursor in stack_lines:
            cursor += 1
            covered.add(cursor)
        suppression.covered_lines = tuple(sorted(covered))


def audit_suppressions(suppressions: list[Suppression]) -> list[Finding]:
    """Findings for reason-less and unused suppressions (unsuppressible).

    A missing reason is an error (the record is mandatory); an unused
    suppression is a *warning* — advisory in normal runs, promoted to a
    build failure by ``--strict``.
    """
    findings: list[Finding] = []
    for suppression in suppressions:
        if len(suppression.reason) < _MIN_REASON_LENGTH:
            findings.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    rule_id="analysis/suppression-missing-reason",
                    message=(
                        f"suppression for {suppression.rule_id!r} carries no "
                        "written reason"
                    ),
                    hint=(
                        "state why the invariant is safely waived here, "
                        "after the closing bracket"
                    ),
                    suppressible=False,
                )
            )
        if not suppression.used:
            findings.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    rule_id="analysis/unused-suppression",
                    message=(
                        f"suppression for {suppression.rule_id!r} silences "
                        "nothing on this line"
                    ),
                    hint="delete it; stale allows hide future violations",
                    suppressible=False,
                    severity="warning",
                )
            )
    return findings
