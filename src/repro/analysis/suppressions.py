"""Inline suppressions: ``# repro: allow[rule-id] <reason>``.

A suppression silences one rule (or a whole family) on the line it
annotates — or on the line directly below, for the common case of a
comment placed above a long statement.  Suppressions are *audited*:

* a suppression without a written reason is itself a finding
  (``analysis/suppression-missing-reason``) — the reason is the review
  record for why the invariant is waived here;
* a suppression that silences nothing is itself a finding
  (``analysis/unused-suppression``) — stale allows hide future
  violations on the same line.

Neither audit finding can be suppressed.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.analysis.findings import Finding

_SUPPRESSION = re.compile(
    r"repro:\s*allow\[(?P<rule>[A-Za-z0-9_./-]+)\]\s*(?P<reason>.*)$"
)

_MIN_REASON_LENGTH = 8
"""Shortest acceptable reason; anything shorter is noise, not a record."""


@dataclass
class Suppression:
    """One ``# repro: allow[...]`` comment."""

    path: str
    line: int
    rule_id: str
    """Full rule id or bare family name (``determinism`` allows all
    ``determinism/*`` rules on the line)."""

    reason: str
    used: bool = field(default=False, compare=False)

    def matches(self, finding: Finding) -> bool:
        """Whether this suppression covers *finding* (id or family)."""
        return finding.rule_id == self.rule_id or finding.family == self.rule_id

    def covers_line(self, line: int) -> bool:
        """A suppression annotates its own line and the line below."""
        return line in (self.line, self.line + 1)


def collect_suppressions(path: str, source: str) -> list[Suppression]:
    """Extract every suppression comment from *source*.

    Tokenizing (rather than regex over raw lines) keeps the scan from
    matching the pattern inside string literals — the analyzer's own
    test fixtures embed suppressions in source strings.
    """
    suppressions: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESSION.search(token.string)
            if match is None:
                continue
            suppressions.append(
                Suppression(
                    path=path,
                    line=token.start[0],
                    rule_id=match.group("rule"),
                    reason=match.group("reason").strip(),
                )
            )
    except tokenize.TokenError:
        # The engine only tokenizes sources that already parsed with
        # ast; a tokenize failure here means no comments are readable,
        # so the module simply has no suppressions.
        return suppressions
    return suppressions


def audit_suppressions(suppressions: list[Suppression]) -> list[Finding]:
    """Findings for reason-less and unused suppressions (unsuppressible)."""
    findings: list[Finding] = []
    for suppression in suppressions:
        if len(suppression.reason) < _MIN_REASON_LENGTH:
            findings.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    rule_id="analysis/suppression-missing-reason",
                    message=(
                        f"suppression for {suppression.rule_id!r} carries no "
                        "written reason"
                    ),
                    hint=(
                        "state why the invariant is safely waived here, "
                        "after the closing bracket"
                    ),
                    suppressible=False,
                )
            )
        if not suppression.used:
            findings.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    rule_id="analysis/unused-suppression",
                    message=(
                        f"suppression for {suppression.rule_id!r} silences "
                        "nothing on this line"
                    ),
                    hint="delete it; stale allows hide future violations",
                    suppressible=False,
                )
            )
    return findings
