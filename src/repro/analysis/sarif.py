"""SARIF 2.1.0 serialization of an analysis report.

SARIF (Static Analysis Results Interchange Format) is what code-review
surfaces ingest: one ``repro-lint --sarif lint-report.sarif`` artifact
renders findings inline on the changed lines of a pull request.  The
emitter covers the subset every consumer reads — tool metadata with the
rule catalogue, one ``result`` per finding with ruleId / level /
message / physical location — and nothing speculative.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.engine import AnalysisReport, Rule

SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _level_for(severity: str) -> str:
    return "warning" if severity == "warning" else "error"


def report_to_sarif(
    report: "AnalysisReport", rules: list["Rule"] | None = None
) -> dict[str, object]:
    """The SARIF 2.1.0 document for *report* as JSON-ready data."""
    rule_descriptors = [
        {
            "id": rule.rule_id,
            "shortDescription": {"text": rule.description},
        }
        for rule in (rules or [])
    ]
    results = [
        {
            "ruleId": finding.rule_id,
            "level": _level_for(finding.severity),
            "message": {
                "text": (
                    f"{finding.message}  fix: {finding.hint}"
                    if finding.hint
                    else finding.message
                )
            },
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path.replace("\\", "/")},
                        "region": {"startLine": max(1, finding.line)},
                    }
                }
            ],
        }
        for finding in report.findings
    ]
    return {
        "$schema": _SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://github.com/",
                        "rules": rule_descriptors,
                    }
                },
                "results": results,
            }
        ],
    }


__all__ = ["SARIF_VERSION", "report_to_sarif"]
