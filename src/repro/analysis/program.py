"""Whole-program model: symbols, conservative call edges, lock identities.

The per-module rules see one AST at a time; the failure modes that
matter at serving scale — a lock-order cycle spanning ``service`` and
``fleet``, a blocking call reached *transitively* from an ``async def``
handler — only exist across modules.  :class:`ProgramGraph` is the
shared substrate for rules that need the whole picture:

* **module resolution** — every scanned :class:`ModuleUnit` indexed by
  its dotted name, imports resolved through the same alias machinery
  the per-module rules use;
* **symbol table** — every module-level function and every method gets
  a stable qualified name (``repro.service.server.PlanService.submit``);
* **conservative call edges** — resolved lexically, with a lightweight
  type-inference pass (parameter annotations, ``self.attr = Param``
  captures, direct instantiations) so ``self.service.submit(...)``
  resolves through the annotated constructor parameter.  A call that
  cannot be resolved produces *no* edge — the graph under-approximates
  reachability, which is the right polarity for "is this blocking call
  reachable" (no false paths) and documented for ``lockorder`` (a cycle
  reported is real code, a cycle through an unresolvable indirection is
  missed);
* **deferred edges** — a callable handed to ``run_in_executor`` /
  ``asyncio.to_thread`` / ``Thread(target=...)`` / pool ``submit`` runs
  on another thread: the edge is recorded but marked *deferred*, and
  both concurrency rules skip deferred edges (locks held at the call
  site are not held where the callee runs, and the event loop is not
  blocked by work it shipped to an executor);
* **lock identities** — every lock-like attribute (``self._lock`` and
  friends, module-level ``_LOCK = threading.Lock()``) gets a stable
  program-wide identity, ``module.Class.attr`` or ``module.NAME``, so
  acquisition sites in different modules agree on what they acquired.

Everything here is pure data derived from the parsed trees — building a
program never imports or executes the analyzed code.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field

from repro.analysis.engine import ModuleUnit
from repro.analysis.rules.common import dotted_name, import_aliases

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "threading.Semaphore",
    "threading.BoundedSemaphore",
}

_DEFERRING_CALLABLES = {
    # asyncio: the callable runs on an executor thread, not the loop.
    "run_in_executor",
    "to_thread",
    "call_soon_threadsafe",
    # threads / pools: the callable runs on another thread or process.
    "Thread",
    "Timer",
    "submit",
    "apply_async",
    "map_async",
    "starmap_async",
}

_BLOCKING_DOTTED = {
    # Dotted callables that block the calling thread outright.
    "time.sleep",
    "socket.create_connection",
    "subprocess.run",
    "subprocess.check_call",
    "subprocess.check_output",
    "urllib.request.urlopen",
}

_SOCKET_BLOCKING_METHODS = {
    "accept",
    "connect",
    "recv",
    "recvfrom",
    "send",
    "sendall",
    "sendto",
}

_STDLIB_INSTANCE_TYPES = {
    # Constructor dotted name -> the type identity methods resolve against.
    "queue.Queue": "queue.Queue",
    "queue.SimpleQueue": "queue.Queue",
    "queue.LifoQueue": "queue.Queue",
    "queue.PriorityQueue": "queue.Queue",
    "threading.Event": "threading.Event",
    "threading.Condition": "threading.Condition",
    "threading.Lock": "threading.Lock",
    "threading.RLock": "threading.Lock",
    "threading.Semaphore": "threading.Lock",
    "threading.BoundedSemaphore": "threading.Lock",
    "socket.socket": "socket.socket",
}


@dataclass(frozen=True)
class FunctionSymbol:
    """One addressable function or method in the scanned program."""

    qualname: str
    """``module.func`` or ``module.Class.method``."""

    module_name: str
    class_name: str | None
    path: str
    line: int
    is_async: bool


@dataclass(frozen=True)
class CallEdge:
    """One resolved call site: *caller* invokes *callee*."""

    caller: str
    callee: str
    path: str
    line: int
    deferred: bool = False
    """True when the callee was handed to an executor/thread/pool and
    therefore runs outside the caller's thread (and lock context)."""


@dataclass(frozen=True)
class LockAcquisition:
    """One ``with``-block acquisition of an identified lock."""

    lock_id: str
    path: str
    line: int
    held: tuple[str, ...]
    """Lock ids already held (same function, lexically enclosing)."""


@dataclass(frozen=True)
class BlockingCall:
    """One call site that blocks the calling thread (sleep, queue get,
    lock acquire, socket/file I/O)."""

    op: str
    """Human-readable operation identity (``time.sleep``,
    ``queue.Queue.get``, ``repro.x.C._lock.acquire``)."""

    path: str
    line: int


@dataclass
class FunctionFacts:
    """Per-function facts the concurrency rules consume."""

    symbol: FunctionSymbol
    acquisitions: list[LockAcquisition] = field(default_factory=list)
    calls: list[CallEdge] = field(default_factory=list)
    calls_under_lock: list[tuple[tuple[str, ...], CallEdge]] = field(
        default_factory=list
    )
    blocking_calls: list[BlockingCall] = field(default_factory=list)


class _ModuleIndex:
    """Pass-1 product for one module: classes, functions, aliases."""

    def __init__(self, module: ModuleUnit) -> None:
        self.module = module
        self.aliases = import_aliases(module.tree)
        self.functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.functions[node.name] = node
            elif isinstance(node, ast.ClassDef):
                self.classes[node.name] = node


class ProgramGraph:
    """The whole scanned program, as data: symbols, calls, locks.

    Build with :meth:`build`; query with :meth:`callees`,
    :meth:`facts_for`, :attr:`functions`.  All iteration orders are
    deterministic (sorted module and symbol names), so rule output is
    stable across runs and ``--jobs`` settings.
    """

    def __init__(self) -> None:
        self.modules: dict[str, ModuleUnit] = {}
        self.functions: dict[str, FunctionSymbol] = {}
        self.facts: dict[str, FunctionFacts] = {}
        self.class_attr_types: dict[str, dict[str, str]] = {}
        self.class_bases: dict[str, tuple[str, ...]] = {}
        self.lock_ids: set[str] = set()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, modules: Iterable[ModuleUnit]) -> "ProgramGraph":
        """Index *modules* and resolve call edges between them."""
        program = cls()
        indexes: dict[str, _ModuleIndex] = {}
        for module in sorted(modules, key=lambda unit: unit.module_name):
            # Last writer wins on duplicate names; scanned trees are
            # disjoint in practice (one file per dotted module).
            indexes[module.module_name] = _ModuleIndex(module)
            program.modules[module.module_name] = module
        for name in sorted(indexes):
            program._index_symbols(indexes[name])
        for name in sorted(indexes):
            program._infer_class_attr_types(indexes[name])
        for name in sorted(indexes):
            program._extract_facts(indexes[name])
        return program

    def _index_symbols(self, index: _ModuleIndex) -> None:
        module = index.module
        for name, node in index.functions.items():
            qualname = f"{module.module_name}.{name}"
            self.functions[qualname] = FunctionSymbol(
                qualname=qualname,
                module_name=module.module_name,
                class_name=None,
                path=module.path,
                line=node.lineno,
                is_async=isinstance(node, ast.AsyncFunctionDef),
            )
        for class_name, class_node in index.classes.items():
            class_qual = f"{module.module_name}.{class_name}"
            bases: list[str] = []
            for base in class_node.bases:
                base_name = dotted_name(base, index.aliases)
                if base_name is not None:
                    bases.append(self._canonical_class(base_name, index))
            self.class_bases[class_qual] = tuple(bases)
            for node in class_node.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{class_qual}.{node.name}"
                    self.functions[qualname] = FunctionSymbol(
                        qualname=qualname,
                        module_name=module.module_name,
                        class_name=class_name,
                        path=module.path,
                        line=node.lineno,
                        is_async=isinstance(node, ast.AsyncFunctionDef),
                    )

    def _canonical_class(self, dotted: str, index: _ModuleIndex) -> str:
        """Map a resolved dotted name onto a known class qualname.

        A locally-defined base (``class Sub(Base)``) is module-qualified;
        anything else already came through the import aliases fully
        qualified.
        """
        if dotted.split(".", 1)[0] in index.classes:
            return f"{index.module.module_name}.{dotted}"
        return dotted

    # ------------------------------------------------------------------
    # Type inference (deliberately shallow)
    # ------------------------------------------------------------------
    def _resolve_class(self, dotted: str | None, index: _ModuleIndex) -> str | None:
        """A dotted reference that names a class, canonicalized, or None."""
        if dotted is None:
            return None
        if dotted in _STDLIB_INSTANCE_TYPES:
            return _STDLIB_INSTANCE_TYPES[dotted]
        head, _, rest = dotted.partition(".")
        if not rest and head in index.classes:
            return f"{index.module.module_name}.{head}"
        # Fully-qualified reference to a class in another scanned module:
        # `repro.service.server.PlanService` splits as module + class.
        module_name, _, class_name = dotted.rpartition(".")
        if module_name in self.modules and class_name:
            candidate = f"{module_name}.{class_name}"
            if candidate in self.class_bases:
                return candidate
        return None

    def _annotation_type(
        self, annotation: ast.expr | None, index: _ModuleIndex
    ) -> str | None:
        """Class named by a parameter/attribute annotation, or None."""
        if annotation is None:
            return None
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return None
        if isinstance(annotation, ast.BinOp) and isinstance(annotation.op, ast.BitOr):
            return self._annotation_type(
                annotation.left, index
            ) or self._annotation_type(annotation.right, index)
        if isinstance(annotation, ast.Subscript):
            base = dotted_name(annotation.value, index.aliases)
            if base is not None and base.rsplit(".", 1)[-1] == "Optional":
                return self._annotation_type(annotation.slice, index)
            return None
        if isinstance(annotation, (ast.Name, ast.Attribute)):
            return self._resolve_class(dotted_name(annotation, index.aliases), index)
        return None

    def _param_types(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, index: _ModuleIndex
    ) -> dict[str, str]:
        types: dict[str, str] = {}
        args = node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            inferred = self._annotation_type(arg.annotation, index)
            if inferred is not None:
                types[arg.arg] = inferred
        return types

    def _expr_type(
        self, expr: ast.expr, env: Mapping[str, str], index: _ModuleIndex
    ) -> str | None:
        """Instance type of *expr* under *env*, or None when unknown."""
        if isinstance(expr, ast.Name):
            return env.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value, env, index)
            if base is not None:
                attr_type = self._class_attr_type(base, expr.attr)
                if attr_type is not None:
                    return attr_type
            return None
        if isinstance(expr, ast.Call):
            if isinstance(expr.func, (ast.Name, ast.Attribute)):
                return self._resolve_class(
                    dotted_name(expr.func, index.aliases), index
                )
            return None
        if isinstance(expr, ast.BoolOp):
            for value in expr.values:
                inferred = self._expr_type(value, env, index)
                if inferred is not None:
                    return inferred
            return None
        if isinstance(expr, ast.Await):
            return self._expr_type(expr.value, env, index)
        return None

    def _class_attr_type(self, class_qual: str, attr: str) -> str | None:
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            attr_type = self.class_attr_types.get(current, {}).get(attr)
            if attr_type is not None:
                return attr_type
            stack.extend(self.class_bases.get(current, ()))
        return None

    def _infer_class_attr_types(self, index: _ModuleIndex) -> None:
        """Record ``self.attr`` instance types and lock identities."""
        module = index.module
        for class_name, class_node in index.classes.items():
            class_qual = f"{module.module_name}.{class_name}"
            attr_types = self.class_attr_types.setdefault(class_qual, {})
            for method in class_node.body:
                if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                env = self._param_types(method, index)
                for node in ast.walk(method):
                    if not isinstance(node, (ast.Assign, ast.AnnAssign)):
                        continue
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    value = node.value
                    for target in targets:
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        if (
                            isinstance(node, ast.AnnAssign)
                            and node.annotation is not None
                        ):
                            annotated = self._annotation_type(node.annotation, index)
                            if annotated is not None:
                                attr_types.setdefault(target.attr, annotated)
                        if value is None:
                            continue
                        if self._is_lock_factory_call(value, index):
                            self.lock_ids.add(f"{class_qual}.{target.attr}")
                        inferred = self._expr_type(value, env, index)
                        if inferred is not None:
                            attr_types.setdefault(target.attr, inferred)
        # Module-level locks: `_REGISTRY_LOCK = threading.Lock()`.
        for node in module.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            if self._is_lock_factory_call(node.value, index):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.lock_ids.add(f"{module.module_name}.{target.id}")

    def _is_lock_factory_call(self, expr: ast.expr, index: _ModuleIndex) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        if not isinstance(expr.func, (ast.Name, ast.Attribute)):
            return False
        return dotted_name(expr.func, index.aliases) in _LOCK_FACTORIES

    # ------------------------------------------------------------------
    # Fact extraction: acquisitions + call edges per function
    # ------------------------------------------------------------------
    def _extract_facts(self, index: _ModuleIndex) -> None:
        module = index.module
        for name, node in sorted(index.functions.items()):
            qualname = f"{module.module_name}.{name}"
            self.facts[qualname] = self._function_facts(
                qualname, node, None, index
            )
        for class_name, class_node in sorted(index.classes.items()):
            class_qual = f"{module.module_name}.{class_name}"
            for method in class_node.body:
                if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qualname = f"{class_qual}.{method.name}"
                    self.facts[qualname] = self._function_facts(
                        qualname, method, class_qual, index
                    )

    def _function_facts(
        self,
        qualname: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_qual: str | None,
        index: _ModuleIndex,
    ) -> FunctionFacts:
        facts = FunctionFacts(symbol=self.functions[qualname])
        env = dict(self._param_types(node, index))
        if class_qual is not None:
            env["self"] = class_qual
        # Pre-pass: direct local instantiations (`cache = PlanCache(...)`).
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name) and target.id not in env:
                    inferred = self._expr_type(stmt.value, env, index)
                    if inferred is not None:
                        env[target.id] = inferred
        scanner = _FactScanner(self, facts, env, index, class_qual)
        scanner.scan_block(node.body, ())
        return facts

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def facts_for(self, qualname: str) -> FunctionFacts | None:
        return self.facts.get(qualname)

    def callees(self, qualname: str) -> list[CallEdge]:
        facts = self.facts.get(qualname)
        return list(facts.calls) if facts is not None else []

    def async_functions(self) -> list[FunctionSymbol]:
        return [
            self.functions[name]
            for name in sorted(self.functions)
            if self.functions[name].is_async
        ]

    def resolve_method(self, class_qual: str, method: str) -> str | None:
        """``class.method`` resolved through the (scanned) base chain."""
        seen: set[str] = set()
        stack = [class_qual]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            candidate = f"{current}.{method}"
            if candidate in self.functions:
                return candidate
            stack.extend(self.class_bases.get(current, ()))
        return None

    def lock_identity(
        self, expr: ast.expr, env: Mapping[str, str], index: _ModuleIndex
    ) -> str | None:
        """Stable identity of the lock *expr* acquires, or None.

        ``self._lock`` maps to ``module.Class._lock`` (through the
        inferred type of ``self``), ``other.attr_lock`` through the
        inferred type of ``other``, and a bare name to a module-level
        lock id when one was registered.
        """
        if isinstance(expr, ast.Name):
            candidate = f"{index.module.module_name}.{expr.id}"
            return candidate if candidate in self.lock_ids else None
        if isinstance(expr, ast.Attribute):
            base = self._expr_type(expr.value, env, index)
            if base is None:
                return None
            seen: set[str] = set()
            stack = [base]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                candidate = f"{current}.{expr.attr}"
                if candidate in self.lock_ids:
                    return candidate
                stack.extend(self.class_bases.get(current, ()))
            return None
        return None


class _FactScanner:
    """Statement walker recording acquisitions and call edges."""

    def __init__(
        self,
        program: ProgramGraph,
        facts: FunctionFacts,
        env: Mapping[str, str],
        index: _ModuleIndex,
        class_qual: str | None,
    ) -> None:
        self.program = program
        self.facts = facts
        self.env = env
        self.index = index
        self.class_qual = class_qual

    def scan_block(self, body: Sequence[ast.stmt], held: tuple[str, ...]) -> None:
        for node in body:
            self._scan_statement(node, held)

    def _scan_statement(self, node: ast.stmt, held: tuple[str, ...]) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested def runs later, possibly on another thread; its
            # body is not part of this function's synchronous behaviour.
            return
        if isinstance(node, ast.With):
            acquired: list[str] = []
            for item in node.items:
                self._scan_expression(item.context_expr, held)
                lock_id = self.program.lock_identity(
                    item.context_expr, self.env, self.index
                )
                if lock_id is not None:
                    self.facts.acquisitions.append(
                        LockAcquisition(
                            lock_id=lock_id,
                            path=self.index.module.path,
                            line=item.context_expr.lineno,
                            held=held + tuple(acquired),
                        )
                    )
                    acquired.append(lock_id)
            self.scan_block(node.body, held + tuple(acquired))
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._scan_statement(child, held)
            elif isinstance(child, (ast.excepthandler, ast.match_case)):
                self.scan_block(child.body, held)
            elif isinstance(child, ast.expr):
                self._scan_expression(child, held)

    def _scan_expression(self, expr: ast.expr, held: tuple[str, ...]) -> None:
        # Hand-rolled walk so lambda bodies are skipped: a lambda runs
        # later, not at this call site (mirrors the nested-def policy).
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue
            if isinstance(node, ast.Call):
                self._record_call(node, held)
            stack.extend(ast.iter_child_nodes(node))

    def _record_call(self, node: ast.Call, held: tuple[str, ...]) -> None:
        blocking = self._blocking_op(node)
        if blocking is not None:
            self.facts.blocking_calls.append(
                BlockingCall(
                    op=blocking, path=self.index.module.path, line=node.lineno
                )
            )
        callee = self._resolve_callee(node.func)
        if callee is not None:
            edge = CallEdge(
                caller=self.facts.symbol.qualname,
                callee=callee,
                path=self.index.module.path,
                line=node.lineno,
            )
            self.facts.calls.append(edge)
            if held:
                self.facts.calls_under_lock.append((held, edge))
        terminal = (
            node.func.attr
            if isinstance(node.func, ast.Attribute)
            else node.func.id
            if isinstance(node.func, ast.Name)
            else None
        )
        if terminal in _DEFERRING_CALLABLES:
            for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                deferred = self._resolve_callee(arg)
                if deferred is not None:
                    self.facts.calls.append(
                        CallEdge(
                            caller=self.facts.symbol.qualname,
                            callee=deferred,
                            path=self.index.module.path,
                            line=node.lineno,
                            deferred=True,
                        )
                    )

    def _blocking_op(self, node: ast.Call) -> str | None:
        """Identity of the thread-blocking operation *node* performs.

        Under-approximates on purpose: only operations whose receiver
        type (or dotted name) is known for sure are reported, so every
        hit is real.  ``block=False`` queue calls are exempt — they
        raise instead of waiting.
        """
        func = node.func
        index = self.index
        if isinstance(func, ast.Name):
            if func.id == "open" and "open" not in index.aliases:
                if f"{index.module.module_name}.open" not in self.program.functions:
                    return "open"
            dotted = index.aliases.get(func.id)
            if dotted in _BLOCKING_DOTTED:
                return dotted
            return None
        if not isinstance(func, ast.Attribute):
            return None
        dotted = dotted_name(func, index.aliases)
        if dotted in _BLOCKING_DOTTED:
            return dotted
        if func.attr == "acquire":
            lock_id = self.program.lock_identity(func.value, self.env, index)
            if lock_id is not None and not self._nonblocking_kwargs(node):
                return f"{lock_id}.acquire"
            return None
        receiver = self.program._expr_type(func.value, self.env, index)
        if receiver == "queue.Queue" and func.attr in {"get", "put", "join"}:
            if not self._nonblocking_kwargs(node):
                return f"queue.Queue.{func.attr}"
            return None
        if receiver == "threading.Event" and func.attr == "wait":
            return "threading.Event.wait"
        if receiver == "socket.socket" and func.attr in _SOCKET_BLOCKING_METHODS:
            return f"socket.socket.{func.attr}"
        # `pool.apply_async(...).get()` / `executor.submit(...).result()`:
        # the async handle is consumed synchronously at the call site.
        if isinstance(func.value, ast.Call) and isinstance(
            func.value.func, ast.Attribute
        ):
            inner = func.value.func.attr
            if func.attr == "get" and inner in {
                "apply_async",
                "map_async",
                "starmap_async",
            }:
                return f"pool.{inner}().get"
            if func.attr == "result" and inner == "submit":
                return "Future.result"
        return None

    @staticmethod
    def _nonblocking_kwargs(node: ast.Call) -> bool:
        """True for ``block=False`` / ``blocking=False`` call forms."""
        for keyword in node.keywords:
            if keyword.arg in {"block", "blocking"} and (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is False
            ):
                return True
        if node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and first.value is False:
                return True
        return False

    def _resolve_callee(self, func: ast.expr) -> str | None:
        """Qualified name of the function *func* refers to, or None."""
        program = self.program
        index = self.index
        if isinstance(func, ast.Name):
            local = f"{index.module.module_name}.{func.id}"
            if local in program.functions:
                return local
            dotted = index.aliases.get(func.id)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            if func.id in index.classes:
                return program.resolve_method(local, "__init__")
            return None
        if isinstance(func, ast.Attribute):
            receiver_type = program._expr_type(func.value, self.env, index)
            if receiver_type is not None:
                resolved = program.resolve_method(receiver_type, func.attr)
                if resolved is not None:
                    return resolved
            dotted = dotted_name(func, index.aliases)
            if dotted is not None:
                return self._resolve_dotted(dotted)
            return None
        return None

    def _resolve_dotted(self, dotted: str) -> str | None:
        program = self.program
        if dotted in program.functions:
            return dotted
        as_class = program._resolve_class(dotted, self.index)
        if as_class is not None:
            return program.resolve_method(as_class, "__init__")
        # `module.Class.method` referenced fully qualified.
        head, _, method = dotted.rpartition(".")
        as_class = program._resolve_class(head, self.index) if head else None
        if as_class is not None:
            return program.resolve_method(as_class, method)
        return None


def build_program(modules: Iterable[ModuleUnit]) -> ProgramGraph:
    """Convenience alias for :meth:`ProgramGraph.build`."""
    return ProgramGraph.build(modules)


__all__ = [
    "BlockingCall",
    "CallEdge",
    "FunctionFacts",
    "FunctionSymbol",
    "LockAcquisition",
    "ProgramGraph",
    "build_program",
]
