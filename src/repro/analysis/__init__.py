"""Repo-aware static analysis for the reproduction stack.

``repro.analysis`` enforces the invariants the serving and planning
layers rely on but Python cannot express: determinism of the planning
packages, lock discipline in the shared-state classes, process-pool
payload safety, and exception hygiene.  Run it as ``repro-lint`` (or
``python -m repro lint``); see DESIGN.md for the rule catalogue and the
suppression policy.
"""

from __future__ import annotations

from repro.analysis.engine import (
    AnalysisReport,
    ModuleUnit,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    register,
    select_rules,
)
from repro.analysis.findings import Finding
from repro.analysis.suppressions import Suppression

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleUnit",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "register",
    "select_rules",
]
