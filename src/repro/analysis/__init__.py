"""Repo-aware static analysis for the reproduction stack.

``repro.analysis`` enforces the invariants the serving and planning
layers rely on but Python cannot express: determinism of the planning
packages, lock discipline in the shared-state classes, process-pool
payload safety, exception hygiene, and — via the whole-program graph in
:mod:`repro.analysis.program` — cross-module lock-order cycles and
event-loop async safety.  The static battery runs as ``repro-lint`` (or
``python -m repro lint``); the dynamic half,
:mod:`repro.analysis.runtime`, instruments real locks at test time.
See DESIGN.md for the rule catalogue and the suppression policy.
"""

from __future__ import annotations

from repro.analysis.engine import (
    AnalysisReport,
    ModuleUnit,
    ProgramRule,
    Rule,
    all_rules,
    analyze_paths,
    analyze_source,
    analyze_sources,
    register,
    select_rules,
)
from repro.analysis.findings import Finding
from repro.analysis.suppressions import Suppression

__all__ = [
    "AnalysisReport",
    "Finding",
    "ModuleUnit",
    "ProgramRule",
    "Rule",
    "Suppression",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "analyze_sources",
    "register",
    "select_rules",
]
