"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``table1``    — regenerate Table I (compression results);
* ``figures``   — regenerate the energy figures (3-5 single-user or
  6-8 multi-user) or the Fig. 9 timing comparison;
* ``generate``  — emit a NETGEN-style workload graph as JSON;
* ``plan``      — plan offloading for a workload graph and print the
  scheme summary;
* ``simulate``  — plan, then execute the plan on the discrete-event
  simulator (optionally with injected faults; ``--json`` dumps the full
  per-user timelines);
* ``report``    — run the whole evaluation and write a markdown report;
* ``sensitivity`` — sweep one physical parameter and show the crossover;
* ``compress``  — run Algorithm 1 on a workload graph, print quality
  metrics, optionally write a Graphviz DOT rendering of the clustering;
* ``verify``    — run the evaluation and check every qualitative claim
  of the paper (the reproduction ledger); non-zero exit on any failure;
* ``serve-bench`` — replay a synthetic multi-user arrival trace through
  the plan service (content-addressed cache + batching worker pool) and
  print the service metrics report;
* ``fleet-bench`` — replay an arrival trace over a multi-server edge
  fleet once per routing policy, reporting load balance, aggregate
  plan-cache hit rate and ``E + T`` vs. a single server of equal total
  capacity;
* ``lint``      — run the repo's static-analysis battery (determinism,
  lock discipline, process-pool safety, exception hygiene); also
  installed as the ``repro-lint`` console script.

Every command takes ``--seed`` and prints plain-text tables, so runs are
reproducible and diffable.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.baselines import make_planner
from repro.experiments.figures import (
    run_multiuser_energy_experiment,
    run_single_user_energy_experiment,
)
from repro.experiments.reporting import render_table
from repro.experiments.table1 import run_table1
from repro.experiments.timing import run_timing_experiment
from repro.graphs.io import load_graph_json, save_graph_json
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, UserContext
from repro.simulation import ServerDegradation, simulate_scheme
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph, paper_network_configs
from repro.workloads.profiles import paper_profile, quick_profile


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Computation Offloading for MEC with Multi-user' (ICDCS 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    t1 = sub.add_parser("table1", help="regenerate Table I (compression results)")
    t1.add_argument("--sizes", type=int, nargs="*", default=None,
                    help="graph sizes (default: the paper's five networks)")
    t1.add_argument("--seed", type=int, default=0)

    fig = sub.add_parser("figures", help="regenerate the evaluation figures")
    fig.add_argument("family", choices=["single-user", "multi-user", "timing"])
    fig.add_argument("--profile", choices=["quick", "paper"], default="quick")
    fig.add_argument("--repetitions", type=int, default=None)

    gen = sub.add_parser("generate", help="emit a NETGEN-style workload graph as JSON")
    gen.add_argument("--nodes", type=int, required=True)
    gen.add_argument("--edges", type=int, required=True)
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--out", type=Path, required=True)

    plan = sub.add_parser("plan", help="plan offloading for a workload graph")
    plan.add_argument("--graph", type=Path, required=True, help="graph JSON (see 'generate')")
    plan.add_argument("--strategy", choices=["spectral", "maxflow", "kl"], default="spectral")
    plan.add_argument("--seed", type=int, default=0)
    plan.add_argument("--server-capacity", type=float, default=300.0)

    sim = sub.add_parser("simulate", help="plan and execute on the event simulator")
    sim.add_argument("--graph", type=Path, required=True)
    sim.add_argument("--strategy", choices=["spectral", "maxflow", "kl"], default="spectral")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--server-capacity", type=float, default=300.0)
    sim.add_argument(
        "--server-fault",
        type=str,
        default=None,
        metavar="TIME:FACTOR",
        help="inject a server degradation, e.g. 2.0:0.5",
    )
    sim.add_argument("--json", action="store_true", help="emit the raw report as JSON")

    rep = sub.add_parser("report", help="run the evaluation and write a markdown report")
    rep.add_argument("--profile", choices=["quick", "paper"], default="quick")
    rep.add_argument("--out", type=Path, default=None, help="write to file (default stdout)")
    rep.add_argument("--no-timing", action="store_true", help="skip the Fig. 9 timing sweep")

    sens = sub.add_parser("sensitivity", help="sweep one parameter and show the crossover")
    sens.add_argument(
        "parameter",
        choices=["power_transmit", "bandwidth", "compute_capacity", "server_capacity"],
    )
    sens.add_argument("--graph-size", type=int, default=None)
    sens.add_argument("--algorithm", choices=["spectral", "maxflow", "kl"], default="spectral")

    comp = sub.add_parser("compress", help="compress a workload graph (Algorithm 1)")
    comp.add_argument("--graph", type=Path, required=True)
    comp.add_argument("--dot", type=Path, default=None, help="write the clustering as DOT")

    ver = sub.add_parser("verify", help="check every qualitative claim of the paper")
    ver.add_argument("--profile", choices=["quick", "paper"], default="quick")

    serve = sub.add_parser(
        "serve-bench", help="replay an arrival trace through the plan service"
    )
    serve.add_argument("--requests", type=int, default=200, help="arrivals to replay")
    serve.add_argument("--pool", type=int, default=8, help="distinct apps in the pool")
    serve.add_argument("--graph-size", type=int, default=120, help="functions per app")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--batch", type=int, default=16, help="flights per worker wakeup")
    serve.add_argument("--queue-depth", type=int, default=256)
    serve.add_argument("--cache-capacity", type=int, default=64)
    serve.add_argument("--rate", type=float, default=200.0, help="Poisson arrival rate")
    serve.add_argument(
        "--strategy", choices=["spectral", "maxflow", "kl"], default="spectral"
    )
    serve.add_argument(
        "--executor", choices=["thread", "process", "both"], default="thread",
        help="where planning runs; 'both' replays the trace once per mode "
             "and reports the throughput comparison in one run",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--spill", type=Path, default=None, help="plan-cache JSON spill file"
    )
    serve.add_argument(
        "--compression-kernel",
        choices=["dict", "csr", "numpy", "auto"],
        default="auto",
        help="label-propagation kernel (all bit-identical)",
    )
    serve.add_argument(
        "--greedy-kernel",
        choices=["python", "numpy", "auto"],
        default="auto",
        help="Algorithm 2 candidate-scan kernel (all bit-identical)",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="tiny fast path (24 requests, 4 apps of 40 functions) for CI",
    )

    http = sub.add_parser(
        "serve-http", help="expose the plan service over an HTTP frontend"
    )
    http.add_argument("--host", default="127.0.0.1")
    http.add_argument("--port", type=int, default=8753)
    http.add_argument("--workers", type=int, default=2)
    http.add_argument("--executor", choices=["thread", "process"], default="thread")
    http.add_argument(
        "--strategy", choices=["spectral", "maxflow", "kl"], default="spectral"
    )
    http.add_argument("--cache-capacity", type=int, default=256)
    http.add_argument(
        "--spill", type=Path, default=None, help="plan-cache JSON spill file"
    )

    fleet = sub.add_parser(
        "fleet-bench", help="compare fleet routing policies on an arrival trace"
    )
    fleet.add_argument("--requests", type=int, default=48, help="arrivals to replay")
    fleet.add_argument("--pool", type=int, default=4, help="distinct apps in the pool")
    fleet.add_argument("--graph-size", type=int, default=60, help="functions per app")
    fleet.add_argument("--servers", type=int, default=4, help="fleet size")
    fleet.add_argument(
        "--capacities", nargs="*", type=float, default=None, metavar="CAP",
        help="heterogeneous per-server capacities (e.g. 250 500 1000); "
             "overrides --servers and the even capacity split",
    )
    fleet.add_argument(
        "--policies", nargs="*", default=None,
        help="routing policies to compare (default: all registered)",
    )
    fleet.add_argument(
        "--balance-on", choices=["users", "utilisation"], default="users",
        help="load metric for least-loaded/power-of-two "
             "(utilisation = offloaded work / capacity; use on heterogeneous pools)",
    )
    fleet.add_argument(
        "--latency", choices=["none", "geo"], default="none",
        help="per-(user, server) RTT model fed to routing and accounting",
    )
    fleet.add_argument(
        "--latency-weight", type=float, default=0.0,
        help="how strongly load-aware policies weigh RTT against load",
    )
    fleet.add_argument(
        "--rtt-scale", type=float, default=0.1,
        help="geo model: RTT seconds per unit of distance on the unit square",
    )
    fleet.add_argument(
        "--mobility", choices=["corridor", "waypoint"], default=None,
        help="compare handover policies instead of routing policies: move "
             "users per tick under this mobility model and sweep "
             "speed x handover on E+T and migration debt",
    )
    fleet.add_argument(
        "--speed", nargs="*", type=float, default=None, metavar="SPEED",
        help="mobility sweep: user speeds in unit-square units per second "
             "(default: 0.02 0.08)",
    )
    fleet.add_argument(
        "--handover", nargs="*", default=None, metavar="POLICY",
        help="handover policies to compare (never / nearest / predictive; "
             "'nearest:0.5' overrides the hysteresis for that arm; "
             "default: all registered)",
    )
    fleet.add_argument(
        "--hysteresis", type=float, default=0.1,
        help="nearest handover: RTT-gap margin a move must beat",
    )
    fleet.add_argument(
        "--ticks", type=int, default=24,
        help="mobility sweep: fleet ticks per (speed, handover) cell",
    )
    fleet.add_argument(
        "--rebalance", choices=["off", "free", "cost-aware", "proactive"],
        default="off",
        help="post-replay rebalancing pass: 'free' flattens unconditionally, "
             "'cost-aware' only moves when the modelled gain beats the "
             "migration cost, 'proactive' drains servers whose forecasted "
             "utilisation breaches the threshold (all charge every move)",
    )
    fleet.add_argument(
        "--proactive", action="store_true",
        help="shorthand for --rebalance proactive",
    )
    fleet.add_argument(
        "--sla", type=float, default=None, metavar="DEADLINE",
        help="attach a per-user SLA deadline (scalarised E+T budget) to "
             "every arrival; admission filters servers that would breach it",
    )
    fleet.add_argument(
        "--sla-action", choices=["degrade", "reject"], default="degrade",
        help="what to do with a user no server can serve within the "
             "deadline: degrade to all-local (default) or reject outright",
    )
    fleet.add_argument(
        "--forecaster", choices=["naive", "ewma", "ar", "auto"], default="ewma",
        help="per-series forecaster feeding the fleet telemetry "
             "('auto' picks the lowest-MAE model per series)",
    )
    fleet.add_argument(
        "--horizon", type=int, default=3,
        help="proactive rebalancing: forecast horizon in fleet ticks",
    )
    fleet.add_argument(
        "--utilisation-threshold", type=float, default=0.8,
        help="proactive rebalancing: forecasted utilisation above this "
             "marks a server as a predicted hotspot",
    )
    fleet.add_argument(
        "--handoff-latency", type=float, default=0.05,
        help="migration cost model: control-plane delay charged per move",
    )
    fleet.add_argument(
        "--max-users-per-server", type=int, default=None,
        help="admission cap per server (beyond it users degrade to all-local)",
    )
    fleet.add_argument(
        "--strategy", choices=["spectral", "maxflow", "kl"], default="spectral"
    )
    fleet.add_argument(
        "--executor", choices=["thread", "process", "both"], default="thread",
        help="where planning runs; 'both' runs the comparison once per mode "
             "and reports both wall times in one run",
    )
    fleet.add_argument("--rate", type=float, default=200.0, help="Poisson arrival rate")
    fleet.add_argument("--seed", type=int, default=0)
    fleet.add_argument(
        "--smoke", action="store_true",
        help="tiny fast path (16 requests, 4 apps of 30 functions, 4 servers) for CI",
    )

    cont = sub.add_parser(
        "contention-bench",
        help="compare contention-blind, contention-aware and best-response "
             "planning on a shared wireless channel",
    )
    cont.add_argument(
        "--users", nargs="*", type=int, default=None, metavar="N",
        help="co-offloading user counts to sweep (default: 1 2 4 6 8)",
    )
    cont.add_argument(
        "--channel-capacity", type=float, default=None,
        help="total shared-channel capacity in data units/s "
             "(default: the profile's per-device bandwidth)",
    )
    cont.add_argument(
        "--quality-spread", type=float, default=0.0,
        help="per-user channel-gain spread in [0, 1): gains drawn from "
             "[1-s, 1+s] deterministically per seed (0 = identical links)",
    )
    cont.add_argument(
        "--algorithm", choices=["spectral", "maxflow", "kl"], default="spectral"
    )
    cont.add_argument("--profile", choices=["quick", "paper"], default="quick")
    cont.add_argument("--seed", type=int, default=0)
    cont.add_argument("--json", action="store_true", help="emit rows as JSON")

    lint = sub.add_parser(
        "lint", help="run the static-analysis battery (also: repro-lint)"
    )
    from repro.analysis.cli import add_arguments as add_lint_arguments

    add_lint_arguments(lint)
    return parser


def _profile(name: str):
    return paper_profile() if name == "paper" else quick_profile()


def _single_user_mec(graph_path: Path, seed: int, server_capacity: float):
    graph = load_graph_json(graph_path)
    app = call_graph_from_weighted_graph(graph, unoffloadable_fraction=0.05, seed=seed)
    device = MobileDevice("user", profile=quick_profile().device)
    system = MECSystem(EdgeServer(server_capacity), [UserContext(device, app)])
    return system, app


def cmd_table1(args: argparse.Namespace) -> int:
    if args.sizes:
        profile = quick_profile()
        configs = [
            NetgenConfig(n_nodes=s, n_edges=profile.edges_for(s), seed=args.seed + i)
            for i, s in enumerate(args.sizes)
        ]
    else:
        configs = paper_network_configs(args.seed)
    rows = run_table1(configs)
    print(
        render_table(
            ["Network", "fn", "edges", "fn after", "edges after", "reduction"],
            [
                [
                    r.network,
                    r.function_number,
                    r.edge_number,
                    r.function_number_after,
                    r.edge_number_after,
                    f"{100 * r.node_reduction:.1f}%",
                ]
                for r in rows
            ],
        )
    )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    profile = _profile(args.profile)
    if args.family == "timing":
        rows = run_timing_experiment(profile, repeats=args.repetitions or 3)
        print(
            render_table(
                ["algorithm", "graph size", "seconds"],
                [[r.algorithm, r.graph_size, r.seconds] for r in rows],
            )
        )
        return 0
    if args.family == "single-user":
        rows = run_single_user_energy_experiment(
            profile, repetitions=args.repetitions or 5
        )
        scale = "graph size"
    else:
        rows = run_multiuser_energy_experiment(
            profile, repetitions=args.repetitions or 2
        )
        scale = "users"
    print(
        render_table(
            ["algorithm", scale, "local E", "tx E", "total E", "total T"],
            [
                [r.algorithm, r.scale, r.local_energy, r.transmission_energy,
                 r.total_energy, r.total_time]
                for r in rows
            ],
        )
    )
    return 0


def cmd_generate(args: argparse.Namespace) -> int:
    config = NetgenConfig(n_nodes=args.nodes, n_edges=args.edges, seed=args.seed)
    graph = netgen_graph(config)
    save_graph_json(graph, args.out)
    print(f"wrote {graph.node_count} nodes / {graph.edge_count} edges to {args.out}")
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    system, app = _single_user_mec(args.graph, args.seed, args.server_capacity)
    planner = make_planner(args.strategy)
    result = planner.plan_system(system, {"user": app})
    print(result.summary())
    plan = result.user_plans["user"]
    print(
        f"compression: {plan.original_nodes} -> {plan.compressed_nodes} nodes; "
        f"cut total {plan.total_cut_value:.1f}"
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    system, app = _single_user_mec(args.graph, args.seed, args.server_capacity)
    planner = make_planner(args.strategy)
    result = planner.plan_system(system, {"user": app})
    apps = {"user": PartitionedApplication("user", app, result.user_plans["user"].parts)}

    faults = []
    if args.server_fault:
        try:
            time_text, factor_text = args.server_fault.split(":")
            faults.append(
                ServerDegradation(time=float(time_text), factor=float(factor_text))
            )
        except ValueError as exc:
            print(f"error: bad --server-fault {args.server_fault!r}: {exc}", file=sys.stderr)
            return 2

    report = simulate_scheme(system, apps, result.greedy.remote_parts, faults=faults)
    if args.json:
        import json as _json

        print(_json.dumps(report.to_dict(), indent=2))
        return 0
    timeline = report.timeline("user")
    print(result.summary())
    print(
        render_table(
            ["metric", "value"],
            [
                ["local finish (s)", timeline.local_finish],
                ["upload finish (s)", timeline.upload_finish],
                ["service finish (s)", timeline.service_finish],
                ["completion (s)", timeline.completion],
                ["energy (J)", timeline.energy],
                ["makespan (s)", report.makespan],
                ["server utilization", report.server_utilization],
                ["events processed", report.events_processed],
            ],
        )
    )
    return 0


def cmd_compress(args: argparse.Namespace) -> int:
    from repro.compression import GraphCompressor, compression_quality

    graph = load_graph_json(args.graph)
    result = GraphCompressor().compress(graph)
    compressed = result.compressed
    quality = compression_quality(graph, compressed)
    print(
        render_table(
            ["metric", "value"],
            [
                ["nodes", f"{graph.node_count} -> {compressed.graph.node_count}"],
                ["edges", f"{graph.edge_count} -> {compressed.graph.edge_count}"],
                ["node reduction", f"{100 * quality['node_reduction']:.1f}%"],
                ["internalized traffic", f"{100 * quality['internalized_traffic']:.1f}%"],
                ["modularity", quality["modularity"]],
                ["propagation rounds", result.rounds_total],
            ],
        )
    )
    if args.dot is not None:
        from repro.graphs.dot import clustering_to_dot

        args.dot.write_text(clustering_to_dot(graph, compressed.clusters))
        print(f"wrote clustering DOT to {args.dot}")
    return 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.experiments.claims import verify_claims

    ledger = verify_claims(_profile(args.profile))
    print(
        render_table(
            ["claim", "statement", "verdict", "evidence"],
            [
                [
                    c.claim_id,
                    c.statement,
                    "PASS" if c.passed else "FAIL",
                    c.detail,
                ]
                for c in ledger
            ],
        )
    )
    failures = [c for c in ledger if not c.passed]
    print(f"\n{len(ledger) - len(failures)}/{len(ledger)} claims reproduced")
    return 1 if failures else 0


def cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_markdown_report

    document = generate_markdown_report(
        _profile(args.profile), include_timing=not args.no_timing
    )
    if args.out is not None:
        args.out.write_text(document)
        print(f"wrote report to {args.out}")
    else:
        print(document)
    return 0


def cmd_sensitivity(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import find_crossover, run_sensitivity_experiment

    rows = run_sensitivity_experiment(
        args.parameter, graph_size=args.graph_size, algorithm=args.algorithm
    )
    print(
        render_table(
            ["parameter", "x default", "value", "offloaded %", "local E", "tx E", "total E"],
            [
                [
                    r.parameter,
                    r.multiplier,
                    r.value,
                    f"{100 * r.offloaded_fraction:.1f}%",
                    r.local_energy,
                    r.transmission_energy,
                    r.total_energy,
                ]
                for r in rows
            ],
        )
    )
    crossover = find_crossover(rows)
    if crossover is not None:
        print(f"\noffloading collapses at {crossover}x the default {args.parameter}")
    else:
        print("\noffloading survives the whole sweep")
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.compression.compressor import CompressionConfig
    from repro.core.config import PlannerConfig
    from repro.service import PlanService, ServiceConfig, plan_digest
    from repro.utils.timer import Stopwatch
    from repro.workloads.multiuser import build_mec_system
    from repro.workloads.traces import replay_arrivals

    if args.smoke:
        args.requests, args.pool, args.graph_size, args.workers = 24, 4, 40, 2

    planner_config = PlannerConfig(
        compression=CompressionConfig(kernel=args.compression_kernel),
        greedy_kernel=args.greedy_kernel,
    )

    profile = dataclasses.replace(
        quick_profile(),
        distinct_graphs=args.pool,
        multiuser_graph_size=args.graph_size,
        seed=2019 + args.seed,
    )
    workload = build_mec_system(args.requests, profile)
    # Fresh graph objects per request: identity caching cannot help, only
    # the service's content fingerprints can.
    arrivals = replay_arrivals(workload, rate=args.rate, seed=args.seed)

    executors = ["thread", "process"] if args.executor == "both" else [args.executor]
    throughputs: dict[str, float] = {}
    digests_by_executor: dict[str, dict[str, str]] = {}

    for executor in executors:
        planner = make_planner(args.strategy, config=planner_config)
        config = ServiceConfig(
            workers=args.workers,
            executor=executor,
            max_queue_depth=args.queue_depth,
            max_batch=args.batch,
            cache_capacity=args.cache_capacity,
            spill_path=str(args.spill) if args.spill is not None else None,
        )
        watch = Stopwatch()
        with PlanService(planner, config) as service:
            with watch:
                tickets = [service.submit(graph) for _, graph in arrivals]
                responses = [ticket.result() for ticket in tickets]
            invocations = service.planner_invocations
            report = service.metrics_report()
            cached_digests = {}
            for app in workload.distinct_graphs:
                response = service.plan(app)
                if response.ok:
                    cached_digests[app.app_name] = plan_digest(response.plan)
        digests_by_executor[executor] = cached_digests

        ok = sum(1 for r in responses if r.ok)
        shed = sum(1 for r in responses if r.error is not None and r.error.code == "shed")
        errored = len(responses) - ok - shed
        hit_rate = 0.0 if ok == 0 else max(0.0, 1.0 - invocations / ok)

        # Parity check: a cold plan of each pool app (planned fresh by a
        # separate planner) must serialise byte-identically to what the
        # service answered from its cache.
        parity_planner = make_planner(args.strategy, config=planner_config)
        identical = sum(
            1
            for app in workload.distinct_graphs
            if cached_digests.get(app.app_name) == plan_digest(parity_planner.plan_user(app))
        )

        throughput = len(responses) / watch.elapsed if watch.elapsed > 0 else 0.0
        throughputs[executor] = throughput
        print(
            f"serve-bench[{executor}]: {len(responses)} requests over "
            f"{args.pool} distinct apps ({args.graph_size} functions), "
            f"{args.workers} workers"
        )
        print(report)
        print(
            f"requests ok/shed/errored: {ok}/{shed}/{errored}; "
            f"throughput {throughput:.1f} req/s"
        )
        latency = service.metrics.histogram("request_latency_seconds")
        print(
            f"request latency p50/p95: "
            f"{1000 * latency.percentile(0.50):.2f}ms/{1000 * latency.percentile(0.95):.2f}ms"
        )
        print(f"service hit rate: {hit_rate:.3f} (planner invocations: {invocations})")
        print(f"plan parity: cached == cold for {identical}/{len(workload.distinct_graphs)} apps")
        if args.spill is not None:
            print(f"spilled plan cache to {args.spill}")

    if len(executors) > 1:
        thread_tp, process_tp = throughputs["thread"], throughputs["process"]
        speedup = process_tp / thread_tp if thread_tp > 0 else 0.0
        match = digests_by_executor["thread"] == digests_by_executor["process"]
        print(
            f"executor comparison: thread {thread_tp:.1f} req/s, "
            f"process {process_tp:.1f} req/s ({speedup:.2f}x); "
            f"plans {'identical' if match else 'DIFFER'} across executors"
        )
        if not match:
            return 1
    return 0


def cmd_serve_http(args: argparse.Namespace) -> int:
    from repro.service import HttpFrontendThread, PlanService, ServiceConfig

    planner = make_planner(args.strategy)
    config = ServiceConfig(
        workers=args.workers,
        executor=args.executor,
        cache_capacity=args.cache_capacity,
        spill_path=str(args.spill) if args.spill is not None else None,
    )
    with PlanService(planner, config) as service:
        frontend = HttpFrontendThread(service, host=args.host, port=args.port)
        port = frontend.start()
        print(f"plan service listening on http://{args.host}:{port}")
        print("POST /plan | POST /submit | GET /result/<id> | GET /metrics | GET /healthz")
        try:
            frontend.join()  # serve until interrupted
        except KeyboardInterrupt:
            print("shutting down")
        finally:
            frontend.close()
    return 0


def _fleet_mobility_bench(args: argparse.Namespace, profile) -> int:
    """``fleet-bench --mobility``: speed x handover sweep over a moving fleet."""
    from repro.experiments.fleet import run_fleet_mobility_experiment
    from repro.fleet.migration import MigrationCostModel
    from repro.mobility import HANDOVER_POLICIES

    handovers = args.handover or list(HANDOVER_POLICIES)
    unknown = sorted(
        {spec.partition(":")[0] for spec in handovers} - set(HANDOVER_POLICIES)
    )
    if unknown:
        print(
            f"error: unknown handover policies {unknown}; "
            f"expected from {list(HANDOVER_POLICIES)}",
            file=sys.stderr,
        )
        return 2
    speeds = tuple(args.speed) if args.speed else (0.02, 0.08)
    comparison = run_fleet_mobility_experiment(
        n_users=args.requests,
        n_servers=args.servers,
        profile=profile,
        mobility=args.mobility,
        speeds=speeds,
        handovers=handovers,
        ticks=args.ticks,
        hysteresis=args.hysteresis,
        horizon=args.horizon,
        rtt_scale=args.rtt_scale,
        strategy=args.strategy,
        rate=args.rate,
        seed=args.seed,
        migration=MigrationCostModel(handoff_latency=args.handoff_latency),
        forecaster=args.forecaster,
    )
    print(
        f"fleet-bench --mobility {args.mobility}: {args.requests} users, "
        f"{args.servers} stations, {args.ticks} ticks per cell"
    )
    print(
        render_table(
            ["handover", "speed", "users", "moves", "mean rtt",
             "migration", "E", "T", "E+T", "mean E+T"],
            [
                [
                    row.handover,
                    f"{row.speed:g}",
                    row.users,
                    row.handovers,
                    f"{row.mean_rtt:.3f}",
                    f"{row.migration_cost:.2f}",
                    f"{row.energy:.2f}",
                    f"{row.time:.2f}",
                    f"{row.combined:.2f}",
                    f"{row.mean_combined:.2f}",
                ]
                for row in comparison.rows
            ],
        )
    )
    for speed in comparison.speeds:
        best = min(
            (row for row in comparison.rows if row.speed == speed),
            key=lambda row: row.mean_combined,
        )
        print(
            f"speed {speed:g}: best handover policy {best.handover!r} "
            f"(mean E+T {best.mean_combined:.2f}, {best.handovers} moves)"
        )
    return 0


def cmd_fleet_bench(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.experiments.fleet import run_fleet_routing_experiment
    from repro.fleet.latency import make_latency_map
    from repro.fleet.migration import MigrationCostModel
    from repro.fleet.routing import ROUTING_POLICIES

    if args.smoke:
        args.requests, args.pool, args.graph_size, args.servers = 16, 4, 30, 4
    if args.proactive:
        args.rebalance = "proactive"

    policies = args.policies or list(ROUTING_POLICIES)
    unknown = sorted(set(policies) - set(ROUTING_POLICIES))
    if unknown:
        print(
            f"error: unknown routing policies {unknown}; "
            f"expected from {list(ROUTING_POLICIES)}",
            file=sys.stderr,
        )
        return 2

    profile = dataclasses.replace(
        quick_profile(),
        distinct_graphs=args.pool,
        multiuser_graph_size=args.graph_size,
        seed=2019 + args.seed,
    )
    if args.mobility:
        return _fleet_mobility_bench(args, profile)
    from repro.utils.timer import Stopwatch

    executors = ["thread", "process"] if args.executor == "both" else [args.executor]
    elapsed: dict[str, float] = {}
    comparison = None
    combined_by_executor: dict[str, list[float]] = {}
    for executor in executors:
        watch = Stopwatch()
        with watch:
            comparison = run_fleet_routing_experiment(
                n_users=args.requests,
                n_servers=args.servers,
                profile=profile,
                policies=policies,
                strategy=args.strategy,
                rate=args.rate,
                seed=args.seed,
                max_users_per_server=args.max_users_per_server,
                executor=executor,
                capacities=args.capacities,
                balance_on=args.balance_on,
                latency=(
                    make_latency_map(
                        args.latency,
                        seconds_per_unit=args.rtt_scale,
                        seed=args.seed,
                    )
                    if args.latency != "none"
                    else None
                ),
                latency_weight=args.latency_weight,
                migration=MigrationCostModel(handoff_latency=args.handoff_latency),
                rebalance=args.rebalance,
                sla_deadline=args.sla,
                sla_action=args.sla_action,
                forecaster=args.forecaster,
                horizon=args.horizon,
                utilisation_threshold=args.utilisation_threshold,
            )
        elapsed[executor] = watch.elapsed
        combined_by_executor[executor] = [row.combined for row in comparison.rows]
    single = comparison.single
    n_servers = len(args.capacities) if args.capacities else args.servers
    pool_desc = (
        f"{n_servers} servers (capacities "
        + "/".join(f"{c:g}" for c in args.capacities) + ")"
        if args.capacities
        else f"{args.servers} servers"
    )
    print(
        f"fleet-bench: {args.requests} requests over {args.pool} distinct apps "
        f"({args.graph_size} functions), {pool_desc}"
    )
    print(
        render_table(
            ["policy", "servers", "users", "degraded", "max/mean", "util",
             "hit rate", "moves", "sla viol", "E", "T", "E+T", "vs single"],
            [
                [
                    row.policy,
                    row.servers,
                    row.users,
                    row.degraded,
                    f"{row.imbalance:.2f}",
                    f"{row.utilisation_imbalance:.2f}",
                    f"{row.hit_rate:.3f}",
                    row.moves,
                    f"{row.sla_violation_rate:.3f}",
                    f"{row.energy:.2f}",
                    f"{row.time:.2f}",
                    f"{row.combined:.2f}",
                    f"{row.vs_single:.3f}",
                ]
                for row in [*comparison.rows, single]
            ],
        )
    )
    print(
        f"single server (equal total capacity): E+T {single.combined:.2f}, "
        f"hit rate {single.hit_rate:.3f}"
    )
    if args.rebalance != "off":
        total_moves = sum(row.moves for row in comparison.rows)
        total_charged = sum(row.migration_cost for row in comparison.rows)
        print(
            f"rebalance ({args.rebalance}): {total_moves} moves across policies, "
            f"E+T {total_charged:.2f} charged as migration cost"
        )
    if args.sla is not None:
        total_violations = sum(row.sla_violations for row in comparison.rows)
        total_rejections = sum(row.sla_rejections for row in comparison.rows)
        print(
            f"sla (deadline {args.sla:g}, {args.sla_action}): "
            f"{total_violations} violations and {total_rejections} rejections "
            f"across policies"
        )
    if len(executors) > 1:
        thread_s, process_s = elapsed["thread"], elapsed["process"]
        speedup = thread_s / process_s if process_s > 0 else float("inf")
        match = combined_by_executor["thread"] == combined_by_executor["process"]
        print(
            f"executor comparison: thread {thread_s:.2f}s, process {process_s:.2f}s "
            f"({speedup:.2f}x); policy results "
            f"{'identical' if match else 'DIFFER'} across executors"
        )
        if not match:
            print("error: executor backends disagree on policy results", file=sys.stderr)
            return 1
    return 0


def cmd_contention_bench(args: argparse.Namespace) -> int:
    from repro.experiments.contention import run_contention_experiment

    user_counts = tuple(args.users) if args.users else (1, 2, 4, 6, 8)
    rows, curve = run_contention_experiment(
        profile=_profile(args.profile),
        user_counts=user_counts,
        algorithm=args.algorithm,
        channel_capacity=args.channel_capacity,
        quality_spread=args.quality_spread,
        seed=args.seed,
    )
    if args.json:
        import json as _json

        import dataclasses

        print(
            _json.dumps(
                {
                    "rows": [dataclasses.asdict(r) for r in rows],
                    "curve": [dataclasses.asdict(p) for p in curve],
                },
                indent=2,
            )
        )
        return 0
    print(
        render_table(
            ["users", "b_i(n)", "per-user e_t", "per-user t_t"],
            [
                [p.n_users, p.effective_rate, p.transmission_energy, p.transmission_time]
                for p in curve
            ],
        )
    )
    print()
    print(
        render_table(
            ["arm", "users", "planned E+T", "channel E+T", "sim E", "sim T", "offloaders"],
            [
                [
                    r.arm,
                    r.n_users,
                    r.planned_combined,
                    r.evaluated_combined,
                    r.simulated_energy,
                    r.simulated_completion,
                    r.offloaders,
                ]
                for r in rows
            ],
        )
    )
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.cli import run as run_lint

    return run_lint(args)


_COMMANDS = {
    "table1": cmd_table1,
    "figures": cmd_figures,
    "generate": cmd_generate,
    "plan": cmd_plan,
    "simulate": cmd_simulate,
    "report": cmd_report,
    "sensitivity": cmd_sensitivity,
    "compress": cmd_compress,
    "verify": cmd_verify,
    "serve-bench": cmd_serve_bench,
    "serve-http": cmd_serve_http,
    "fleet-bench": cmd_fleet_bench,
    "contention-bench": cmd_contention_bench,
    "lint": cmd_lint,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
