"""Scenario bundles: name + conditions + one reusable run() call.

A study usually replays the *same* planned scheme under several
conditions (healthy, degraded server, bad radio, staggered arrivals,
shared channel).  :class:`Scenario` captures one set of conditions;
:func:`compare_scenarios` runs a batch against a common placement and
returns aligned results, ready for a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem
from repro.simulation.engine import SimulationEngine
from repro.simulation.faults import Fault
from repro.simulation.report import SimulationReport


@dataclass(frozen=True)
class Scenario:
    """One named set of execution conditions."""

    name: str
    faults: tuple[Fault, ...] = ()
    arrivals: Mapping[str, float] | None = None
    shared_uplink_capacity: float | None = None

    def run(
        self,
        system: MECSystem,
        apps: Mapping[str, PartitionedApplication],
        remote_parts: Mapping[str, set[int]],
    ) -> SimulationReport:
        """Execute the placement under this scenario's conditions."""
        return SimulationEngine(
            system,
            apps,
            remote_parts,
            faults=self.faults,
            shared_uplink_capacity=self.shared_uplink_capacity,
            arrivals=self.arrivals,
        ).run()


@dataclass
class ScenarioComparison:
    """Aligned results of one placement under several scenarios."""

    baseline: str
    reports: dict[str, SimulationReport] = field(default_factory=dict)

    def report(self, name: str) -> SimulationReport:
        """The report of one scenario."""
        if name not in self.reports:
            raise KeyError(f"unknown scenario {name!r}")
        return self.reports[name]

    def makespan_inflation(self, name: str) -> float:
        """Scenario makespan / baseline makespan (1.0 = unaffected)."""
        base = self.reports[self.baseline].makespan
        if base <= 0:
            return 1.0
        return self.report(name).makespan / base

    def energy_inflation(self, name: str) -> float:
        """Scenario energy / baseline energy."""
        base = self.reports[self.baseline].total_energy
        if base <= 0:
            return 1.0
        return self.report(name).total_energy / base

    def rows(self) -> list[list[object]]:
        """Table rows: scenario, makespan, x baseline, energy, x baseline."""
        out: list[list[object]] = []
        for name, report in self.reports.items():
            out.append(
                [
                    name,
                    report.makespan,
                    self.makespan_inflation(name),
                    report.total_energy,
                    self.energy_inflation(name),
                ]
            )
        return out


def compare_scenarios(
    system: MECSystem,
    apps: Mapping[str, PartitionedApplication],
    remote_parts: Mapping[str, set[int]],
    scenarios: Sequence[Scenario],
) -> ScenarioComparison:
    """Run every scenario against the same placement.

    The first scenario is the baseline the inflations are relative to.
    Scenario names must be unique.
    """
    if not scenarios:
        raise ValueError("need at least one scenario")
    names = [s.name for s in scenarios]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate scenario names: {names}")
    comparison = ScenarioComparison(baseline=scenarios[0].name)
    for scenario in scenarios:
        comparison.reports[scenario.name] = scenario.run(system, apps, remote_parts)
    return comparison
