"""Simulation outputs: per-user timelines and system aggregates."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class UserTimeline:
    """What one user experienced during the simulated execution."""

    user_id: str
    local_work: float = 0.0
    remote_work: float = 0.0
    cut_data: float = 0.0

    arrival: float = 0.0
    """When this user's workload entered the system."""

    local_finish: float = 0.0
    """When the device finished its local share (0 if none)."""

    upload_start: float = 0.0
    """When the cut data started transmitting (= arrival)."""

    upload_finish: float = 0.0
    """When the cut data finished transmitting (0 if nothing remote)."""

    service_start: float = 0.0
    """When the edge server started this user's remote work."""

    service_finish: float = 0.0
    """When the edge server completed this user's remote work."""

    local_energy: float = 0.0
    transmission_energy: float = 0.0

    @property
    def completion(self) -> float:
        """This user's end-to-end completion time (absolute clock)."""
        return max(self.local_finish, self.service_finish)

    @property
    def sojourn(self) -> float:
        """Completion relative to this user's arrival."""
        return max(0.0, self.completion - self.arrival)

    @property
    def airtime(self) -> float:
        """Wall-clock duration the radio was transmitting."""
        return max(0.0, self.upload_finish - self.upload_start)

    @property
    def waiting(self) -> float:
        """Time the remote work sat queued after its data arrived."""
        return max(0.0, self.service_start - self.upload_finish)

    @property
    def energy(self) -> float:
        """Total device-side energy (compute + transmit)."""
        return self.local_energy + self.transmission_energy


@dataclass
class SimulationReport:
    """System-level outcome of one simulated run."""

    per_user: dict[str, UserTimeline] = field(default_factory=dict)
    events_processed: int = 0
    server_busy: float = 0.0
    makespan: float = 0.0

    @property
    def total_energy(self) -> float:
        """``E`` measured by execution rather than by formula."""
        return sum(t.energy for t in self.per_user.values())

    @property
    def total_local_energy(self) -> float:
        """Σ device compute energy."""
        return sum(t.local_energy for t in self.per_user.values())

    @property
    def total_transmission_energy(self) -> float:
        """Σ uplink transmission energy."""
        return sum(t.transmission_energy for t in self.per_user.values())

    @property
    def total_completion_time(self) -> float:
        """Σ per-user completion times (the simulated analogue of ``T``)."""
        return sum(t.completion for t in self.per_user.values())

    @property
    def server_utilization(self) -> float:
        """Fraction of the makespan the server spent serving."""
        if self.makespan <= 0:
            return 0.0
        return self.server_busy / self.makespan

    def timeline(self, user_id: str) -> UserTimeline:
        """The timeline of one user."""
        if user_id not in self.per_user:
            raise KeyError(f"unknown user {user_id!r}")
        return self.per_user[user_id]

    def to_dict(self) -> dict:
        """JSON-serialisable form (the CLI's ``simulate --json`` output)."""
        from dataclasses import asdict

        return {
            "makespan": self.makespan,
            "events_processed": self.events_processed,
            "server_busy": self.server_busy,
            "server_utilization": self.server_utilization,
            "total_energy": self.total_energy,
            "per_user": {
                user_id: {
                    **asdict(timeline),
                    "completion": timeline.completion,
                    "waiting": timeline.waiting,
                    "sojourn": timeline.sojourn,
                    "airtime": timeline.airtime,
                }
                for user_id, timeline in self.per_user.items()
            },
        }
