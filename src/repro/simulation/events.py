"""The event calendar: a stable priority queue over simulated time.

Events at equal timestamps pop in insertion order (a monotone sequence
number breaks ties), which keeps every simulation fully deterministic —
the property all replay-style tests rely on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any


class EventQueue:
    """Min-heap of ``(time, seq, payload)`` entries.

    >>> q = EventQueue()
    >>> q.push(2.0, "later")
    >>> q.push(1.0, "sooner")
    >>> q.pop()
    (1.0, 'sooner')
    >>> q.pop()
    (2.0, 'later')
    """

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Any]] = []
        self._counter = itertools.count()

    def push(self, time: float, payload: Any) -> None:
        """Schedule *payload* at the given simulated *time*."""
        if time < 0:
            raise ValueError(f"event time must be >= 0, got {time!r}")
        heapq.heappush(self._heap, (time, next(self._counter), payload))

    def pop(self) -> tuple[float, Any]:
        """Remove and return the earliest ``(time, payload)``."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        time, _, payload = heapq.heappop(self._heap)
        return time, payload

    def peek_time(self) -> float:
        """Timestamp of the earliest event."""
        if not self._heap:
            raise IndexError("peek on an empty event queue")
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
