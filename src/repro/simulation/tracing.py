"""Structured event traces for simulated executions.

Debugging an event-driven run means seeing the event sequence.  A
:class:`TraceRecorder` wraps the engine's event queue and captures every
*processed* event (stale/invalidated events are marked as skipped), with
helpers to filter, render, and export the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping
from typing import Any

from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem
from repro.simulation.engine import SimulationEngine
from repro.simulation.faults import Fault
from repro.simulation.report import SimulationReport


@dataclass(frozen=True)
class TraceEntry:
    """One processed (or skipped) simulation event."""

    index: int
    time: float
    kind: str
    subject: str
    """User id for transfer/service events, fault type for faults."""

    def as_line(self) -> str:
        """Human-readable one-liner."""
        return f"[{self.index:4d}] t={self.time:10.4f}  {self.kind:<14s} {self.subject}"


@dataclass
class SimulationTrace:
    """The recorded event sequence of one run."""

    entries: list[TraceEntry] = field(default_factory=list)

    def of_kind(self, kind: str) -> list[TraceEntry]:
        """Entries of one event kind."""
        return [e for e in self.entries if e.kind == kind]

    def for_user(self, user_id: str) -> list[TraceEntry]:
        """Entries whose subject is *user_id*."""
        return [e for e in self.entries if e.subject == user_id]

    def render(self, limit: int | None = None) -> str:
        """Multi-line rendering (clipped to *limit* entries)."""
        chosen = self.entries if limit is None else self.entries[:limit]
        body = "\n".join(entry.as_line() for entry in chosen)
        if limit is not None and len(self.entries) > limit:
            body += f"\n... ({len(self.entries) - limit} more)"
        return body

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-serialisable form."""
        return [
            {
                "index": e.index,
                "time": e.time,
                "kind": e.kind,
                "subject": e.subject,
            }
            for e in self.entries
        ]

    def is_time_ordered(self) -> bool:
        """Whether timestamps never decrease (a core engine invariant)."""
        times = [e.time for e in self.entries]
        return all(later >= earlier for earlier, later in zip(times, times[1:], strict=False))


class _TracingQueue:
    """EventQueue proxy that records every pop."""

    def __init__(self, inner, trace: SimulationTrace) -> None:
        self._inner = inner
        self._trace = trace

    def push(self, time: float, payload: Any) -> None:
        self._inner.push(time, payload)

    def pop(self):
        time, payload = self._inner.pop()
        kind = payload[0]
        if kind == "fault":
            subject = type(payload[1]).__name__
        else:
            subject = str(payload[1])
        self._trace.entries.append(
            TraceEntry(
                index=len(self._trace.entries), time=time, kind=kind, subject=subject
            )
        )
        return time, payload

    def peek_time(self) -> float:
        return self._inner.peek_time()

    def __len__(self) -> int:
        return len(self._inner)

    def __bool__(self) -> bool:
        return bool(self._inner)


def traced_simulation(
    system: MECSystem,
    apps: Mapping[str, PartitionedApplication],
    remote_parts: Mapping[str, set[int]],
    faults: Iterable[Fault] = (),
    shared_uplink_capacity: float | None = None,
    arrivals: Mapping[str, float] | None = None,
) -> tuple[SimulationReport, SimulationTrace]:
    """Run a simulation and capture its full event trace.

    Same semantics as :func:`repro.simulation.engine.simulate_scheme`;
    the trace records events in processing order.
    """
    import repro.simulation.engine as engine_module

    trace = SimulationTrace()
    engine = SimulationEngine(
        system,
        apps,
        remote_parts,
        faults,
        shared_uplink_capacity=shared_uplink_capacity,
        arrivals=arrivals,
    )

    original_queue_type = engine_module.EventQueue
    try:
        engine_module.EventQueue = lambda: _TracingQueue(original_queue_type(), trace)
        report = engine.run()
    finally:
        engine_module.EventQueue = original_queue_type
    return report, trace
