"""Fault injection: rate changes at simulated timestamps.

Faults model the conditions the closed-form formulas assume away: the
edge server slowing under outside load, a user walking out of good radio
coverage.  A fault is a *rate multiplier* applied from its timestamp
onward; factors above 1.0 model recovery or upgrades.  In-flight work is
re-paced from the fault instant (the engine tracks remaining work).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_non_negative, ensure_positive


@dataclass(frozen=True)
class Fault:
    """Base class: something changes at ``time``."""

    time: float

    def __post_init__(self) -> None:
        ensure_non_negative(self.time, "fault time")


@dataclass(frozen=True)
class ServerDegradation(Fault):
    """The edge server's effective capacity is multiplied by ``factor``."""

    factor: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        ensure_positive(self.factor, "factor")


@dataclass(frozen=True)
class ServerOutage(Fault):
    """One fleet server disappears entirely at ``time``.

    The single-server simulation engine has no server to spare, so this
    fault is consumed by the fleet layer instead:
    :func:`repro.fleet.failover.handle_outage` drains the named server
    and re-admits its users on the survivors (or degrades them to
    all-local execution when no capacity remains).
    """

    server_id: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.server_id:
            raise ValueError("ServerOutage requires a server_id")


@dataclass(frozen=True)
class BandwidthChange(Fault):
    """One user's uplink bandwidth is multiplied by ``factor``.

    ``factor=0.0`` models a complete stall (deep fade, tunnel): the
    upload stops moving data and — in shared-uplink mode — stops
    counting against the fair-share denominator until a later
    ``BandwidthChange`` restores a positive factor.
    """

    user_id: str = ""
    factor: float = 0.5

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.user_id:
            raise ValueError("BandwidthChange requires a user_id")
        ensure_non_negative(self.factor, "factor")
