"""Discrete-event execution of offloading schemes.

The paper evaluates schemes with the closed-form model of Section II
(formulas (1)-(6)).  This package provides the corresponding *executable*
substrate: an event-driven simulator that actually plays a scheme out
over time — devices compute locally, uplinks carry the cut data, the
shared edge server queues and serves remote work — and reports measured
completion times and energies.

Two purposes:

* **validation** — with an instantaneous network the simulated totals
  reduce exactly to the analytic FCFS formulas, and the test suite
  asserts that agreement (the strongest check that formulas (1)-(5) are
  implemented consistently);
* **what the formulas can't say** — mid-run faults (server degradation,
  bandwidth drops) and the resulting timelines, used by the
  fault-injection tests and the ``fault_injection``/``scenario_comparison``
  examples.
"""

from repro.simulation.engine import SimulationEngine, simulate_scheme
from repro.simulation.events import EventQueue
from repro.simulation.faults import BandwidthChange, Fault, ServerDegradation, ServerOutage
from repro.simulation.report import SimulationReport, UserTimeline
from repro.simulation.scenario import Scenario, ScenarioComparison, compare_scenarios
from repro.simulation.tracing import SimulationTrace, TraceEntry, traced_simulation

__all__ = [
    "SimulationEngine",
    "simulate_scheme",
    "EventQueue",
    "SimulationReport",
    "UserTimeline",
    "Fault",
    "ServerDegradation",
    "ServerOutage",
    "BandwidthChange",
    "Scenario",
    "ScenarioComparison",
    "compare_scenarios",
    "traced_simulation",
    "SimulationTrace",
    "TraceEntry",
]
