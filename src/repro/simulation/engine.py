"""The discrete-event engine executing an offloading placement.

Execution model (the event-driven analogue of Section II's formulas):

* at t=0 every device starts its local share, finishing after
  ``local_work / I_c`` seconds and drawing ``p_c`` watts while computing;
* users with remote work upload their cut data over their own uplink at
  ``b`` data-units/s, drawing ``p_t`` watts while transmitting (so with a
  healthy link the energy equals formula (4)'s ``cut * p_t / b``);
* completed uploads join the edge server's FCFS queue; the server serves
  one job at a time at its full capacity ``C`` (the work-conserving
  equivalent of the FCFS allocation policy);
* faults (:mod:`repro.simulation.faults`) change a rate mid-run — the
  engine tracks remaining work and re-paces in-flight transfers and jobs.

Event invalidation uses per-activity version counters: re-pacing an
activity bumps its version, and completion events carrying a stale
version are discarded when popped.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from collections.abc import Iterable, Mapping

from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem
from repro.simulation.events import EventQueue
from repro.simulation.faults import BandwidthChange, Fault, ServerDegradation
from repro.simulation.report import SimulationReport, UserTimeline

_EPS = 1e-12


@dataclass
class _Activity:
    """An in-flight transfer or service with re-paceable rate."""

    remaining: float
    rate: float
    last_update: float
    version: int = 0

    def progress_to(self, now: float) -> None:
        """Advance the activity's remaining work to time *now*."""
        elapsed = max(0.0, now - self.last_update)
        self.remaining = max(0.0, self.remaining - self.rate * elapsed)
        self.last_update = now

    def completion_time(self, now: float) -> float:
        """When the activity finishes if the rate stays constant."""
        if self.rate <= _EPS:
            return float("inf")
        return now + self.remaining / self.rate

    def is_complete(self, now: float) -> bool:
        """Whether the activity is done *as far as simulated time can tell*.

        Two cases: the remaining work is negligible, or it is so small
        relative to the rate that finishing it advances the clock by less
        than one representable float step — rescheduling such a residue
        at ``completion_time(now) == now`` would loop forever, so it
        counts as complete (the work lost is below measurement precision).
        """
        if self.remaining <= _EPS:
            return True
        if self.rate <= _EPS:
            return False
        return self.remaining / self.rate <= 4.0 * math.ulp(max(now, 1.0))


class SimulationEngine:
    """Runs one placement to completion and reports the measured outcome."""

    def __init__(
        self,
        system: MECSystem,
        apps: Mapping[str, PartitionedApplication],
        remote_parts: Mapping[str, set[int]],
        faults: Iterable[Fault] = (),
        shared_uplink_capacity: float | None = None,
        arrivals: Mapping[str, float] | None = None,
    ) -> None:
        self.system = system
        self.apps = apps
        self.remote_parts = {u: set(p) for u, p in remote_parts.items()}
        self.faults = sorted(faults, key=lambda f: f.time)
        known_users = {u.user_id for u in system.users}
        self.arrivals = dict(arrivals or {})
        for user_id, time in self.arrivals.items():
            if user_id not in known_users:
                raise ValueError(f"arrival for unknown user {user_id!r}")
            if time < 0:
                raise ValueError(f"arrival time must be >= 0, got {time!r}")
        if shared_uplink_capacity is not None and shared_uplink_capacity <= 0:
            raise ValueError(
                f"shared_uplink_capacity must be > 0, got {shared_uplink_capacity!r}"
            )
        self.shared_uplink_capacity = shared_uplink_capacity
        """When set, all users contend for one wireless channel of this
        total capacity instead of owning private uplinks: transmitting
        uploads receive an equal share capped at the device's own uplink
        rate (scaled by any per-user bandwidth-change factor), re-paced
        whenever an upload starts, finishes, or a fault fires — the
        fair-share cellular model.  Stalled uploads (factor 0) keep
        their place in the queue but do not count against the share."""
        for fault in self.faults:
            if isinstance(fault, BandwidthChange) and fault.user_id not in {
                u.user_id for u in system.users
            }:
                raise ValueError(f"fault targets unknown user {fault.user_id!r}")

    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Execute the placement; returns the measured report."""
        report = SimulationReport()
        queue = EventQueue()

        uplinks: dict[str, _Activity] = {}
        bandwidth_factor: dict[str, float] = {}
        server_factor = 1.0
        server_queue: deque[str] = deque()
        server_job: tuple[str, _Activity] | None = None
        server_busy_since: float | None = None

        # Initialise users.
        for user in self.system.users:
            app = self.apps.get(user.user_id)
            if app is None:
                continue
            parts = self.remote_parts.get(user.user_id, set())
            arrival = self.arrivals.get(user.user_id, 0.0)
            timeline = UserTimeline(
                user_id=user.user_id,
                local_work=app.local_weight(parts),
                remote_work=app.remote_weight(parts),
                cut_data=app.cut_weight(parts),
                arrival=arrival,
                upload_start=arrival,
            )
            report.per_user[user.user_id] = timeline
            bandwidth_factor[user.user_id] = 1.0

            device = user.device
            if timeline.local_work > 0:
                timeline.local_finish = (
                    arrival + timeline.local_work / device.compute_capacity
                )
                timeline.local_energy = (
                    timeline.local_work / device.compute_capacity
                ) * device.power_compute
            if timeline.remote_work > 0:
                queue.push(arrival, ("upload_begin", user.user_id, 0))

        for fault in self.faults:
            queue.push(fault.time, ("fault", fault, 0))

        # Drain the calendar.
        now = 0.0
        while queue:
            now, payload = queue.pop()
            kind = payload[0]
            report.events_processed += 1

            if kind == "upload_begin":
                _, user_id, _version = payload
                device = self.system.user(user_id).device
                # A bandwidth fault may have fired before this user's
                # arrival: the recorded factor applies from the start.
                activity = _Activity(
                    remaining=report.per_user[user_id].cut_data,
                    rate=device.bandwidth * bandwidth_factor[user_id],
                    last_update=now,
                )
                uplinks[user_id] = activity
                if self.shared_uplink_capacity is None:
                    completion = activity.completion_time(now)
                    if not math.isinf(completion):
                        queue.push(
                            completion, ("upload_done", user_id, activity.version)
                        )
                else:
                    self._repace_shared(now, uplinks, bandwidth_factor, queue)

            elif kind == "upload_done":
                _, user_id, version = payload
                activity = uplinks.get(user_id)
                if activity is None or activity.version != version:
                    continue  # stale (re-paced) event
                activity.progress_to(now)
                if not activity.is_complete(now):
                    # Residual work (clock jitter): reschedule, don't strand.
                    activity.version += 1
                    queue.push(
                        activity.completion_time(now),
                        ("upload_done", user_id, activity.version),
                    )
                    continue
                del uplinks[user_id]
                timeline = report.per_user[user_id]
                timeline.upload_finish = now
                device = self.system.user(user_id).device
                timeline.transmission_energy = device.power_transmit * timeline.airtime
                server_queue.append(user_id)
                if server_job is None:
                    server_job, server_busy_since = self._start_service(
                        now, server_queue, server_factor, report, queue
                    )
                if self.shared_uplink_capacity is not None:
                    # One upload left the channel: survivors speed up.
                    self._repace_shared(now, uplinks, bandwidth_factor, queue)

            elif kind == "service_done":
                _, user_id, version = payload
                if server_job is None or server_job[0] != user_id:
                    continue
                activity = server_job[1]
                if activity.version != version:
                    continue
                activity.progress_to(now)
                if not activity.is_complete(now):
                    activity.version += 1
                    queue.push(
                        activity.completion_time(now),
                        ("service_done", user_id, activity.version),
                    )
                    continue
                report.per_user[user_id].service_finish = now
                if server_busy_since is not None:
                    report.server_busy += now - server_busy_since
                server_job = None
                server_busy_since = None
                if server_queue:
                    server_job, server_busy_since = self._start_service(
                        now, server_queue, server_factor, report, queue
                    )

            elif kind == "fault":
                fault = payload[1]
                if isinstance(fault, ServerDegradation):
                    server_factor = fault.factor
                    if server_job is not None:
                        _, activity = server_job
                        activity.progress_to(now)
                        activity.rate = (
                            self.system.server.total_capacity * server_factor
                        )
                        activity.version += 1
                        queue.push(
                            activity.completion_time(now),
                            ("service_done", server_job[0], activity.version),
                        )
                elif isinstance(fault, BandwidthChange):
                    bandwidth_factor[fault.user_id] = fault.factor
                    if self.shared_uplink_capacity is not None:
                        self._repace_shared(now, uplinks, bandwidth_factor, queue)
                    else:
                        activity = uplinks.get(fault.user_id)
                        if activity is not None:
                            activity.progress_to(now)
                            device = self.system.user(fault.user_id).device
                            activity.rate = device.bandwidth * fault.factor
                            activity.version += 1
                            completion = activity.completion_time(now)
                            if not math.isinf(completion):
                                queue.push(
                                    completion,
                                    ("upload_done", fault.user_id, activity.version),
                                )
                else:  # pragma: no cover - new fault kinds must be handled
                    raise TypeError(f"unhandled fault type {type(fault).__name__}")

        report.makespan = max(
            (t.completion for t in report.per_user.values()), default=0.0
        )
        return report

    def _repace_shared(
        self,
        now: float,
        uplinks: dict[str, _Activity],
        bandwidth_factor: dict[str, float],
        queue: EventQueue,
    ) -> None:
        """Fair-share re-pacing of every active upload (shared channel).

        Each transmitting upload gets ``capacity / n_active`` — counting
        only uploads whose bandwidth factor is non-zero, so a stalled
        user does not hold a fair-share slot while moving no data — and
        the share is capped at the device's own uplink ``b`` (spectrum
        cannot make a handset faster than its radio), then scaled by the
        user's bandwidth factor.  Versions bump so previously scheduled
        completions become stale; stalled uploads get no completion
        event at all (they would never fire) and are re-paced back in
        when a recovery fault restores their factor.
        """
        if not uplinks:
            return
        assert self.shared_uplink_capacity is not None
        transmitting = sum(
            1 for user_id in uplinks if bandwidth_factor[user_id] > _EPS
        )
        share = self.shared_uplink_capacity / max(1, transmitting)
        for user_id, activity in uplinks.items():
            activity.progress_to(now)
            factor = bandwidth_factor[user_id]
            device = self.system.user(user_id).device
            activity.rate = min(share, device.bandwidth) * factor
            activity.version += 1
            completion = activity.completion_time(now)
            if math.isinf(completion):
                continue
            queue.push(completion, ("upload_done", user_id, activity.version))

    def _start_service(
        self,
        now: float,
        server_queue: deque[str],
        server_factor: float,
        report: SimulationReport,
        queue: EventQueue,
    ) -> tuple[tuple[str, _Activity], float]:
        """Dequeue the next user and begin serving their remote work."""
        user_id = server_queue.popleft()
        timeline = report.per_user[user_id]
        timeline.service_start = now
        activity = _Activity(
            remaining=timeline.remote_work,
            rate=self.system.server.total_capacity * server_factor,
            last_update=now,
        )
        queue.push(
            activity.completion_time(now), ("service_done", user_id, activity.version)
        )
        return (user_id, activity), now


def simulate_scheme(
    system: MECSystem,
    apps: Mapping[str, PartitionedApplication],
    remote_parts: Mapping[str, set[int]],
    faults: Iterable[Fault] = (),
    shared_uplink_capacity: float | None = None,
    arrivals: Mapping[str, float] | None = None,
) -> SimulationReport:
    """Convenience wrapper: build the engine and run it."""
    return SimulationEngine(
        system,
        apps,
        remote_parts,
        faults,
        shared_uplink_capacity=shared_uplink_capacity,
        arrivals=arrivals,
    ).run()
