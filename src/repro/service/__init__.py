"""Plan-serving subsystem: the planner as a long-lived service.

The paper (and the rest of this repo) plans a workload in one shot.  A
production edge deployment instead sees a *stream* of plan requests —
millions of users running a handful of popular applications — and
replanning each arrival from scratch wastes exactly the work this
package exists to share.  Four pieces compose into :class:`PlanService`:

* :mod:`repro.service.fingerprint` — content-addressed identity for
  (call graph, planner config) pairs, stable across object identity,
  insertion order and processes;
* :mod:`repro.service.plan_cache` — an LRU cache of finished
  :class:`~repro.core.results.UserPlan` objects keyed by fingerprint,
  with JSON spill so caches survive restarts;
* :mod:`repro.service.batching` — a bounded request queue that
  coalesces duplicate in-flight requests (single-flight) and drains
  arrivals in batches;
* :mod:`repro.service.server` — the worker pool, load shedding,
  timeout/retry and validation glue;
* :mod:`repro.service.executor` — the planning execution backend:
  in-thread (default) or a multiprocessing pool so plan throughput
  scales with cores;
* :mod:`repro.service.metrics` — counters/gauges/histograms rendered
  as a plain-text report (``python -m repro serve-bench`` prints it).
"""

from repro.service.batching import PlanRequest, QueueFullError, RequestQueue
from repro.service.executor import (
    EXECUTOR_MODES,
    PlanningBackend,
    process_pool_supported,
)
from repro.service.fingerprint import (
    FingerprintError,
    config_fingerprint,
    graph_fingerprint,
    request_fingerprint,
    structural_fingerprint,
)
from repro.service.http import (
    HttpFrontend,
    HttpFrontendThread,
    PayloadError,
    graph_to_payload,
    make_fastapi_app,
    parse_graph_payload,
    response_to_dict,
)
from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service.plan_cache import (
    PlanCache,
    plan_digest,
    plan_from_dict,
    plan_to_dict,
)
from repro.service.shm import (
    GraphRef,
    SegmentLostError,
    SharedGraphStore,
    decode_call_graph,
    encode_call_graph,
)
from repro.service.server import (
    PlanResponse,
    PlanService,
    PlanTicket,
    ServiceConfig,
    ServiceError,
)

__all__ = [
    "FingerprintError",
    "graph_fingerprint",
    "structural_fingerprint",
    "config_fingerprint",
    "request_fingerprint",
    "PlanCache",
    "plan_to_dict",
    "plan_from_dict",
    "plan_digest",
    "PlanRequest",
    "RequestQueue",
    "QueueFullError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PlanService",
    "PlanTicket",
    "PlanResponse",
    "ServiceConfig",
    "ServiceError",
    "EXECUTOR_MODES",
    "PlanningBackend",
    "process_pool_supported",
    "HttpFrontend",
    "HttpFrontendThread",
    "PayloadError",
    "graph_to_payload",
    "make_fastapi_app",
    "parse_graph_payload",
    "response_to_dict",
    "GraphRef",
    "SegmentLostError",
    "SharedGraphStore",
    "decode_call_graph",
    "encode_call_graph",
]
