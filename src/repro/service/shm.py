"""Zero-copy call-graph transfer for the process planning backend.

``Pool.apply(graph)`` pays the full pickle round-trip per plan: the
dict-of-dict :class:`~repro.graphs.weighted_graph.WeightedGraph` pickles
node by node, edge by edge, through a pipe, then unpickles into fresh
dicts on the worker side — at smoke scale that costs ~10x the actual
planning work.  This module replaces the payload with a flat binary
codec plus a shared-memory registry:

* :func:`encode_call_graph` packs a :class:`FunctionCallGraph` into one
  contiguous buffer — a small JSON header (names, components,
  offloadability) followed by the 8-byte-aligned CSR arrays
  (``indptr``/``indices``/``edge_weight``/``computation``) exactly as
  :class:`~repro.graphs.csr.CSRGraph` lays them out;
* :class:`SharedGraphStore` publishes encoded graphs into
  ``multiprocessing.shared_memory`` segments keyed by content
  fingerprint, so repeated submissions of a known graph ship only the
  ~100-byte :class:`GraphRef` (key + segment name) instead of the graph;
* :func:`resolve_ref` attaches on the worker side and rebuilds the graph
  through ``np.frombuffer`` *views* over the segment — the arrays are
  never copied; only the final thaw into the planner's dict
  representation materialises Python objects (the planner consumes
  ``WeightedGraph``, so that step is inherent, and it preserves
  insertion/adjacency order bit-for-bit via
  :meth:`~repro.graphs.csr.CSRGraph.to_weighted_graph`).

When shared memory is unavailable (or a segment was evicted before a
queued task ran) the same encoded buffer travels inline as a single
contiguous ``bytes`` payload: pickle protocol 5 — the default since
CPython 3.8, and what ``multiprocessing``'s ``ForkingPickler`` speaks —
serialises it with one flat copy instead of a per-edge object walk.
(True out-of-band ``PickleBuffer`` transfer needs a ``buffer_callback``,
which ``Pool``'s pipe protocol does not expose; the single-blob inline
form is the closest reachable point and is the documented fallback.)

Lifecycle discipline (checked by ``repro-lint``'s
``poolsafety/shm-unlink`` rule): every segment this module creates is
``close()``-d *and* ``unlink()``-ed exactly once — on LRU eviction or on
:meth:`SharedGraphStore.close` — and worker-side attachments are
``close()``-d before the task returns.  Nothing outlives the store.
"""

from __future__ import annotations

import json
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.callgraph.model import FunctionCallGraph, FunctionInfo
from repro.graphs.csr import CSRGraph
from repro.service.fingerprint import graph_fingerprint

_MAGIC = b"RPG1"
_ALIGN = 8

DEFAULT_STORE_CAPACITY = 128
"""Segments kept live per store; one segment per *distinct* graph, so
this bounds parent-side shared memory at (capacity x largest graph)."""


class SegmentLostError(RuntimeError):
    """A worker tried to attach a segment the parent already evicted."""


def _pad(length: int) -> int:
    return (-length) % _ALIGN


def encode_call_graph(call_graph: FunctionCallGraph) -> bytes:
    """Pack *call_graph* into one contiguous, alignment-safe buffer."""
    names = call_graph.graph.node_list()
    csr = CSRGraph.from_graph(call_graph.graph)
    components: list[str] = []
    offloadable: list[int] = []
    for name in names:
        info = call_graph.info(str(name))
        components.append(info.component)
        offloadable.append(1 if info.offloadable else 0)
    header = json.dumps(
        {
            "app": call_graph.app_name,
            "names": [str(name) for name in names],
            "components": components,
            "offloadable": offloadable,
            "n": csr.node_count,
            "m2": int(csr.indices.shape[0]),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    parts = [
        _MAGIC,
        struct.pack("<I", len(header)),
        header,
        b"\x00" * _pad(len(_MAGIC) + 4 + len(header)),
        csr.indptr.tobytes(),
        csr.indices.tobytes(),
        csr.edge_weight.tobytes(),
        csr.node_weight.tobytes(),
    ]
    return b"".join(parts)


def decode_call_graph(buffer: "bytes | memoryview") -> FunctionCallGraph:
    """Rebuild the call graph from an encoded buffer.

    The CSR arrays are read as ``np.frombuffer`` views — zero copies —
    and thawed into the dict representation with exact insertion and
    adjacency order, so a decoded graph plans bit-identically to the
    original.  Nothing in the returned graph references *buffer*; the
    caller may release the underlying segment immediately.
    """
    view = memoryview(buffer)
    if bytes(view[:4]) != _MAGIC:
        raise ValueError("buffer does not hold an encoded call graph")
    (header_len,) = struct.unpack("<I", view[4:8])
    header = json.loads(bytes(view[8 : 8 + header_len]).decode("utf-8"))
    names: list[str] = list(header["names"])
    components: list[str] = list(header["components"])
    offloadable: list[int] = list(header["offloadable"])
    n = int(header["n"])
    m2 = int(header["m2"])
    if len(names) != n or len(components) != n or len(offloadable) != n:
        raise ValueError("encoded header is inconsistent with its node count")

    offset = 8 + header_len + _pad(8 + header_len)
    indptr: np.ndarray = np.frombuffer(view, dtype=np.int64, count=n + 1, offset=offset)
    offset += indptr.nbytes
    indices: np.ndarray = np.frombuffer(view, dtype=np.int64, count=m2, offset=offset)
    offset += indices.nbytes
    edge_weight: np.ndarray = np.frombuffer(view, dtype=np.float64, count=m2, offset=offset)
    offset += edge_weight.nbytes
    node_weight: np.ndarray = np.frombuffer(view, dtype=np.float64, count=n, offset=offset)

    csr = CSRGraph(list(names), indptr, indices, edge_weight, node_weight)
    graph = csr.to_weighted_graph()
    info: dict[str, FunctionInfo] = {}
    for i, name in enumerate(names):
        info[name] = FunctionInfo(
            name=name,
            computation=float(node_weight[i]),
            component=components[i],
            offloadable=bool(offloadable[i]),
        )
        graph.node_data(name)["component"] = components[i]
    return FunctionCallGraph.from_parts(str(header["app"]), graph, info)


@dataclass(frozen=True)
class GraphRef:
    """Transferable handle to an encoded graph.

    ``segment`` names a live shared-memory segment holding the encoding;
    when ``None``, ``payload`` carries the encoding inline (the pickle-5
    single-blob fallback).  ``key`` is the content fingerprint — worker
    processes cache decoded graphs under it, so a repeated structure is
    decoded once per worker no matter how many refs name it.
    """

    key: str
    size: int
    segment: str | None = None
    payload: bytes | None = None


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Drop the attach-side resource-tracker registration (3.11 quirk).

    CPython < 3.13 registers a segment with the resource tracker on
    *attach* as well as on create.  Under ``spawn`` the attaching worker
    runs its *own* tracker, which unlinks everything it knows about when
    the worker exits — yanking live segments out from under the parent.
    Ownership here is strictly parent-side, so spawn-context workers
    unregister after attaching.  Fork workers must NOT: they share the
    parent's tracker process, and unregistering there would erase the
    parent's own leak protection (the registration is one shared entry).
    """
    try:
        resource_tracker.unregister(segment._name, "shared_memory")  # type: ignore[attr-defined]
    except (AttributeError, KeyError, FileNotFoundError):  # pragma: no cover
        pass


def resolve_ref(ref: GraphRef, untrack: bool = False) -> FunctionCallGraph:
    """Worker-side: materialise the call graph a :class:`GraphRef` names.

    Raises :class:`SegmentLostError` when the segment has been evicted —
    the submitter retries with an inline payload.  *untrack* must be True
    exactly when the caller is a spawn-context worker (see
    :func:`_untrack`).
    """
    if ref.segment is None:
        if ref.payload is None:
            raise ValueError(f"ref {ref.key} carries neither segment nor payload")
        return decode_call_graph(ref.payload)
    try:
        segment = shared_memory.SharedMemory(name=ref.segment)
    except FileNotFoundError as exc:
        raise SegmentLostError(
            f"segment {ref.segment} for graph {ref.key[:12]} is gone"
        ) from exc
    try:
        if untrack:
            _untrack(segment)
        view = segment.buf[: ref.size]
        try:
            return decode_call_graph(view)
        finally:
            # Release the exported view before close(); a live export
            # makes SharedMemory.close() raise BufferError.
            view.release()
    finally:
        segment.close()


class SharedGraphStore:
    """Parent-side LRU registry of published graph segments.

    ``publish`` returns a :class:`GraphRef` for a graph, creating (or
    reusing) a shared-memory segment keyed by content fingerprint.  The
    store owns every segment it creates: eviction and :meth:`close` both
    ``close()`` + ``unlink()``.  All methods are thread-safe — service
    worker threads publish concurrently.

    If segment creation fails (platforms without ``/dev/shm``, exhausted
    shm quota), the store degrades permanently to inline refs; planning
    stays correct, only the zero-copy fast path is lost.
    """

    def __init__(self, capacity: int = DEFAULT_STORE_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._segments: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
        self._sizes: dict[str, int] = {}
        self._lock = threading.Lock()
        self._disabled = False
        self._closed = False
        self.publishes = 0
        self.reuses = 0
        self.evictions = 0
        self.inline_fallbacks = 0

    def publish(self, call_graph: FunctionCallGraph) -> GraphRef:
        """Return a ref for *call_graph*, creating its segment on first use."""
        key = graph_fingerprint(call_graph)
        with self._lock:
            if self._closed:
                raise RuntimeError("store is closed")
            existing = self._segments.get(key)
            if existing is not None:
                self._segments.move_to_end(key)
                self.reuses += 1
                return GraphRef(key=key, size=self._sizes[key], segment=existing.name)
        blob = encode_call_graph(call_graph)
        with self._lock:
            if self._closed:
                raise RuntimeError("store is closed")
            existing = self._segments.get(key)
            if existing is not None:  # raced with another publisher
                self._segments.move_to_end(key)
                self.reuses += 1
                return GraphRef(key=key, size=self._sizes[key], segment=existing.name)
            if not self._disabled:
                try:
                    segment = shared_memory.SharedMemory(create=True, size=len(blob))
                except OSError:
                    self._disabled = True
                else:
                    segment.buf[: len(blob)] = blob
                    self._segments[key] = segment
                    self._sizes[key] = len(blob)
                    self.publishes += 1
                    while len(self._segments) > self.capacity:
                        evicted_key, evicted = self._segments.popitem(last=False)
                        self._sizes.pop(evicted_key, None)
                        evicted.close()
                        evicted.unlink()
                        self.evictions += 1
                    return GraphRef(key=key, size=len(blob), segment=segment.name)
            self.inline_fallbacks += 1
            return GraphRef(key=key, size=len(blob), payload=blob)

    def inline_ref(self, call_graph: FunctionCallGraph) -> GraphRef:
        """Encode *call_graph* as an inline ref, bypassing shared memory.

        The retry path after :class:`SegmentLostError`: an inline payload
        cannot be evicted underneath a queued task.
        """
        blob = encode_call_graph(call_graph)
        with self._lock:
            self.inline_fallbacks += 1
        return GraphRef(key=graph_fingerprint(call_graph), size=len(blob), payload=blob)

    def close(self) -> None:
        """Unlink every live segment; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            while self._segments:
                _, segment = self._segments.popitem(last=False)
                segment.close()
                segment.unlink()
            self._sizes.clear()

    def __enter__(self) -> "SharedGraphStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @property
    def live_segments(self) -> int:
        with self._lock:
            return len(self._segments)


__all__ = [
    "DEFAULT_STORE_CAPACITY",
    "GraphRef",
    "SegmentLostError",
    "SharedGraphStore",
    "decode_call_graph",
    "encode_call_graph",
    "resolve_ref",
]
