"""Pluggable planning execution backend: in-thread or process pool.

Planning is pure Python, so :class:`~repro.service.server.PlanService`'s
thread pool only buys isolation and batching — the GIL serialises the
actual planning work.  ``PlanningBackend`` abstracts *where* a plan is
computed:

* ``"thread"`` — plan inline on the calling worker thread (the original
  behaviour; zero overhead, GIL-bound throughput);
* ``"process"`` — ship the request to a ``multiprocessing`` pool so
  planning scales with cores.  Cut strategies are closures and do not
  pickle, so worker processes rebuild their own planner from the
  registry name via :func:`repro.core.baselines.make_planner` (pool
  initializer); only the :class:`FunctionCallGraph` request and the
  :class:`UserPlan` result cross the process boundary, and both are
  plain picklable dataclasses.

Planning is deterministic, so thread and process modes return identical
plans for identical requests (asserted by the parity tests).
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.callgraph.model import FunctionCallGraph
from repro.core.config import PlannerConfig
from repro.core.results import UserPlan

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.planner import OffloadingPlanner

EXECUTOR_MODES = ("thread", "process")

_WORKER_PLANNER: "OffloadingPlanner | None" = None
"""Per-worker-process planner, rebuilt by :func:`_initialize_worker`."""


def _initialize_worker(strategy_name: str, config: PlannerConfig | None) -> None:
    """Pool initializer: rebuild the planner inside the worker process."""
    global _WORKER_PLANNER
    from repro.core.baselines import make_planner

    _WORKER_PLANNER = make_planner(strategy_name, config)


def _plan_in_worker(graph: FunctionCallGraph) -> UserPlan:
    """Run one plan on the worker process's rebuilt planner."""
    if _WORKER_PLANNER is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker process has no planner (initializer not run)")
    return _WORKER_PLANNER.plan_user(graph)


def process_pool_supported(strategy_name: str) -> bool:
    """Whether *strategy_name* can be rebuilt inside a worker process.

    Only registry strategies qualify; ``"spectral-spark"`` (needs a live
    cluster) and ad-hoc strategies (arbitrary closures) cannot cross the
    process boundary.
    """
    from repro.core.baselines import _STRATEGY_BUILDERS

    return strategy_name in _STRATEGY_BUILDERS


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, shares the warm interpreter), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


class PlanningBackend:
    """Executes ``plan_user`` calls in-thread or on a process pool.

    Use as a context manager or call :meth:`start`/:meth:`close`.  All
    methods are safe to call from multiple threads: ``Pool.apply`` is
    ``apply_async().get()`` under the hood, so concurrent callers fan
    out across the pool's worker processes.
    """

    def __init__(
        self,
        executor: str = "thread",
        strategy_name: str = "spectral",
        config: PlannerConfig | None = None,
        processes: int | None = None,
    ) -> None:
        if executor not in EXECUTOR_MODES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTOR_MODES}"
            )
        if executor == "process" and not process_pool_supported(strategy_name):
            raise ValueError(
                f"strategy {strategy_name!r} cannot run on a process pool: "
                "worker processes rebuild planners from the strategy registry, "
                "and this strategy is not registered there"
            )
        self.executor = executor
        self.strategy_name = strategy_name
        self.config = config
        self.processes = processes
        self._pool: multiprocessing.pool.Pool | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PlanningBackend":
        """Launch the process pool (no-op for the thread executor)."""
        if self.executor == "process" and self._pool is None:
            self._pool = _pool_context().Pool(
                processes=self.processes,
                initializer=_initialize_worker,
                initargs=(self.strategy_name, self.config),
            )
        return self

    def close(self) -> None:
        """Tear the pool down; idempotent."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "PlanningBackend":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, planner: "OffloadingPlanner", graph: FunctionCallGraph) -> UserPlan:
        """Plan one graph; worker exceptions re-raise in the caller."""
        if self._pool is not None:
            return self._pool.apply(_plan_in_worker, (graph,))
        return planner.plan_user(graph)

    def plan_many(
        self, planner: "OffloadingPlanner", graphs: Sequence[FunctionCallGraph]
    ) -> list[UserPlan]:
        """Plan a batch, preserving order.

        The process executor maps the batch across the pool; the thread
        executor plans sequentially (parallel threads would only contend
        on the GIL).  Results are positionally aligned with *graphs*.
        """
        if self._pool is not None and len(graphs) > 1:
            return self._pool.map(_plan_in_worker, graphs)
        return [self.plan(planner, graph) for graph in graphs]


__all__ = [
    "EXECUTOR_MODES",
    "PlanningBackend",
    "process_pool_supported",
]
