"""Pluggable planning execution backend: in-thread or warm process pool.

Planning is pure Python, so :class:`~repro.service.server.PlanService`'s
thread pool only buys isolation and batching — the GIL serialises the
actual planning work.  ``PlanningBackend`` abstracts *where* a plan is
computed:

* ``"thread"`` — plan inline on the calling worker thread (the original
  behaviour; zero overhead, GIL-bound throughput);
* ``"process"`` — ship requests to a persistent ``multiprocessing`` pool
  so planning scales with cores.  Cut strategies are closures and do not
  pickle, so worker processes rebuild their own planner from the
  registry name via :func:`repro.core.baselines.make_planner` (pool
  initializer), and are pre-warmed with the parent solver's Fiedler
  warm-start cache so a fresh worker converges as fast as the parent
  thread would.

The process path is built to amortise IPC instead of paying it per plan:

* graphs travel through :class:`~repro.service.shm.SharedGraphStore` —
  shared-memory segments keyed by content fingerprint, with worker-side
  decode caching, so a repeated graph crosses the boundary as a ~100
  byte :class:`~repro.service.shm.GraphRef` instead of a pickled dict
  walk (inline pickle-5 blobs are the fallback when shared memory is
  unavailable or a segment was evicted);
* batches go through a sequence-numbered ``imap_unordered`` pipeline
  with a computed chunksize, so one IPC round-trip carries many plans
  and results realign positionally on the way back;
* workers return ``(seq, status, payload)`` instead of raising: a
  ``"miss"`` (evicted segment) is retried with an inline payload, an
  ``"error"`` re-raises in the caller — the pipeline itself never dies
  mid-batch.

Planning is deterministic, so thread and process modes return identical
plans for identical requests (asserted by the parity tests).

Shutdown discipline: :meth:`PlanningBackend.close` *drains* — it lets
every submitted task finish (``Pool.close()`` + ``join()``) before
freeing shared memory, so in-flight batches survive a close issued from
another thread.  :meth:`terminate` is the abandon-ship teardown for
error paths and is what the context manager uses when exiting on an
exception.
"""

from __future__ import annotations

import math
import multiprocessing
import multiprocessing.pool
import pickle
from multiprocessing import resource_tracker
from collections import OrderedDict
from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.callgraph.model import FunctionCallGraph
from repro.core.config import PlannerConfig
from repro.core.results import UserPlan
from repro.service.shm import (
    DEFAULT_STORE_CAPACITY,
    GraphRef,
    SegmentLostError,
    SharedGraphStore,
    resolve_ref,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    import numpy as np

    from repro.core.planner import OffloadingPlanner
    from repro.spectral.fiedler import FiedlerSolver

EXECUTOR_MODES = ("thread", "process")

_DECODE_CACHE_CAPACITY = 64
"""Decoded graphs kept per worker process, LRU by content fingerprint."""

_MAX_CHUNKSIZE = 32
"""Upper bound on tasks per pool chunk: beyond this, latency of the
slowest chunk dominates and stragglers starve the realignment loop."""

_WORKER_PLANNER: "OffloadingPlanner | None" = None
"""Per-worker-process planner, rebuilt by :func:`_initialize_worker`."""

_WORKER_UNTRACK = False
"""Whether this worker must unregister attached segments (spawn only)."""

_WORKER_GRAPHS: "OrderedDict[str, FunctionCallGraph]" = OrderedDict()
"""Per-worker LRU of decoded graphs: repeated refs decode once."""


def planner_fiedler_solver(planner: "OffloadingPlanner") -> "FiedlerSolver | None":
    """The Fiedler solver behind *planner*'s cut strategy, if it has one.

    Registry spectral strategies attach their solver to the strategy
    closure (``cut.fiedler_solver``); other strategies have none.
    """
    solver = getattr(planner.cut_strategy, "fiedler_solver", None)
    if solver is None:
        return None
    return solver  # type: ignore[no-any-return]


def collect_warm_state(
    planner: "OffloadingPlanner | None",
) -> "tuple[bool, list[tuple[str, np.ndarray]]]":
    """Export (warm-start flag, cache entries) for worker pre-warming."""
    if planner is None:
        return False, []
    solver = planner_fiedler_solver(planner)
    if solver is None:
        return False, []
    return solver.warm_start, solver.export_warm_entries()


def _initialize_worker(
    strategy_name: str,
    config: PlannerConfig | None,
    warm_start: bool = False,
    warm_entries: "Sequence[tuple[str, np.ndarray]] | None" = None,
    untrack: bool = False,
) -> None:
    """Pool initializer: rebuild the planner inside the worker process.

    The worker's solver is primed with the parent's warm-start cache and
    inherits the parent's ``warm_start`` flag, so thread and process
    executors run the same solver policy (both off by default — the
    bit-exact configuration the parity tests assert).
    """
    global _WORKER_PLANNER, _WORKER_UNTRACK
    from repro.core.baselines import make_planner

    _WORKER_PLANNER = make_planner(strategy_name, config)
    _WORKER_UNTRACK = untrack
    _WORKER_GRAPHS.clear()
    if warm_entries:
        solver = planner_fiedler_solver(_WORKER_PLANNER)
        if solver is not None:
            solver.warm_start = warm_start
            solver.prime_warm_entries(warm_entries)


def _cached_graph(ref: GraphRef) -> FunctionCallGraph:
    """Resolve *ref* through the worker's decode LRU."""
    graph = _WORKER_GRAPHS.get(ref.key)
    if graph is not None:
        _WORKER_GRAPHS.move_to_end(ref.key)
        return graph
    graph = resolve_ref(ref, untrack=_WORKER_UNTRACK)
    _WORKER_GRAPHS[ref.key] = graph
    while len(_WORKER_GRAPHS) > _DECODE_CACHE_CAPACITY:
        _WORKER_GRAPHS.popitem(last=False)
    return graph


def _encode_error(exc: Exception) -> Exception:
    """Make *exc* safe to ship back through the result pipe."""
    try:
        pickle.dumps(exc)
    except Exception:
        # Unpicklable exceptions (closures in args, live handles) would
        # kill the pool's result handler; a flattened summary records
        # the error and travels safely instead.
        return RuntimeError(f"{type(exc).__name__}: {exc}")
    return exc


def _plan_task(task: tuple[int, GraphRef]) -> tuple[int, str, object]:
    """Run one sequenced plan request on the worker's rebuilt planner.

    Returns ``(seq, status, payload)`` with status ``"ok"`` (payload is
    the :class:`UserPlan`), ``"miss"`` (segment evicted before this task
    ran; payload is the graph key — the parent retries inline), or
    ``"error"`` (payload is the exception).  Raising inside a mapped
    task would poison the whole ``imap_unordered`` iteration; statuses
    keep the other plans in the batch alive.
    """
    seq, ref = task
    if _WORKER_PLANNER is None:  # pragma: no cover - initializer always ran
        return (seq, "error", RuntimeError("worker process has no planner"))
    try:
        graph = _cached_graph(ref)
        return (seq, "ok", _WORKER_PLANNER.plan_user(graph))
    except SegmentLostError:
        return (seq, "miss", ref.key)
    except Exception as exc:
        # Worker tasks must never raise (see docstring); every failure
        # is encoded and re-raised by the submitting side.
        return (seq, "error", _encode_error(exc))


def process_pool_supported(strategy_name: str) -> bool:
    """Whether *strategy_name* can be rebuilt inside a worker process.

    Only registry strategies qualify; ``"spectral-spark"`` (needs a live
    cluster) and ad-hoc strategies (arbitrary closures) cannot cross the
    process boundary.
    """
    from repro.core.baselines import _STRATEGY_BUILDERS

    return strategy_name in _STRATEGY_BUILDERS


def _pool_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, shares the warm interpreter), else spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context("spawn")


def _chunksize(tasks: int, workers: int) -> int:
    """Tasks per pool chunk: ~4 chunks per worker, bounded both ways.

    Small batches keep chunk=1 (parallelism beats amortisation); large
    batches grow chunks so the per-task IPC cost is shared, capped at
    :data:`_MAX_CHUNKSIZE` so one slow chunk cannot stall realignment.
    """
    if tasks <= 0:
        return 1
    return max(1, min(_MAX_CHUNKSIZE, math.ceil(tasks / (max(1, workers) * 4))))


class PlanningBackend:
    """Executes ``plan_user`` calls in-thread or on a warm process pool.

    Use as a context manager or call :meth:`start`/:meth:`close`.  All
    methods are safe to call from multiple threads — concurrent batch
    submissions interleave their chunks across the pool's workers.
    """

    def __init__(
        self,
        executor: str = "thread",
        strategy_name: str = "spectral",
        config: PlannerConfig | None = None,
        processes: int | None = None,
        maxtasksperchild: int | None = None,
        store_capacity: int = DEFAULT_STORE_CAPACITY,
        warm_source: "OffloadingPlanner | None" = None,
    ) -> None:
        if executor not in EXECUTOR_MODES:
            raise ValueError(
                f"unknown executor {executor!r}; expected one of {EXECUTOR_MODES}"
            )
        if executor == "process" and not process_pool_supported(strategy_name):
            raise ValueError(
                f"strategy {strategy_name!r} cannot run on a process pool: "
                "worker processes rebuild planners from the strategy registry, "
                "and this strategy is not registered there"
            )
        self.executor = executor
        self.strategy_name = strategy_name
        self.config = config
        self.processes = processes
        self.maxtasksperchild = maxtasksperchild
        self.store_capacity = store_capacity
        self.warm_source = warm_source
        self._pool: multiprocessing.pool.Pool | None = None
        self._store: SharedGraphStore | None = None
        self._pool_workers = 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PlanningBackend":
        """Launch the process pool (no-op for the thread executor)."""
        if self.executor == "process" and self._pool is None:
            context = _pool_context()
            untrack = getattr(context, "_name", "fork") != "fork"
            if not untrack:
                # Fork workers inherit the parent's resource tracker only
                # if it is already running at fork time.  Otherwise each
                # worker spawns a private tracker on its first segment
                # attach, and that tracker replays unlink for segments the
                # parent has since removed — warning at worker exit.
                resource_tracker.ensure_running()
            warm_start, warm_entries = collect_warm_state(self.warm_source)
            self._store = SharedGraphStore(capacity=self.store_capacity)
            self._pool = context.Pool(
                processes=self.processes,
                initializer=_initialize_worker,
                initargs=(
                    self.strategy_name,
                    self.config,
                    warm_start,
                    warm_entries,
                    untrack,
                ),
                maxtasksperchild=self.maxtasksperchild,
            )
            self._pool_workers = self.processes or multiprocessing.cpu_count()
        return self

    def close(self) -> None:
        """Drain and tear down: in-flight work finishes first; idempotent.

        ``Pool.close()`` stops intake, ``join()`` waits for every
        submitted task — a batch racing with close still gets its
        results.  Only then is the shared-memory store unlinked (workers
        may be attaching segments right up to the join).
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()
            pool.join()
        self._close_store()

    def terminate(self) -> None:
        """Abandon-ship teardown: kill workers, drop in-flight plans.

        For error and timeout paths only — the happy path must use
        :meth:`close`, which drains.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()
        self._close_store()

    def _close_store(self) -> None:
        store, self._store = self._store, None
        if store is not None:
            store.close()

    def __enter__(self) -> "PlanningBackend":
        return self.start()

    def __exit__(self, exc_type: object, *exc_info: object) -> None:
        if exc_type is not None:
            self.terminate()
        else:
            self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pooled(self) -> bool:
        """Whether a live process pool is serving requests."""
        return self._pool is not None

    @property
    def store(self) -> SharedGraphStore | None:
        """The live shared-memory store (``None`` for thread mode)."""
        return self._store

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def plan(self, planner: "OffloadingPlanner", graph: FunctionCallGraph) -> UserPlan:
        """Plan one graph; worker exceptions re-raise in the caller."""
        if self._pool is None:
            return planner.plan_user(graph)
        plan, error = self._settle_batch([graph])[0]
        if error is not None:
            raise error
        assert plan is not None
        return plan

    def plan_many(
        self, planner: "OffloadingPlanner", graphs: Sequence[FunctionCallGraph]
    ) -> list[UserPlan]:
        """Plan a batch, preserving order; first failure (by position) raises.

        With a live pool *every* batch — including single-graph ones —
        goes through the pipeline, so batch and single submissions have
        identical executor semantics.  The thread executor plans
        sequentially (parallel threads would only contend on the GIL).
        """
        if self._pool is None or not graphs:
            return [planner.plan_user(graph) for graph in graphs]
        plans: list[UserPlan] = []
        for plan, error in self._settle_batch(graphs):
            if error is not None:
                raise error
            assert plan is not None
            plans.append(plan)
        return plans

    def plan_many_settled(
        self, planner: "OffloadingPlanner", graphs: Sequence[FunctionCallGraph]
    ) -> list[tuple[UserPlan | None, Exception | None]]:
        """Plan a batch, returning per-position ``(plan, error)`` pairs.

        The serving layer's entry point: one failing graph must not take
        the rest of its batch down with it.
        """
        if self._pool is None:
            settled: list[tuple[UserPlan | None, Exception | None]] = []
            for graph in graphs:
                try:
                    settled.append((planner.plan_user(graph), None))
                except Exception as exc:
                    # Contract of *_settled*: per-item failures are part
                    # of the return value, recorded for the caller to
                    # count and surface — never silently dropped.
                    settled.append((None, _encode_error(exc)))
            return settled
        return self._settle_batch(graphs)

    def _settle_batch(
        self, graphs: Sequence[FunctionCallGraph]
    ) -> list[tuple[UserPlan | None, Exception | None]]:
        """Publish, pipeline, realign, retry misses — the batched core."""
        pool = self._pool
        store = self._store
        assert pool is not None and store is not None
        tasks = [(seq, store.publish(graph)) for seq, graph in enumerate(graphs)]
        outcomes: list[tuple[str, object] | None] = [None] * len(tasks)
        for seq, status, payload in pool.imap_unordered(
            _plan_task, tasks, chunksize=_chunksize(len(tasks), self._pool_workers)
        ):
            outcomes[seq] = (status, payload)
        for seq, outcome in enumerate(outcomes):
            if outcome is not None and outcome[0] == "miss":
                # The segment was evicted between publish and execution;
                # an inline payload cannot go missing.
                retry = (seq, store.inline_ref(graphs[seq]))
                _, status, payload = pool.apply(_plan_task, (retry,))
                outcomes[seq] = (status, payload)
        settled: list[tuple[UserPlan | None, Exception | None]] = []
        for seq, outcome in enumerate(outcomes):
            if outcome is None:  # pragma: no cover - imap yields every seq
                settled.append((None, RuntimeError(f"no result for task {seq}")))
                continue
            status, payload = outcome
            if status == "ok" and isinstance(payload, UserPlan):
                settled.append((payload, None))
            elif isinstance(payload, Exception):
                settled.append((None, payload))
            else:  # pragma: no cover - defensive against protocol drift
                settled.append(
                    (None, RuntimeError(f"unexpected worker outcome {status!r}"))
                )
        return settled


__all__ = [
    "EXECUTOR_MODES",
    "PlanningBackend",
    "collect_warm_state",
    "planner_fiedler_solver",
    "process_pool_supported",
]
