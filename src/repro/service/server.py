"""The plan service: worker pool, shedding, validation, timeout/retry.

:class:`PlanService` turns an :class:`~repro.core.planner.OffloadingPlanner`
into a long-lived request processor:

* callers ``submit`` call graphs and receive :class:`PlanTicket` handles;
* a thread pool drains the request queue in batches; within and across
  batches, identical apps (by content fingerprint) are planned once
  (single-flight) and served from the LRU plan cache afterwards;
* the queue depth is bounded — overflow requests are *shed* with a
  structured :class:`ServiceError` rather than queued without limit;
* graphs failing :func:`repro.graphs.validation.check_graph_invariants`
  come back as structured ``invalid-graph`` errors instead of killing a
  worker thread;
* a planner crash is retried once (transient faults: the spectral solver
  is iterative); the second failure returns an ``internal`` error.

Everything observable is recorded in a :class:`MetricsRegistry` —
request latency, per-stage planner time, queue depth, hit rate, shed and
error counts — rendered by ``python -m repro serve-bench``.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from repro.callgraph.model import FunctionCallGraph
from repro.core.planner import OffloadingPlanner
from repro.core.results import UserPlan
from repro.graphs.validation import check_graph_invariants
from repro.service.batching import Flight, PlanRequest, QueueFullError, RequestQueue
from repro.service.executor import EXECUTOR_MODES, PlanningBackend
from repro.service.fingerprint import request_fingerprint
from repro.service.metrics import MetricsRegistry
from repro.service.plan_cache import PlanCache


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving layer (planning knobs live in PlannerConfig)."""

    workers: int = 2
    """Worker threads draining the queue.  With the default ``thread``
    executor planning runs inline on these threads (pure Python, so the
    GIL caps speed-up; the pool's job is isolation and batching); with
    ``executor="process"`` they dispatch planning to the process pool."""

    executor: str = "thread"
    """Where planning runs: ``"thread"`` (inline on the worker thread)
    or ``"process"`` (a multiprocessing pool of ``workers`` processes,
    so throughput scales with cores).  Plans are identical either way —
    planning is deterministic."""

    max_queue_depth: int = 128
    """Bound on unresolved *distinct* flights; beyond it, load-shed."""

    max_batch: int = 16
    """Flights a worker drains per wakeup; identical apps inside one
    batch were already coalesced at submission."""

    request_timeout: float = 30.0
    """Default seconds a caller waits in :meth:`PlanTicket.result`."""

    retries: int = 1
    """Extra planner attempts after a crash before giving up."""

    cache_capacity: int = 256
    """LRU plan-cache entries."""

    spill_path: str | None = None
    """Optional JSON file: loaded on start, written on close, so caches
    survive restarts."""

    validate_graphs: bool = True
    """Run structural invariant checks before planning."""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.executor not in EXECUTOR_MODES:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTOR_MODES}"
            )


@dataclass(frozen=True)
class ServiceError:
    """Structured request failure (the service never raises at callers)."""

    code: str
    """One of ``shed``, ``invalid-graph``, ``timeout``, ``internal``,
    ``closed``."""

    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.code}] {self.message}"


@dataclass
class PlanResponse:
    """Outcome of one plan request."""

    request_id: int
    key: str
    plan: UserPlan | None = None
    error: ServiceError | None = None
    cached: bool = False
    """Whether the plan came from the LRU cache (coalesced single-flight
    followers of a cold plan report ``cached=False`` — the plan was
    computed for their flight)."""

    latency_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None and self.plan is not None


class PlanTicket:
    """Caller-side handle for a submitted request."""

    def __init__(self, request: PlanRequest, flight: Flight, service: "PlanService") -> None:
        self._request = request
        self._flight = flight
        self._service = service
        self._response: PlanResponse | None = None

    @property
    def request_id(self) -> int:
        return self._request.request_id

    @property
    def key(self) -> str:
        return self._request.key

    @property
    def done(self) -> bool:
        """Whether the flight has settled (poll without blocking)."""
        return self._flight.done

    def result(self, timeout: float | None = None) -> PlanResponse:
        """Wait for the outcome (default timeout from the service config).

        A timeout produces a structured ``timeout`` error response; the
        flight keeps running and later callers of the same fingerprint
        can still hit its cached result.  The first settled outcome is
        memoized so repeated calls neither re-wait nor re-count metrics.
        """
        if self._response is not None:
            return self._response
        if timeout is None:
            timeout = self._service.config.request_timeout
        shared = self._flight.wait(timeout)
        if shared is None:
            self._service.metrics.counter("requests_timeout").inc()
            return PlanResponse(
                request_id=self._request.request_id,
                key=self._request.key,
                error=ServiceError("timeout", f"no plan within {timeout:.3f}s"),
                latency_seconds=time.perf_counter() - self._request.submitted_at,
            )
        self._response = self._service._individualize(self._request, shared)
        return self._response


class _ShedFlight(Flight):
    """A pre-resolved flight used for refused (shed/closed) requests."""

    def __init__(self, key: str, response: PlanResponse) -> None:
        super().__init__(key)
        self.resolve(response)


class PlanService:
    """Long-lived plan-serving front-end over an :class:`OffloadingPlanner`.

    Use as a context manager (or call :meth:`start` / :meth:`close`)::

        with PlanService(make_planner("spectral")) as service:
            ticket = service.submit(call_graph)
            response = ticket.result()
    """

    def __init__(
        self,
        planner: OffloadingPlanner,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        cache: PlanCache | None = None,
    ) -> None:
        self.planner = planner
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        self.cache = cache or PlanCache(
            capacity=self.config.cache_capacity, spill_path=self.config.spill_path
        )
        self.queue = RequestQueue(max_depth=self.config.max_queue_depth)
        self.backend = PlanningBackend(
            executor=self.config.executor,
            strategy_name=planner.strategy_name,
            config=planner.config,
            processes=self.config.workers,
            warm_source=planner,
        )
        self._threads: list[threading.Thread] = []
        self._started = False
        self._closed = False
        self._invocations = 0
        self._invocation_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PlanService":
        """Load any spilled cache and launch the worker pool (idempotent)."""
        if self._started:
            return self
        if self.config.spill_path is not None:
            loaded = self.cache.load()
            if loaded:
                self.metrics.counter("cache_entries_loaded").inc(loaded)
        # The process pool (if any) must fork before the worker threads
        # start: forking a multi-threaded process risks inheriting locks
        # in undefined states.
        self.backend.start()
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"plan-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        self.metrics.gauge("worker_pool_size").set(self.config.workers)
        self._started = True
        return self

    def close(self) -> None:
        """Drain-free shutdown: refuse new work, join workers, spill cache."""
        if self._closed:
            return
        self._closed = True
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self.backend.close()
        if self.config.spill_path is not None:
            self.cache.save()

    def __enter__(self) -> "PlanService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, graph: FunctionCallGraph) -> PlanTicket:
        """Enqueue a plan request for *graph*; never raises for load.

        Overflow (bounded queue) and post-close submissions resolve
        immediately to structured ``shed``/``closed`` error responses.
        """
        if not self._started:
            self.start()
        now = time.perf_counter()
        key = self._key_for(graph)
        request = PlanRequest(graph=graph, key=key, submitted_at=now)
        self.metrics.counter("requests_total").inc()

        if self._closed:
            return self._refused(request, ServiceError("closed", "service is shut down"))
        try:
            flight, created = self.queue.submit(request)
        except QueueFullError as exc:
            self.metrics.counter("requests_shed").inc()
            return self._refused(request, ServiceError("shed", str(exc)))
        except RuntimeError as exc:  # closed between the check and submit
            return self._refused(request, ServiceError("closed", str(exc)))
        if not created:
            self.metrics.counter("requests_coalesced").inc()
        self.metrics.gauge("queue_depth").set(self.queue.depth)
        return PlanTicket(request, flight, self)

    def plan(self, graph: FunctionCallGraph, timeout: float | None = None) -> PlanResponse:
        """Submit and wait — the synchronous convenience path."""
        return self.submit(graph).result(timeout)

    def _refused(self, request: PlanRequest, error: ServiceError) -> PlanTicket:
        response = PlanResponse(request_id=request.request_id, key=request.key, error=error)
        return PlanTicket(request, _ShedFlight(request.key, response), self)

    def _key_for(self, graph: FunctionCallGraph) -> str:
        return request_fingerprint(graph, self.planner.config, self.planner.strategy_name)

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.next_batch(max_batch=self.config.max_batch, timeout=0.5)
            if not batch:
                if self.queue.closed:
                    return
                continue
            self.metrics.histogram("batch_size").observe(len(batch))
            if self.backend.pooled and len(batch) > 1:
                self._serve_batch(batch)
            else:
                for flight in batch:
                    self._serve_flight(flight)
            self.metrics.gauge("queue_depth").set(self.queue.depth)

    def _serve_flight(self, flight: Flight) -> None:
        """Plan one flight; every failure mode becomes a structured result."""
        started = time.perf_counter()
        error: ServiceError | None = None
        plan = self.cache.get(flight.key)
        cached = plan is not None
        if plan is None:
            plan, error = self._plan_guarded(flight.requests[0].graph)
        self._finish_flight(flight, plan, error, cached, started)

    def _serve_batch(self, batch: list[Flight]) -> None:
        """Plan a drained batch through the pooled backend in one pipeline.

        Cache hits and invalid graphs settle immediately; the remaining
        cold flights ship as a single sequence-numbered batch, so one
        IPC pipeline carries the whole drain instead of one round-trip
        per flight.  A per-graph batch failure falls back to the guarded
        single-plan path, which owns the retry budget (the batch attempt
        counts as the first try).  Thread-mode never reaches here: a
        batch barrier would delay early flights for no throughput gain.
        """
        started = time.perf_counter()
        cold: list[Flight] = []
        for flight in batch:
            plan = self.cache.get(flight.key)
            if plan is not None:
                self._finish_flight(flight, plan, None, True, started)
                continue
            invalid = self._validate(flight.requests[0].graph)
            if invalid is not None:
                self._finish_flight(flight, None, invalid, False, started)
                continue
            cold.append(flight)
        if not cold:
            return
        if len(cold) == 1:
            flight = cold[0]
            plan, error = self._plan_guarded(flight.requests[0].graph, validated=True)
            self._finish_flight(flight, plan, error, False, started)
            return
        graphs = [flight.requests[0].graph for flight in cold]
        with self._invocation_lock:
            self._invocations += len(graphs)
        settled = self.backend.plan_many_settled(self.planner, graphs)
        for flight, (plan, exc) in zip(cold, settled):
            error = None
            if plan is None:
                if self.config.retries > 0:
                    self.metrics.counter("planner_retries").inc()
                    plan, error = self._plan_guarded(
                        flight.requests[0].graph, validated=True, attempts_used=1
                    )
                else:
                    error = ServiceError(
                        "internal", f"{type(exc).__name__}: {exc}" if exc else "planner failed"
                    )
            self._finish_flight(flight, plan, error, False, started)

    def _finish_flight(
        self,
        flight: Flight,
        plan: UserPlan | None,
        error: ServiceError | None,
        cached: bool,
        started: float,
    ) -> None:
        """Publish one flight's outcome: cache, metrics, resolve, dequeue."""
        if plan is not None and not cached:
            self.cache.put(flight.key, plan)
        if error is not None:
            self.metrics.counter("requests_errored").inc()
            self.metrics.counter(f"errors_{error.code}").inc()
        if plan is not None:
            for stage, seconds in plan.stage_seconds.items():
                self.metrics.histogram(f"stage_{stage}_seconds").observe(seconds)
        self.metrics.histogram("service_seconds").observe(time.perf_counter() - started)
        flight.resolve(
            PlanResponse(
                request_id=flight.requests[0].request_id,
                key=flight.key,
                plan=plan,
                error=error,
                cached=cached,
            )
        )
        self.queue.mark_resolved(flight)

    def _validate(self, graph: FunctionCallGraph) -> ServiceError | None:
        """Structural invariant check, as a structured error."""
        if not self.config.validate_graphs:
            return None
        try:
            check_graph_invariants(graph.graph)
        except AssertionError as exc:
            self.metrics.counter("requests_shed").inc()
            return ServiceError("invalid-graph", str(exc))
        return None

    def _plan_guarded(
        self,
        graph: FunctionCallGraph,
        validated: bool = False,
        attempts_used: int = 0,
    ) -> tuple[UserPlan | None, ServiceError | None]:
        if not validated:
            invalid = self._validate(graph)
            if invalid is not None:
                return None, invalid
        attempts = max(1, 1 + self.config.retries - attempts_used)
        last_error = "planner failed"
        for attempt in range(attempts):
            try:
                with self._invocation_lock:
                    self._invocations += 1
                return self.backend.plan(self.planner, graph), None
            except Exception as exc:  # noqa: BLE001 - worker must not die
                last_error = f"{type(exc).__name__}: {exc}"
                if attempt + 1 < attempts:
                    self.metrics.counter("planner_retries").inc()
        return None, ServiceError("internal", last_error)

    def _individualize(self, request: PlanRequest, shared: PlanResponse) -> PlanResponse:
        """Stamp the shared flight outcome with this request's identity."""
        latency = time.perf_counter() - request.submitted_at
        self.metrics.histogram("request_latency_seconds").observe(latency)
        if shared.ok:
            self.metrics.counter("requests_ok").inc()
        return PlanResponse(
            request_id=request.request_id,
            key=request.key,
            plan=shared.plan,
            error=shared.error,
            cached=shared.cached,
            latency_seconds=latency,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def planner_invocations(self) -> int:
        """How many times the underlying planner actually ran."""
        with self._invocation_lock:
            return self._invocations

    def metrics_report(self) -> str:
        """The plain-text metrics report plus cache summary lines."""
        stats = self.cache.stats()
        lines = [
            self.metrics.render_report(),
            "",
            (
                f"plan cache: {stats.size}/{stats.capacity} entries, "
                f"hit rate {stats.hit_rate:.3f} "
                f"({stats.hits} hits / {stats.misses} misses, "
                f"{stats.evictions} evictions)"
            ),
            f"planner invocations: {self.planner_invocations}",
        ]
        return "\n".join(lines)
