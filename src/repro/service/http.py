"""Asyncio HTTP frontend over :class:`~repro.service.server.PlanService`.

A deliberately small HTTP/1.1 server on :func:`asyncio.start_server` —
no web framework required — exposing the plan service over four routes:

* ``POST /plan``     — submit a call graph and wait for the plan;
* ``POST /submit``   — submit and return a ticket (``request_id``)
  immediately;
* ``GET /result/<request_id>`` — poll a ticket (``202`` while pending);
* ``GET /metrics`` / ``GET /healthz`` — observability endpoints.

Request and response bodies are JSON.  A call graph is::

    {"app_name": "demo",
     "functions": [{"name": "main", "computation": 1.0,
                    "component": "main", "offloadable": false}, ...],
     "data_flows": [["main", "fft", 10.0], ...]}

The asyncio loop only parses requests and shuttles bytes; the blocking
waits (``PlanTicket.result``) run on the loop's default thread-pool
executor, so slow plans never stall other connections.  When FastAPI is
installed, :func:`make_fastapi_app` builds an equivalent ASGI app over
the same service; it is entirely optional and nothing here imports it.
"""

from __future__ import annotations

import asyncio
import json
import threading
from collections import OrderedDict
from typing import Any

from repro.callgraph.model import FunctionCallGraph
from repro.service.plan_cache import plan_digest, plan_to_dict
from repro.service.server import PlanResponse, PlanService, PlanTicket

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_TICKETS = 1024
_JSON = "application/json"


class PayloadError(ValueError):
    """A request body that does not describe a valid call graph."""


def parse_graph_payload(payload: Any) -> FunctionCallGraph:
    """Build a :class:`FunctionCallGraph` from a decoded JSON payload.

    Raises :class:`PayloadError` with a caller-actionable message on any
    shape problem; the frontend maps that to a 400 response.
    """
    if not isinstance(payload, dict):
        raise PayloadError("request body must be a JSON object")
    app_name = payload.get("app_name", "app")
    if not isinstance(app_name, str):
        raise PayloadError("app_name must be a string")
    functions = payload.get("functions")
    if not isinstance(functions, list) or not functions:
        raise PayloadError("functions must be a non-empty list")
    graph = FunctionCallGraph(app_name)
    for entry in functions:
        if not isinstance(entry, dict):
            raise PayloadError("each function must be an object")
        name = entry.get("name")
        computation = entry.get("computation")
        if not isinstance(name, str) or not name:
            raise PayloadError("function name must be a non-empty string")
        if not isinstance(computation, (int, float)) or isinstance(computation, bool):
            raise PayloadError(f"function {name!r} needs a numeric computation")
        component = entry.get("component", "main")
        offloadable = entry.get("offloadable", True)
        if not isinstance(component, str):
            raise PayloadError(f"function {name!r} component must be a string")
        if not isinstance(offloadable, bool):
            raise PayloadError(f"function {name!r} offloadable must be a boolean")
        if graph.graph.has_node(name):
            raise PayloadError(f"duplicate function {name!r}")
        graph.add_function(
            name, computation=float(computation), component=component, offloadable=offloadable
        )
    flows = payload.get("data_flows", [])
    if not isinstance(flows, list):
        raise PayloadError("data_flows must be a list")
    for flow in flows:
        if not isinstance(flow, list) or len(flow) != 3:
            raise PayloadError("each data flow must be [u, v, amount]")
        u, v, amount = flow
        if not isinstance(u, str) or not isinstance(v, str):
            raise PayloadError("data flow endpoints must be function names")
        if not isinstance(amount, (int, float)) or isinstance(amount, bool):
            raise PayloadError(f"data flow {u!r}-{v!r} needs a numeric amount")
        if not graph.graph.has_node(u) or not graph.graph.has_node(v):
            raise PayloadError(f"data flow {u!r}-{v!r} references unknown functions")
        graph.add_data_flow(u, v, float(amount))
    return graph


def graph_to_payload(call_graph: FunctionCallGraph) -> dict[str, Any]:
    """JSON-ready inverse of :func:`parse_graph_payload`.

    ``parse_graph_payload(graph_to_payload(g))`` rebuilds a graph with
    the same content fingerprint as ``g`` — clients (and the soak
    benchmark) use this to drive the HTTP frontend with generated
    workloads.
    """
    return {
        "app_name": call_graph.app_name,
        "functions": [
            {
                "name": name,
                "computation": call_graph.info(name).computation,
                "component": call_graph.info(name).component,
                "offloadable": call_graph.info(name).offloadable,
            }
            for name in call_graph.functions()
        ],
        "data_flows": [[u, v, weight] for u, v, weight in call_graph.graph.edges()],
    }


def response_to_dict(response: PlanResponse) -> dict[str, Any]:
    """JSON-ready view of a :class:`PlanResponse` (plan digested inline)."""
    body: dict[str, Any] = {
        "request_id": response.request_id,
        "key": response.key,
        "ok": response.ok,
        "cached": response.cached,
        "latency_seconds": response.latency_seconds,
    }
    if response.error is not None:
        body["error"] = {"code": response.error.code, "message": response.error.message}
    if response.plan is not None:
        body["plan"] = plan_to_dict(response.plan)
        body["plan_digest"] = plan_digest(response.plan)
    return body


class HttpFrontend:
    """Serve a :class:`PlanService` over HTTP/1.1 (one asyncio loop).

    The frontend does not own the service: callers start/close the
    service themselves, which keeps one service shareable between the
    HTTP surface and in-process submitters.  ``port=0`` binds an
    ephemeral port — read :attr:`port` after :meth:`start`.
    """

    def __init__(
        self, service: PlanService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self.host = host
        self._requested_port = port
        self._server: asyncio.Server | None = None
        # Loop-confined: only handler coroutines touch the ticket table,
        # and they all run on the one event loop — no lock needed (and a
        # lock here would be a blocking wait on the loop thread).
        self._tickets: OrderedDict[int, PlanTicket] = OrderedDict()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (valid once started)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("frontend is not started")
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        """Bind the listening socket on the running event loop."""
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self._requested_port
        )

    async def serve_forever(self) -> None:
        """Serve until cancelled (``start`` must have run)."""
        if self._server is None:
            raise RuntimeError("frontend is not started")
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting connections and close the listening socket."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._handle_one(reader)
        except Exception as exc:  # Defensive: a handler bug must produce a
            # 500 response (recorded below), never a hung connection.
            status, content_type, body = 500, _JSON, _error_body(
                "internal", f"unhandled error: {exc}"
            )
            # repro: allow[asyncsafety/blocking-call] counter micro-lock is uncontended and sub-microsecond
            self.service.metrics.counter("http_internal_errors").inc()
        try:
            writer.write(_render_response(status, content_type, body))
            await writer.drain()
            writer.close()
            await writer.wait_closed()
        except ConnectionError:
            # Client went away mid-response; nothing left to deliver.
            self.service.metrics.counter("http_client_disconnects").inc()

    async def _handle_one(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, str, bytes]:
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return 400, _JSON, _error_body("bad-request", "unreadable request")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, _JSON, _error_body("bad-request", "malformed request line")
        method, path = parts[0].upper(), parts[1]

        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, _JSON, _error_body("bad-request", "bad content-length")
        if content_length < 0 or content_length > _MAX_BODY_BYTES:
            return 413, _JSON, _error_body("too-large", "request body too large")
        body = await reader.readexactly(content_length) if content_length else b""

        if method == "GET" and path == "/healthz":
            return 200, _JSON, json.dumps({"status": "ok"}).encode()
        if method == "GET" and path == "/metrics":
            # metrics_report snapshots every series under the registry
            # lock — off-loop, like any other potentially-contended wait.
            loop = asyncio.get_running_loop()
            report = await loop.run_in_executor(None, self.service.metrics_report)
            return 200, "text/plain; charset=utf-8", report.encode()
        if method == "POST" and path == "/plan":
            return await self._route_plan(body, wait=True)
        if method == "POST" and path == "/submit":
            return await self._route_plan(body, wait=False)
        if method == "GET" and path.startswith("/result/"):
            return await self._route_result(path[len("/result/") :])
        return 404, _JSON, _error_body("not-found", f"no route for {method} {path}")

    async def _route_plan(self, body: bytes, wait: bool) -> tuple[int, str, bytes]:
        try:
            payload = json.loads(body.decode("utf-8"))
            graph = parse_graph_payload(payload)
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return 400, _JSON, _error_body("bad-json", f"invalid JSON body: {exc}")
        except PayloadError as exc:
            return 400, _JSON, _error_body("invalid-graph", str(exc))
        # submit() takes the queue condition and metrics locks; under a
        # slow or contended planner that wait must not stall the loop.
        loop = asyncio.get_running_loop()
        ticket = await loop.run_in_executor(None, self.service.submit, graph)
        if not wait:
            self._tickets[ticket.request_id] = ticket
            while len(self._tickets) > _MAX_TICKETS:
                self._tickets.popitem(last=False)
            accepted = {"request_id": ticket.request_id, "key": ticket.key}
            return 202, _JSON, json.dumps(accepted).encode()
        response = await loop.run_in_executor(None, ticket.result)
        return _status_for(response), _JSON, json.dumps(response_to_dict(response)).encode()

    async def _route_result(self, raw_id: str) -> tuple[int, str, bytes]:
        try:
            request_id = int(raw_id)
        except ValueError:
            return 400, _JSON, _error_body("bad-request", f"bad request id {raw_id!r}")
        ticket = self._tickets.get(request_id)
        if ticket is None:
            return 404, _JSON, _error_body("unknown-ticket", f"no ticket {request_id}")
        if not ticket.done:
            pending = {"request_id": request_id, "done": False}
            return 202, _JSON, json.dumps(pending).encode()
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(None, ticket.result)
        return _status_for(response), _JSON, json.dumps(response_to_dict(response)).encode()


def _status_for(response: PlanResponse) -> int:
    if response.ok:
        return 200
    code = response.error.code if response.error is not None else "internal"
    return {
        "invalid-graph": 400,
        "shed": 429,
        "timeout": 504,
        "closed": 503,
    }.get(code, 500)


def _error_body(code: str, message: str) -> bytes:
    return json.dumps({"error": {"code": code, "message": message}}).encode()


_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _render_response(status: int, content_type: str, body: bytes) -> bytes:
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


class HttpFrontendThread:
    """Run an :class:`HttpFrontend` on a dedicated event-loop thread.

    The synchronous shape the CLI and tests want: construct, call
    :meth:`start` (returns the bound port), talk HTTP, call :meth:`close`.
    """

    def __init__(
        self, service: PlanService, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.frontend = HttpFrontend(service, host=host, port=port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: Exception | None = None

    def start(self, timeout: float = 10.0) -> int:
        """Start the loop thread and return the bound port."""
        self._thread = threading.Thread(
            target=self._run, name="plan-http-frontend", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout):
            raise RuntimeError("HTTP frontend failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError("HTTP frontend failed to bind") from self._startup_error
        return self.frontend.port

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            try:
                loop.run_until_complete(self.frontend.start())
            except (OSError, ValueError) as exc:
                # Bind/odd-host failures must unblock and re-raise in
                # start(), not die silently on the daemon thread.
                self._startup_error = exc
                return
            finally:
                self._started.set()
            loop.run_forever()
            loop.run_until_complete(self.frontend.aclose())
        finally:
            loop.close()

    def join(self, timeout: float | None = None) -> None:
        """Block until the serving thread exits (Ctrl-C friendly)."""
        thread = self._thread
        if thread is not None:
            thread.join(timeout)

    def close(self, timeout: float = 10.0) -> None:
        """Stop serving and join the loop thread (idempotent)."""
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            return
        if thread.is_alive():
            loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout)
        self._loop = None
        self._thread = None

    def __enter__(self) -> "HttpFrontendThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def make_fastapi_app(service: PlanService) -> Any:
    """Build a FastAPI app over *service* (optional dependency).

    Raises :class:`RuntimeError` when FastAPI is not installed; the
    stdlib :class:`HttpFrontend` is the always-available surface and the
    two expose the same routes and payloads.
    """
    try:
        from fastapi import FastAPI, Request, Response
    except ImportError as exc:  # pragma: no cover - fastapi optional
        raise RuntimeError(
            "fastapi is not installed; use HttpFrontend (stdlib) instead"
        ) from exc

    app = FastAPI(title="repro plan service")  # pragma: no cover - fastapi optional

    @app.get("/healthz")  # pragma: no cover - fastapi optional
    async def healthz() -> dict[str, str]:
        return {"status": "ok"}

    @app.get("/metrics")  # pragma: no cover - fastapi optional
    async def metrics() -> Response:
        return Response(content=service.metrics_report(), media_type="text/plain")

    @app.post("/plan")  # pragma: no cover - fastapi optional
    async def plan(request: Request) -> Response:
        try:
            graph = parse_graph_payload(await request.json())
        except PayloadError as exc:
            return Response(
                content=_error_body("invalid-graph", str(exc)),
                media_type=_JSON,
                status_code=400,
            )
        ticket = service.submit(graph)
        loop = asyncio.get_running_loop()
        response = await loop.run_in_executor(None, ticket.result)
        return Response(
            content=json.dumps(response_to_dict(response)),
            media_type=_JSON,
            status_code=_status_for(response),
        )

    return app  # pragma: no cover - fastapi optional


__all__ = [
    "HttpFrontend",
    "HttpFrontendThread",
    "PayloadError",
    "graph_to_payload",
    "make_fastapi_app",
    "parse_graph_payload",
    "response_to_dict",
]
