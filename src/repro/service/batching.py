"""Request queue with single-flight coalescing and batch draining.

Identical plan requests are the common case at the edge (a handful of
popular apps, millions of users), so the queue groups requests into
*flights* keyed by their content fingerprint: however many requests name
the same fingerprint, at most one flight is ever pending or being
planned, and every attached request receives the one shared outcome.
A flight stays coalescable from submission until the worker resolves it
— a request arriving while "its" plan is already being computed attaches
to the in-progress flight rather than enqueueing new work.

The queue is *bounded by flight count*: distinct fingerprints beyond
``max_depth`` are refused with :class:`QueueFullError`, which the
service turns into a load-shed response.  Attaching to an existing
flight never sheds (it adds no work).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.callgraph.model import FunctionCallGraph

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.service.server import PlanResponse


class QueueFullError(RuntimeError):
    """Raised when a new flight would exceed the queue's bounded depth."""


_request_ids = itertools.count(1)


@dataclass
class PlanRequest:
    """One caller's plan request (identity + payload)."""

    graph: FunctionCallGraph
    key: str
    """Content fingerprint of (graph, config, strategy)."""

    request_id: int = field(default_factory=lambda: next(_request_ids))
    submitted_at: float = 0.0


class Flight:
    """All in-flight requests sharing one fingerprint, plus their outcome."""

    def __init__(self, key: str) -> None:
        self.key = key
        self.requests: list[PlanRequest] = []
        self._done = threading.Event()
        self._response: "PlanResponse | None" = None

    def attach(self, request: PlanRequest) -> None:
        self.requests.append(request)

    def resolve(self, response: "PlanResponse") -> None:
        """Publish the shared outcome and wake every waiter."""
        self._response = response
        self._done.set()

    def wait(self, timeout: float | None = None) -> "PlanResponse | None":
        """Block until resolved; ``None`` on timeout."""
        if not self._done.wait(timeout):
            return None
        return self._response

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def response(self) -> "PlanResponse | None":
        return self._response


class RequestQueue:
    """Bounded FIFO of flights with single-flight dedup.

    ``submit`` coalesces; ``next_batch`` hands workers up to
    ``max_batch`` *distinct* flights at a time.  ``close`` wakes blocked
    workers so the pool can drain and exit.
    """

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._pending: list[Flight] = []
        self._in_flight: dict[str, Flight] = {}
        self._cond = threading.Condition()
        self._closed = False

    def submit(self, request: PlanRequest) -> tuple[Flight, bool]:
        """Enqueue *request*; returns ``(flight, created)``.

        ``created`` is False when the request piggybacked on an existing
        flight (the single-flight path).  Raises :class:`QueueFullError`
        when a new flight is needed but ``max_depth`` flights are
        already unresolved, and ``RuntimeError`` after :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("queue is closed")
            flight = self._in_flight.get(request.key)
            if flight is not None:
                flight.attach(request)
                return flight, False
            if len(self._in_flight) >= self.max_depth:
                raise QueueFullError(
                    f"queue depth {self.max_depth} exceeded ({len(self._in_flight)} in flight)"
                )
            flight = Flight(request.key)
            flight.attach(request)
            self._in_flight[request.key] = flight
            self._pending.append(flight)
            self._cond.notify()
            return flight, True

    def next_batch(self, max_batch: int = 8, timeout: float | None = None) -> list[Flight]:
        """Pop up to *max_batch* pending flights, blocking for the first.

        Returns an empty list when the queue is closed (or the timeout
        expires) with nothing pending — the worker-pool exit signal.
        """
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        with self._cond:
            while not self._pending and not self._closed:
                if not self._cond.wait(timeout):
                    return []
            batch = self._pending[:max_batch]
            del self._pending[: len(batch)]
            return batch

    def mark_resolved(self, flight: Flight) -> None:
        """Drop *flight* from the dedup map (call after ``resolve``)."""
        with self._cond:
            self._in_flight.pop(flight.key, None)

    @property
    def depth(self) -> int:
        """Number of unresolved flights (pending + being planned)."""
        with self._cond:
            return len(self._in_flight)

    @property
    def pending(self) -> int:
        """Number of flights not yet picked up by a worker."""
        with self._cond:
            return len(self._pending)

    def close(self) -> None:
        """Refuse new submissions and wake every blocked worker."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed


def group_batch(flights: list[Flight]) -> dict[str, list[Flight]]:
    """Group a drained batch by fingerprint (defensive: submit-side dedup
    already guarantees one flight per key, so groups are singletons, but
    workers treat the batch as untrusted input)."""
    groups: dict[str, list[Flight]] = {}
    for flight in flights:
        groups.setdefault(flight.key, []).append(flight)
    return groups


__all__ = [
    "PlanRequest",
    "Flight",
    "RequestQueue",
    "QueueFullError",
    "group_batch",
]
