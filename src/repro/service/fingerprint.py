"""Content-addressed identity for plan requests.

``plan_system`` historically cached per call-graph *object identity*,
which fails exactly in the realistic serving scenario: millions of users
running the same application submit structurally identical graphs as
distinct objects.  This module gives every (graph, config) pair a stable
name, at two tiers:

* :func:`graph_fingerprint` — the **content** fingerprint: a SHA-256
  over the canonically sorted functions and data flows.  Invariant under
  node *insertion order* and across processes, sensitive to names,
  weights, components and offloadability.  This is the cache key: two
  graphs with the same content fingerprint produce byte-identical plans,
  so one may safely answer for the other.
* :func:`structural_fingerprint` — the **structural** fingerprint: a
  Weisfeiler–Leman colour-refinement hash that is additionally invariant
  under node *relabelling* (isomorphic graphs hash equal).  Plans name
  concrete functions, so relabelled graphs cannot share cache entries —
  but the structural tier lets the service report how many genuinely
  distinct application *shapes* it is seeing, and deduplicates analytics
  across renamed builds of the same app.

Floats are canonicalised through ``repr`` (shortest round-trip form in
CPython >= 3.1), so equal weights hash equal regardless of how they were
computed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from enum import Enum
from typing import Any

from repro.callgraph.model import FunctionCallGraph

_WL_ROUNDS = 3
"""Colour-refinement rounds.  Three rounds separate everything label
propagation or a spectral cut could separate on workload-scale graphs;
the hash only has to *discriminate*, not certify isomorphism."""


class FingerprintError(TypeError):
    """Raised when a config holds an object with no canonical encoding."""


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def _canon_float(value: float) -> str:
    return repr(float(value))


# ----------------------------------------------------------------------
# Graph fingerprints
# ----------------------------------------------------------------------
def graph_fingerprint(call_graph: FunctionCallGraph) -> str:
    """Canonical content hash of *call_graph* (names included).

    Sorting functions by name and edges by their sorted endpoint pair
    makes the hash independent of construction order; including the
    names makes it safe as a plan-cache key (cached parts reference
    function names that exist in every graph sharing the hash).

    >>> a = FunctionCallGraph("x"); _ = a.add_function("f", 1.0)
    >>> b = FunctionCallGraph("x"); _ = b.add_function("f", 1.0)
    >>> graph_fingerprint(a) == graph_fingerprint(b)
    True
    """
    nodes = sorted(
        (
            info.name,
            _canon_float(info.computation),
            info.component,
            "1" if info.offloadable else "0",
        )
        for info in (call_graph.info(name) for name in call_graph.functions())
    )
    edges = sorted(
        (*sorted((str(u), str(v))), _canon_float(w))
        for u, v, w in call_graph.graph.edges()
    )
    return _digest(
        "graph-v1",
        json.dumps(nodes, separators=(",", ":")),
        json.dumps(edges, separators=(",", ":")),
    )


def structural_fingerprint(call_graph: FunctionCallGraph) -> str:
    """Relabelling-invariant hash of *call_graph*'s weighted structure.

    Weisfeiler–Leman colour refinement: every node starts with a colour
    derived from its (computation, component, offloadability) triple and
    repeatedly absorbs the sorted multiset of its ``(edge weight,
    neighbour colour)`` pairs.  The final hash combines the sorted node
    colours with the sorted edge signatures, so any bijective renaming
    of the functions leaves it unchanged, while perturbing any weight or
    flag changes it.
    """
    graph = call_graph.graph
    colors: dict[str, str] = {}
    for name in call_graph.functions():
        info = call_graph.info(name)
        colors[name] = _digest(
            "node-v1",
            _canon_float(info.computation),
            info.component,
            "1" if info.offloadable else "0",
        )

    for _ in range(_WL_ROUNDS):
        updated: dict[str, str] = {}
        for name in colors:
            signature = sorted(
                (_canon_float(weight), colors[neighbor])
                for neighbor, weight in graph.neighbor_items(name)
            )
            updated[name] = _digest(
                "refine-v1", colors[name], json.dumps(signature, separators=(",", ":"))
            )
        colors = updated

    edge_signatures = sorted(
        _digest("edge-v1", _canon_float(w), *sorted((colors[u], colors[v])))
        for u, v, w in graph.edges()
    )
    return _digest(
        "struct-v1",
        json.dumps(sorted(colors.values()), separators=(",", ":")),
        json.dumps(edge_signatures, separators=(",", ":")),
    )


# ----------------------------------------------------------------------
# Config fingerprints
# ----------------------------------------------------------------------
def _encode(value: Any) -> Any:
    """Recursively encode a config value as canonical JSON-compatible data.

    Dataclasses carry their class name (two rules with identical fields
    but different semantics must not alias); anything without a known
    canonical form raises :class:`FingerprintError` so callers can fall
    back to identity keying.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return _canon_float(value)
    if isinstance(value, Enum):
        return {"__enum__": type(value).__name__, "value": value.value}
    if is_dataclass(value) and not isinstance(value, type):
        encoded = {"__class__": type(value).__name__}
        for f in fields(value):
            encoded[f.name] = _encode(getattr(value, f.name))
        return encoded
    if isinstance(value, (list, tuple)):
        return [_encode(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(json.dumps(_encode(item), sort_keys=True) for item in value)
    if isinstance(value, dict):
        return {str(k): _encode(v) for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))}
    raise FingerprintError(
        f"cannot canonically encode {type(value).__name__!r} for fingerprinting"
    )


def config_fingerprint(config: Any) -> str:
    """Canonical hash of a planner configuration (any dataclass tree).

    Raises :class:`FingerprintError` when the config embeds an object
    with no canonical encoding (e.g. a bare callable) — callers are
    expected to degrade to identity-based caching in that case.
    """
    return _digest("config-v1", json.dumps(_encode(config), sort_keys=True))


def request_fingerprint(
    call_graph: FunctionCallGraph,
    config: Any = None,
    strategy_name: str = "",
) -> str:
    """The plan-cache key: graph content + config + cut strategy name.

    The cut strategy itself is a callable and cannot be hashed; its
    registered name stands in for it, so two strategies sharing a name
    must behave identically (the ``make_planner`` registry guarantees
    this for the built-ins).
    """
    return _digest(
        "request-v1",
        graph_fingerprint(call_graph),
        config_fingerprint(config) if config is not None else "-",
        strategy_name,
    )
