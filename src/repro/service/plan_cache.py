"""LRU plan cache keyed by content fingerprint, with JSON spill.

The cache stores finished :class:`~repro.core.results.UserPlan` objects.
A plan is pure derived data — everything in it is a function of the
(graph, config) pair the fingerprint names — so sharing one cached plan
across requests, threads and (via :meth:`PlanCache.save` /
:meth:`PlanCache.load`) process restarts is safe by construction.

Counters (hits / misses / evictions) are maintained under the same lock
as the map itself so the service metrics never see torn reads.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Iterator
from typing import Any

from repro.core.results import UserPlan

CACHE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# UserPlan <-> JSON
# ----------------------------------------------------------------------
def plan_to_dict(plan: UserPlan) -> dict[str, Any]:
    """Serialise *plan* deterministically (sets become sorted lists)."""
    return {
        "app_name": plan.app_name,
        "parts": [sorted(part) for part in plan.parts],
        "bisections": [
            [sorted(side_one), sorted(side_two)]
            for side_one, side_two in plan.bisections
        ],
        "compressed_nodes": plan.compressed_nodes,
        "compressed_edges": plan.compressed_edges,
        "original_nodes": plan.original_nodes,
        "original_edges": plan.original_edges,
        "cut_values": list(plan.cut_values),
        "propagation_rounds": plan.propagation_rounds,
        "stage_seconds": dict(plan.stage_seconds),
    }


def plan_digest(plan: UserPlan) -> str:
    """Canonical hash of the plan *content* (timings excluded).

    ``stage_seconds`` is observability metadata — wall-clock noise that
    differs between two otherwise identical plans — so equality of plan
    digests is the right notion of "byte-identical plans" for parity
    checks between cached and cold planning.
    """
    import hashlib

    payload = plan_to_dict(plan)
    del payload["stage_seconds"]
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def plan_from_dict(payload: dict[str, Any]) -> UserPlan:
    """Reconstruct a :class:`UserPlan` written by :func:`plan_to_dict`."""
    return UserPlan(
        app_name=payload["app_name"],
        parts=[frozenset(part) for part in payload["parts"]],
        bisections=[
            (set(side_one), set(side_two))
            for side_one, side_two in payload["bisections"]
        ],
        compressed_nodes=payload["compressed_nodes"],
        compressed_edges=payload["compressed_edges"],
        original_nodes=payload["original_nodes"],
        original_edges=payload["original_edges"],
        cut_values=list(payload.get("cut_values", [])),
        propagation_rounds=payload.get("propagation_rounds", 0),
        stage_seconds=dict(payload.get("stage_seconds", {})),
    )


@dataclass
class CacheStats:
    """Point-in-time cache counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total


class PlanCache:
    """Thread-safe LRU cache of plans keyed by request fingerprint.

    >>> cache = PlanCache(capacity=2)
    >>> cache.put("a", UserPlan("app", [], [], 0, 0, 0, 0))
    >>> cache.get("a") is not None
    True
    >>> cache.get("missing") is None
    True
    """

    def __init__(self, capacity: int = 256, spill_path: str | Path | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.spill_path = Path(spill_path) if spill_path is not None else None
        self._entries: OrderedDict[str, UserPlan] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get(self, key: str) -> UserPlan | None:
        """Return the cached plan for *key* (refreshing LRU order) or None."""
        with self._lock:
            plan = self._entries.get(key)
            if plan is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return plan

    def peek(self, key: str) -> UserPlan | None:
        """Return the cached plan for *key* without touching LRU order
        or hit/miss counters.

        Speculative lookups — SLA feasibility pre-planning asking "is a
        plan already known somewhere?" before the admission proper runs
        — must not distort recency or hit-rate statistics, which model
        *requests*, not probes.
        """
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, plan: UserPlan) -> None:
        """Insert (or refresh) *plan* under *key*, evicting the LRU entry."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = plan
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> Iterator[str]:
        """Snapshot of the cached keys, LRU-first."""
        with self._lock:
            return iter(list(self._entries))

    def clear(self) -> None:
        """Drop every entry (counters are preserved)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        """Consistent snapshot of the counters."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )

    # ------------------------------------------------------------------
    # Spill
    # ------------------------------------------------------------------
    def save(self, path: str | Path | None = None) -> Path:
        """Write the cache contents to *path* (default: the spill path).

        Entries are stored LRU-first so a later :meth:`load` reproduces
        the recency order exactly.
        """
        target = Path(path) if path is not None else self.spill_path
        if target is None:
            raise ValueError("no path given and no spill_path configured")
        with self._lock:
            payload = {
                "version": CACHE_FORMAT_VERSION,
                "capacity": self.capacity,
                "entries": [
                    {"key": key, "plan": plan_to_dict(plan)}
                    for key, plan in self._entries.items()
                ],
            }
        target.write_text(json.dumps(payload, indent=2))
        return target

    def load(self, path: str | Path | None = None) -> int:
        """Merge entries previously written by :meth:`save`; return count.

        A missing file is not an error (a cold service simply starts
        empty); a version mismatch is (silently reinterpreting a stale
        format could serve wrong plans).
        """
        source = Path(path) if path is not None else self.spill_path
        if source is None:
            raise ValueError("no path given and no spill_path configured")
        if not source.exists():
            return 0
        payload = json.loads(source.read_text())
        version = payload.get("version")
        if version != CACHE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported plan-cache version {version!r} "
                f"(expected {CACHE_FORMAT_VERSION})"
            )
        loaded = 0
        with self._lock:
            for entry in payload["entries"]:
                self.put(entry["key"], plan_from_dict(entry["plan"]))
                loaded += 1
        return loaded
