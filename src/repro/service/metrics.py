"""Lightweight service metrics: counters, gauges, histograms, one report.

No external metrics stack is available in the container, and the repo's
plain-text reporting convention (``render_table``) covers the need: the
registry collects numbers under the service's locks and renders one
diffable report at the end of a run.  Histograms keep a bounded sample
window (most recent ``window`` observations) so a long-lived service
cannot grow without bound; percentiles are computed with the
nearest-rank rule over that window.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.forecast.series import TimeSeries


class Counter:
    """Monotonically increasing event count."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0) to the counter."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """Last-write-wins instantaneous value (queue depth, pool size, ...)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, delta: float) -> None:
        """Adjust the gauge by *delta* (for up/down tracking)."""
        with self._lock:
            self._value += float(delta)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bounded-window distribution (latencies, batch sizes, ...)."""

    def __init__(self, name: str, window: int = 4096) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.name = name
        self._samples: deque[float] = deque(maxlen=window)
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        with self._lock:
            self._samples.append(float(value))
            self._count += 1
            self._total += float(value)

    @property
    def count(self) -> int:
        """Total observations ever recorded (not just the window)."""
        return self._count

    @property
    def mean(self) -> float:
        """Mean over *all* observations (exact, not windowed)."""
        with self._lock:
            if self._count == 0:
                return 0.0
            return self._total / self._count

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the current window; 0.0 if empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"percentile must be in [0, 1], got {q}")
        with self._lock:
            if not self._samples:
                return 0.0
            ordered = sorted(self._samples)
            rank = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[rank]


class MetricsRegistry:
    """Named metric factory + plain-text report renderer.

    ``counter``/``gauge``/``histogram`` are get-or-create, so service
    components can reference metrics by name without wiring.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._series: dict[str, "TimeSeries"] = {}
        self._lock = threading.Lock()

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name)
            return self._gauges[name]

    def histogram(self, name: str, window: int = 4096) -> Histogram:
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(name, window=window)
            return self._histograms[name]

    def series(self, name: str, window: int = 512) -> "TimeSeries":
        """Get-or-create a bounded :class:`~repro.forecast.series.TimeSeries`.

        Unlike a histogram, a series keeps *ordered* samples — the raw
        material the fleet's forecasters extrapolate from (see
        :mod:`repro.forecast`).  Imported lazily: the registry must not
        drag the forecast package into every service import.
        """
        from repro.forecast.series import TimeSeries

        with self._lock:
            if name not in self._series:
                self._series[name] = TimeSeries(name, window=window)
            return self._series[name]

    def snapshot(self) -> dict[str, dict[str, float]]:
        """All metric values as plain data (for tests and JSON output)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            series = dict(self._series)
        data: dict[str, dict[str, float]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
            "series": {},
        }
        for name, counter in sorted(counters.items()):
            data["counters"][name] = counter.value
        for name, gauge in sorted(gauges.items()):
            data["gauges"][name] = gauge.value
        for name, hist in sorted(histograms.items()):
            data["histograms"][name] = {
                "count": hist.count,
                "mean": hist.mean,
                "p50": hist.percentile(0.50),
                "p95": hist.percentile(0.95),
                "p99": hist.percentile(0.99),
            }
        for name, one_series in sorted(series.items()):
            values = one_series.values()
            data["series"][name] = {
                "count": one_series.count,
                "window": len(values),
                "last": values[-1] if values else 0.0,
                "mean": sum(values) / len(values) if values else 0.0,
            }
        return data

    def render_report(self) -> str:
        """Render every metric as one plain-text table."""
        from repro.experiments.reporting import render_table

        rows: list[list[object]] = []
        snap = self.snapshot()
        for name, value in snap["counters"].items():
            rows.append([name, "counter", value, "", "", ""])
        for name, value in snap["gauges"].items():
            rows.append([name, "gauge", value, "", "", ""])
        for name, stats in snap["histograms"].items():
            rows.append(
                [
                    name,
                    "histogram",
                    stats["count"],
                    f"{stats['mean']:.6f}",
                    f"{stats['p50']:.6f}",
                    f"{stats['p99']:.6f}",
                ]
            )
        for name, stats in snap["series"].items():
            rows.append(
                [
                    name,
                    "series",
                    stats["count"],
                    f"{stats['mean']:.6f}",
                    f"{stats['last']:.6f}",
                    "",
                ]
            )
        return render_table(["metric", "kind", "count/value", "mean", "p50", "p99"], rows)
