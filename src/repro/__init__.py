"""repro — reproduction of "Computation Offloading for Mobile-Edge
Computing with Multi-user" (Dong et al., ICDCS 2019).

The library implements the paper's complete pipeline — function-level
application modelling, label-propagation graph compression, spectral
minimum-cut offload partitioning, and greedy multi-user scheme generation
— together with every substrate it depends on: a weighted-graph core, a
Soot-substitute static extractor, from-scratch max-flow and Kernighan-Lin
baselines, a MEC energy/time model, a mini-Spark execution engine, and
NETGEN-style workload generation.

Quickstart::

    from repro import make_planner, synthesize_application
    from repro.mec import EdgeServer, MECSystem, MobileDevice, UserContext

    app = synthesize_application("demo", n_functions=40, seed=1)
    user = UserContext(MobileDevice("u1"), app)
    system = MECSystem(EdgeServer(total_capacity=500.0), [user])

    planner = make_planner("spectral")
    result = planner.plan_system(system, {"u1": app})
    print(result.summary())
"""

from repro.core import (
    CutOutcome,
    OffloadingPlanner,
    PlanResult,
    PlannerConfig,
    UserPlan,
    make_planner,
)
from repro.workloads import (
    build_mec_system,
    call_graph_from_weighted_graph,
    netgen_graph,
    paper_network_configs,
    synthesize_application,
)

__version__ = "1.0.0"

__all__ = [
    "OffloadingPlanner",
    "PlannerConfig",
    "PlanResult",
    "UserPlan",
    "CutOutcome",
    "make_planner",
    "synthesize_application",
    "call_graph_from_weighted_graph",
    "netgen_graph",
    "paper_network_configs",
    "build_mec_system",
    "__version__",
]
