"""The local cluster: entry point of the mini-Spark substrate.

A :class:`LocalCluster` owns an executor, counts the tasks and stages it
runs (so tests and benches can assert that work really was distributed),
and hands out :class:`~repro.distributed.rdd.RDD` datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

from repro.distributed.executor import SerialExecutor, TaskExecutor, ThreadedExecutor

T = TypeVar("T")
R = TypeVar("R")


@dataclass
class ClusterStats:
    """Counters describing the work a cluster has executed."""

    stages: int = 0
    tasks: int = 0
    retries: int = 0

    def record_stage(self, task_count: int) -> None:
        """Account one stage of *task_count* tasks."""
        self.stages += 1
        self.tasks += task_count

    def record_retry(self) -> None:
        """Account one re-executed task."""
        self.retries += 1


class LocalCluster:
    """An in-process cluster with a fixed number of workers.

    >>> cluster = LocalCluster(workers=2)
    >>> cluster.parallelize(range(10), partitions=4).map(lambda x: x * x).reduce(lambda a, b: a + b)
    285
    >>> cluster.stats.stages >= 1
    True
    """

    def __init__(
        self,
        workers: int = 2,
        executor: TaskExecutor | None = None,
        max_task_retries: int = 0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_task_retries < 0:
            raise ValueError(f"max_task_retries must be >= 0, got {max_task_retries}")
        self.workers = workers
        self.max_task_retries = max_task_retries
        """Spark-style task fault tolerance: a task raising an exception is
        re-executed up to this many times (tasks must therefore be pure,
        exactly like RDD lambdas); 0 disables retries and the first
        failure propagates."""
        if executor is not None:
            self._executor = executor
        elif workers == 1:
            self._executor = SerialExecutor()
        else:
            self._executor = ThreadedExecutor(workers)
        self.stats = ClusterStats()

    def parallelize(self, data: Iterable[T], partitions: int | None = None) -> "RDD[T]":
        """Distribute *data* over the cluster as an RDD."""
        from repro.distributed.rdd import RDD

        items = list(data)
        n_partitions = partitions if partitions is not None else self.workers
        if n_partitions < 1:
            raise ValueError(f"partitions must be >= 1, got {n_partitions}")
        return RDD.from_items(self, items, n_partitions)

    def run_stage(self, tasks: Sequence[Callable[[], R]]) -> list[R]:
        """Execute one stage of independent tasks; results keep order.

        With ``max_task_retries > 0`` each failing task is wrapped and
        retried individually; after the budget is exhausted the last
        exception propagates (the stage fails, like a Spark job abort).
        """
        self.stats.record_stage(len(tasks))
        if self.max_task_retries == 0:
            return self._executor.run_all(tasks)
        return self._executor.run_all([self._with_retries(task) for task in tasks])

    def _with_retries(self, task: Callable[[], R]) -> Callable[[], R]:
        def resilient() -> R:
            attempts = 0
            while True:
                try:
                    return task()
                # Broad by contract: stage tasks are pure closures over
                # immutable partitions, so *any* failure is retryable and
                # must be counted against the retry budget (Spark task
                # fault-tolerance semantics).  Exhausting the budget
                # re-raises the last exception and aborts the stage.
                except Exception:
                    attempts += 1
                    if attempts > self.max_task_retries:
                        raise
                    self.stats.record_retry()

        return resilient

    def close(self) -> None:
        """Shut the cluster down (idempotent)."""
        self._executor.close()

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LocalCluster(workers={self.workers}, stages={self.stats.stages})"
