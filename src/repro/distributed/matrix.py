"""Block-partitioned distributed matrices.

The paper cites Zadeh et al., "Matrix Computations and Optimization in
Apache Spark": the expensive part of their pipeline is distributed
matrix multiplication inside the eigensolver.  :class:`BlockMatrix`
mirrors the row-block layout of Spark MLlib's matrices: the matrix is
split into horizontal bands; a mat-vec multiplies each band against the
vector in its own task.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.cluster import LocalCluster


class BlockMatrix:
    """A dense matrix split into row blocks executed across a cluster."""

    def __init__(self, cluster: LocalCluster, blocks: list[np.ndarray], n_cols: int) -> None:
        if not blocks:
            raise ValueError("a BlockMatrix needs at least one block")
        for block in blocks:
            if block.ndim != 2 or block.shape[1] != n_cols:
                raise ValueError(
                    f"every block must have {n_cols} columns, got shape {block.shape}"
                )
        self._cluster = cluster
        self._blocks = blocks
        self.n_cols = n_cols
        self.n_rows = sum(block.shape[0] for block in blocks)

    @classmethod
    def from_dense(
        cls, cluster: LocalCluster, matrix: np.ndarray, block_rows: int | None = None
    ) -> "BlockMatrix":
        """Partition a dense matrix into ~worker-count row bands."""
        matrix = np.ascontiguousarray(matrix, dtype=float)
        if matrix.ndim != 2:
            raise ValueError(f"matrix must be 2-D, got shape {matrix.shape}")
        n = matrix.shape[0]
        if block_rows is None:
            block_rows = max(1, -(-n // cluster.workers))  # ceil division
        if block_rows < 1:
            raise ValueError(f"block_rows must be >= 1, got {block_rows}")
        blocks = [matrix[start : start + block_rows] for start in range(0, n, block_rows)]
        return cls(cluster, blocks, matrix.shape[1])

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, cols)."""
        return (self.n_rows, self.n_cols)

    @property
    def block_count(self) -> int:
        """Number of row blocks."""
        return len(self._blocks)

    def matvec(self, vector: np.ndarray) -> np.ndarray:
        """Distributed ``A @ x``: one task per row block."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (self.n_cols,):
            raise ValueError(f"vector must have shape ({self.n_cols},), got {vector.shape}")

        def make_task(block: np.ndarray):
            return lambda: block @ vector

        slices = self._cluster.run_stage([make_task(block) for block in self._blocks])
        return np.concatenate(slices)

    def matmul(self, other: np.ndarray) -> np.ndarray:
        """Distributed ``A @ B`` for a dense right factor."""
        other = np.asarray(other, dtype=float)
        if other.ndim != 2 or other.shape[0] != self.n_cols:
            raise ValueError(
                f"right factor must have {self.n_cols} rows, got shape {other.shape}"
            )

        def make_task(block: np.ndarray):
            return lambda: block @ other

        slices = self._cluster.run_stage([make_task(block) for block in self._blocks])
        return np.vstack(slices)

    def to_dense(self) -> np.ndarray:
        """Reassemble the dense matrix (small matrices / tests)."""
        return np.vstack(self._blocks)
