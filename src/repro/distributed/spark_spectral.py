"""The distributed Fiedler solver — Fig. 9's "our algorithm with Spark".

Plugs a cluster-backed block mat-vec into the from-scratch Lanczos solver
of :mod:`repro.spectral.lanczos`: every Lanczos step's ``L @ q`` product
fans out across the cluster's workers as row-band tasks.  This is exactly
the structure of the paper's Spark acceleration — the eigensolver's inner
loop is "lots of matrix multiplications", and those are what get
distributed.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.distributed.cluster import LocalCluster
from repro.distributed.matrix import BlockMatrix
from repro.graphs.laplacian import laplacian_matrix
from repro.graphs.weighted_graph import WeightedGraph
from repro.spectral.fiedler import FiedlerResult
from repro.spectral.lanczos import lanczos_smallest_nontrivial

NodeId = Hashable


class DistributedFiedlerSolver:
    """Fiedler pairs computed with cluster-distributed mat-vecs.

    Drop-in alternative to :class:`repro.spectral.fiedler.FiedlerSolver`
    for the planner's cut stage; the ``method`` tag in results is
    ``"distributed-lanczos"`` so experiment output shows which engine ran.
    """

    def __init__(self, cluster: LocalCluster, tol: float = 1e-10, seed: int = 7) -> None:
        self.cluster = cluster
        self.tol = tol
        self.seed = seed

    def solve(
        self, graph: WeightedGraph, order: Sequence[NodeId] | None = None
    ) -> FiedlerResult:
        """Return the Fiedler pair of *graph* using distributed mat-vecs."""
        if graph.node_count == 0:
            raise ValueError("cannot compute the Fiedler pair of an empty graph")
        node_order = list(order) if order is not None else graph.node_list()
        if graph.node_count == 1:
            return FiedlerResult(0.0, np.zeros(1), node_order, "trivial")

        laplacian = laplacian_matrix(graph, node_order)
        blocks = BlockMatrix.from_dense(self.cluster, laplacian)
        value, vector = lanczos_smallest_nontrivial(
            laplacian, matvec=blocks.matvec, tol=self.tol, seed=self.seed
        )
        return FiedlerResult(value, vector, node_order, "distributed-lanczos")
