"""A miniature Spark-like execution substrate.

The paper accelerates the eigenvalue computation "using Spark framework
which can significantly reduce the computing time" (Fig. 9's fourth
series).  A real Spark cluster is out of scope for a laptop reproduction,
so this package provides the closest working equivalent: an in-process
cluster with named workers, an RDD-style partitioned dataset with lazy
map/filter/reduce, block-partitioned distributed matrices, and a
distributed Fiedler solver whose matrix-vector products fan out across
the workers.  numpy releases the GIL inside BLAS kernels, so the thread
workers deliver genuine parallel speed-up on the matvec-heavy eigen loop.
"""

from repro.distributed.cluster import ClusterStats, LocalCluster
from repro.distributed.executor import SerialExecutor, TaskExecutor, ThreadedExecutor
from repro.distributed.matrix import BlockMatrix
from repro.distributed.rdd import RDD
from repro.distributed.spark_compression import ClusterCompressor
from repro.distributed.spark_spectral import DistributedFiedlerSolver

__all__ = [
    "LocalCluster",
    "ClusterStats",
    "TaskExecutor",
    "SerialExecutor",
    "ThreadedExecutor",
    "RDD",
    "BlockMatrix",
    "ClusterCompressor",
    "DistributedFiedlerSolver",
]
