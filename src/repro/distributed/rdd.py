"""A miniature RDD: lazy, partitioned, immutable datasets.

Supports the subset of the Spark RDD API the reproduction needs —
``map``, ``filter``, ``flat_map``, ``collect``, ``reduce``, ``count``,
``sum`` — with genuine lazy evaluation: transformations compose a
per-partition pipeline that only runs when an action is called, one task
per partition, scheduled through the owning cluster.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from typing import Generic, TypeVar

from repro.distributed.cluster import LocalCluster

T = TypeVar("T")
R = TypeVar("R")


class RDD(Generic[T]):
    """A partitioned dataset bound to a :class:`LocalCluster`."""

    def __init__(
        self,
        cluster: LocalCluster,
        partitions: Sequence[Sequence[object]],
        pipeline: Callable[[list[object]], list[T]],
    ) -> None:
        self._cluster = cluster
        self._partitions = [list(p) for p in partitions]
        self._pipeline = pipeline

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_items(cls, cluster: LocalCluster, items: list[T], n_partitions: int) -> "RDD[T]":
        """Split *items* into contiguous, near-equal partitions."""
        n = len(items)
        n_partitions = max(1, min(n_partitions, n)) if n else 1
        base, extra = divmod(n, n_partitions)
        partitions: list[list[T]] = []
        start = 0
        for i in range(n_partitions):
            size = base + (1 if i < extra else 0)
            partitions.append(items[start : start + size])
            start += size
        return cls(cluster, partitions, lambda partition: list(partition))

    # ------------------------------------------------------------------
    # Transformations (lazy)
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[T], R]) -> "RDD[R]":
        """Element-wise transformation."""
        upstream = self._pipeline
        return RDD(self._cluster, self._partitions, lambda p: [fn(x) for x in upstream(p)])

    def filter(self, predicate: Callable[[T], bool]) -> "RDD[T]":
        """Keep elements satisfying *predicate*."""
        upstream = self._pipeline
        return RDD(
            self._cluster, self._partitions, lambda p: [x for x in upstream(p) if predicate(x)]
        )

    def flat_map(self, fn: Callable[[T], Iterable[R]]) -> "RDD[R]":
        """Element-to-many transformation."""
        upstream = self._pipeline
        return RDD(
            self._cluster,
            self._partitions,
            lambda p: [y for x in upstream(p) for y in fn(x)],
        )

    def map_partitions(self, fn: Callable[[list[T]], Iterable[R]]) -> "RDD[R]":
        """Partition-wise transformation: *fn* sees each whole partition.

        The Spark idiom for amortising per-partition setup (opening a
        connection, building a matrix block) across many elements.
        """
        upstream = self._pipeline
        return RDD(self._cluster, self._partitions, lambda p: list(fn(upstream(p))))

    def glom(self) -> "RDD[list[T]]":
        """Materialise each partition as a single list element."""
        upstream = self._pipeline
        return RDD(self._cluster, self._partitions, lambda p: [upstream(p)])

    # ------------------------------------------------------------------
    # Actions (eager)
    # ------------------------------------------------------------------
    def take(self, count: int) -> list[T]:
        """First *count* elements in partition order.

        Runs partitions one at a time and stops as soon as enough
        elements are available (unlike ``collect``, which always runs
        everything).
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        taken: list[T] = []
        pipeline = self._pipeline
        for partition in self._partitions:
            if len(taken) >= count:
                break
            self._cluster.stats.record_stage(1)
            taken.extend(pipeline(list(partition)))
        return taken[:count]

    def reduce_by_key(
        self: "RDD[tuple[object, R]]", fn: Callable[[R, R], R]
    ) -> dict[object, R]:
        """Combine ``(key, value)`` pairs per key (two-level reduce)."""
        merged: dict[object, R] = {}
        for partition in self._run_partitions():
            for key, value in partition:
                if key in merged:
                    merged[key] = fn(merged[key], value)
                else:
                    merged[key] = value
        return merged

    def collect(self) -> list[T]:
        """Materialise the dataset in partition order."""
        results = self._run_partitions()
        return [item for partition in results for item in partition]

    def count(self) -> int:
        """Number of elements."""
        return sum(len(partition) for partition in self._run_partitions())

    def reduce(self, fn: Callable[[T, T], T]) -> T:
        """Reduce with an associative *fn* (two-level: partition, then driver)."""
        partials: list[T] = []
        for partition in self._run_partitions():
            if not partition:
                continue
            accumulator = partition[0]
            for item in partition[1:]:
                accumulator = fn(accumulator, item)
            partials.append(accumulator)
        if not partials:
            raise ValueError("reduce() of an empty RDD")
        result = partials[0]
        for item in partials[1:]:
            result = fn(result, item)
        return result

    def sum(self) -> T:
        """Sum of elements (numeric RDDs)."""
        return self.reduce(lambda a, b: a + b)  # type: ignore[operator]

    @property
    def partition_count(self) -> int:
        """Number of partitions."""
        return len(self._partitions)

    def _run_partitions(self) -> list[list[T]]:
        pipeline = self._pipeline

        def make_task(partition: list[object]) -> Callable[[], list[T]]:
            return lambda: pipeline(partition)

        return self._cluster.run_stage([make_task(p) for p in self._partitions])
