"""Cluster-distributed graph compression (Algorithm 1 on the mini-Spark).

Algorithm 1 creates "one new process for each sub-graph" — in the paper's
deployment those processes are Spark tasks.  :class:`ClusterCompressor`
runs each connected component's label propagation as one task on a
:class:`~repro.distributed.cluster.LocalCluster`, inheriting the
cluster's scheduling, stats, and task-retry fault tolerance; results are
combined in component order, so the outcome is identical to the serial
compressor regardless of scheduling or retries.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.compression.compressor import CompressionConfig, CompressionResult
from repro.compression.merge import merge_labeled_graph
from repro.compression.propagation import LabelPropagation, PropagationReport
from repro.distributed.cluster import LocalCluster
from repro.graphs.components import connected_components
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


class ClusterCompressor:
    """Drop-in alternative to :class:`~repro.compression.compressor.GraphCompressor`
    whose per-component propagation runs as cluster tasks."""

    def __init__(
        self, cluster: LocalCluster, config: CompressionConfig | None = None
    ) -> None:
        self.cluster = cluster
        self.config = config or CompressionConfig()

    def compress(self, graph: WeightedGraph) -> CompressionResult:
        """Compress *graph* with one cluster task per connected component."""
        components = connected_components(graph)
        subgraphs = [graph.subgraph(component) for component in components]

        config = self.config

        def make_task(subgraph: WeightedGraph):
            def task() -> PropagationReport:
                propagation = LabelPropagation(
                    threshold_rule=config.threshold_rule,
                    termination=config.termination,
                    policy=config.policy,
                )
                return propagation.run(subgraph)

            return task

        if subgraphs:
            reports = self.cluster.run_stage([make_task(s) for s in subgraphs])
        else:
            reports = []

        labels: dict[NodeId, int] = {}
        label_offset = 0
        for report in reports:
            for node, label in report.labels.items():
                labels[node] = label + label_offset
            label_offset += max(report.labels.values(), default=-1) + 1

        compressed = merge_labeled_graph(graph, labels)
        return CompressionResult(compressed=compressed, component_reports=list(reports))
