"""Task executors: where partition-level tasks actually run.

Two implementations share one interface so every distributed component
can be exercised deterministically in tests (serial) and with real
concurrency in benchmarks (threaded).
"""

from __future__ import annotations

import abc
from concurrent.futures import ThreadPoolExecutor
from collections.abc import Callable, Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")
R = TypeVar("R")


class TaskExecutor(abc.ABC):
    """Runs a batch of independent tasks and returns results in order."""

    @abc.abstractmethod
    def run_all(self, tasks: Sequence[Callable[[], R]]) -> list[R]:
        """Execute every task; results are ordered like *tasks*."""

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply *fn* to each item as one task per item."""
        materialised = list(items)
        return self.run_all([_bind(fn, item) for item in materialised])

    @abc.abstractmethod
    def close(self) -> None:
        """Release executor resources (idempotent)."""

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _bind(fn: Callable[[T], R], item: T) -> Callable[[], R]:
    """Bind one argument (avoids the classic late-binding lambda bug)."""
    return lambda: fn(item)


class SerialExecutor(TaskExecutor):
    """Runs tasks inline, in order.  The deterministic reference."""

    def run_all(self, tasks: Sequence[Callable[[], R]]) -> list[R]:
        return [task() for task in tasks]

    def close(self) -> None:
        return None


class ThreadedExecutor(TaskExecutor):
    """Runs tasks on a shared thread pool.

    Suitable for numpy-heavy tasks (BLAS releases the GIL) and I/O; the
    pool is created lazily and reused across batches, so per-batch
    overhead stays small — important because the eigensolver issues one
    small batch per iteration.
    """

    def __init__(self, workers: int = 4) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: ThreadPoolExecutor | None = None

    def run_all(self, tasks: Sequence[Callable[[], R]]) -> list[R]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.workers)
        futures = [self._pool.submit(task) for task in tasks]
        return [future.result() for future in futures]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
