"""Multi-user workload construction.

Builds the :class:`~repro.mec.system.MECSystem` for the multi-user
experiments: *n* users, each running an application drawn from a small
pool of distinct NETGEN graphs (round-robin), all served by one edge
server whose capacity scales with the user count per the profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.callgraph.model import FunctionCallGraph
from repro.mec.admission import AllocationPolicy
from repro.mec.channel import SharedChannel
from repro.utils.rng import RandomSource
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph
from repro.workloads.profiles import ExperimentProfile


def poisson_arrivals(
    user_ids: list[str], rate: float, seed: int = 0
) -> dict[str, float]:
    """Poisson-process arrival times for the discrete-event simulator.

    Users arrive in id order with exponential inter-arrival gaps of mean
    ``1 / rate``; the first user arrives at its first gap (not at 0), so
    even a single user exercises the arrival machinery.
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = RandomSource(seed).spawn("arrivals", rate, len(user_ids))
    arrivals: dict[str, float] = {}
    clock = 0.0
    for user_id in user_ids:
        clock += rng.expovariate(rate)
        arrivals[user_id] = clock
    return arrivals


@dataclass
class MultiUserWorkload:
    """A generated multi-user scenario."""

    system: MECSystem
    call_graphs: dict[str, FunctionCallGraph]
    """Per-user call graphs (the planner's per-user input)."""

    distinct_graphs: list[FunctionCallGraph]
    """The graph pool; users reference these round-robin.  Planners can
    plan each distinct graph once and reuse the parts across its users."""

    user_graph_index: dict[str, int]
    """Which pool entry each user runs."""


def build_mec_system(
    n_users: int,
    profile: ExperimentProfile,
    graph_size: int | None = None,
    allocation: AllocationPolicy | None = None,
    channel: SharedChannel | None = None,
) -> MultiUserWorkload:
    """Build an *n_users* MEC system per *profile*.

    Each of the ``profile.distinct_graphs`` pool entries is generated with
    its own seed; user ``k`` runs pool entry ``k mod pool_size``.  The
    server's total capacity is ``server_capacity_per_user * n_users``.
    With *channel*, users share that wireless spectrum (contention-aware
    evaluation); without it every user keeps the paper's private ``b``.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    size = graph_size if graph_size is not None else profile.multiuser_graph_size

    pool: list[FunctionCallGraph] = []
    pool_size = max(1, min(profile.distinct_graphs, n_users))
    for g in range(pool_size):
        config = NetgenConfig(
            n_nodes=size,
            n_edges=profile.edges_for(size),
            seed=profile.seed + 1000 * g,
        )
        graph = netgen_graph(config)
        pool.append(
            call_graph_from_weighted_graph(
                graph,
                app_name=f"app-{g}",
                unoffloadable_fraction=profile.unoffloadable_fraction,
                seed=profile.seed + g,
            )
        )

    users: list[UserContext] = []
    call_graphs: dict[str, FunctionCallGraph] = {}
    user_graph_index: dict[str, int] = {}
    for k in range(n_users):
        user_id = f"user{k:05d}"
        device = MobileDevice(device_id=user_id, profile=profile.device)
        graph_index = k % pool_size
        users.append(UserContext(device=device, call_graph=pool[graph_index]))
        call_graphs[user_id] = pool[graph_index]
        user_graph_index[user_id] = graph_index

    server = EdgeServer(total_capacity=profile.server_capacity_per_user * n_users)
    system = MECSystem(
        server=server, users=users, allocation=allocation, channel=channel
    )
    return MultiUserWorkload(
        system=system,
        call_graphs=call_graphs,
        distinct_graphs=pool,
        user_graph_index=user_graph_index,
    )
