"""NETGEN-style random function-data-flow-graph generation.

The generator reproduces the structural properties that make compression
(Table I) and cutting (Figs. 3-8) behave as in the paper:

* an application consists of several *components* (activities/services);
  the generated graph has one connected component per application
  component, matching Section III-A's component-boundary split;
* each component consists of *tightly coupled clusters* (functions that
  exchange lots of data) joined by light data flows — intra-cluster edges
  draw communication weights from a heavy range, inter-cluster edges from
  a light range;
* cluster size grows slowly with graph size, reproducing Table I's rising
  compression ratio.

``netgen_graph`` honours exact node and edge counts, like the original
NETGEN's interface (number of nodes, number of edges, weight ranges).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.weighted_graph import WeightedGraph
from repro.utils.rng import RandomSource


@dataclass(frozen=True)
class NetgenConfig:
    """Parameters of one generated network (NETGEN's knob set)."""

    n_nodes: int
    n_edges: int
    seed: int = 0
    node_weight_range: tuple[float, float] = (1.0, 10.0)
    intra_weight_range: tuple[float, float] = (10.0, 20.0)
    inter_weight_range: tuple[float, float] = (0.2, 2.0)
    intra_edge_fraction: float = 0.8
    cluster_size_exponent: float = 0.28
    """Mean cluster size grows as ``n_nodes ** exponent`` — reproducing
    Table I's rising compression ratio with graph size."""

    component_size_target: int = 60
    """Nodes per application component; the graph gets roughly
    ``n_nodes / component_size_target`` connected components."""

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError(f"n_nodes must be >= 2, got {self.n_nodes}")
        if self.component_size_target < 4:
            raise ValueError(
                f"component_size_target must be >= 4, got {self.component_size_target}"
            )
        min_edges = self.n_nodes - 1
        max_edges = self.n_nodes * (self.n_nodes - 1) // 2
        if not min_edges <= self.n_edges <= max_edges:
            raise ValueError(
                f"n_edges must be in [{min_edges}, {max_edges}], got {self.n_edges}"
            )
        if not 0.0 < self.intra_edge_fraction < 1.0:
            raise ValueError(
                f"intra_edge_fraction must be in (0, 1), got {self.intra_edge_fraction}"
            )

    @property
    def mean_cluster_size(self) -> int:
        """Target mean size of tightly coupled clusters."""
        return max(3, round(self.n_nodes**self.cluster_size_exponent))

    @property
    def component_count(self) -> int:
        """Number of application components the graph will contain."""
        return max(1, self.n_nodes // self.component_size_target)


def paper_network_configs(seed: int = 0) -> list[NetgenConfig]:
    """The five networks of Table I (same node and edge counts)."""
    sizes = [(250, 1214), (500, 2643), (1000, 4912), (2000, 9578), (5000, 40243)]
    return [
        NetgenConfig(n_nodes=n, n_edges=m, seed=seed + index)
        for index, (n, m) in enumerate(sizes)
    ]


def netgen_graph(config: NetgenConfig) -> WeightedGraph:
    """Generate one random clustered multi-component graph per *config*.

    Construction, per component:

    1. the component's nodes are partitioned into clusters (geometric
       size spread around the config's mean, minimum 2);
    2. each cluster gets a random spanning tree of heavy intra edges;
    3. clusters are chained by light inter edges so the component is
       connected;
    4. the component's share of the remaining edge budget is split
       between extra intra edges (``intra_edge_fraction``) and extra
       inter-cluster edges, all randomly placed without parallels.

    Components are mutually disconnected (the paper's component-boundary
    structure).  The exact total edge count is honoured.
    """
    rng = RandomSource(config.seed).spawn("netgen", config.n_nodes, config.n_edges)
    graph = WeightedGraph()
    for i in range(config.n_nodes):
        graph.add_node(i, weight=rng.uniform(*config.node_weight_range))

    components = _partition_nodes(config.n_nodes, config.component_count, rng)
    budgets = _edge_budgets(components, config.n_edges)
    for component, budget in zip(components, budgets, strict=True):
        _generate_component(graph, component, budget, config, rng)
    _fill_to_exact_count(graph, components, config, rng)
    return graph


# ----------------------------------------------------------------------
# Internals
# ----------------------------------------------------------------------
def _partition_nodes(
    n_nodes: int, n_components: int, rng: RandomSource
) -> list[list[int]]:
    """Split node ids into contiguous components of near-equal size."""
    n_components = max(1, min(n_components, n_nodes // 4))
    base, extra = divmod(n_nodes, n_components)
    components: list[list[int]] = []
    start = 0
    for i in range(n_components):
        size = base + (1 if i < extra else 0)
        components.append(list(range(start, start + size)))
        start += size
    return components


def _edge_budgets(components: list[list[int]], n_edges: int) -> list[int]:
    """Distribute the edge budget proportionally to component size."""
    total_nodes = sum(len(c) for c in components)
    budgets = [int(n_edges * len(c) / total_nodes) for c in components]
    # Hand leftover edges to the largest components first.
    leftover = n_edges - sum(budgets)
    order = sorted(range(len(components)), key=lambda i: -len(components[i]))
    for i in range(leftover):
        budgets[order[i % len(order)]] += 1
    # Clamp each budget into the component's feasible range.
    for i, component in enumerate(components):
        size = len(component)
        budgets[i] = max(size - 1, min(budgets[i], size * (size - 1) // 2))
    return budgets


def _partition_into_clusters(
    nodes: list[int], mean: int, rng: RandomSource
) -> list[list[int]]:
    """Split a component's nodes into clusters of varying size."""
    clusters: list[list[int]] = []
    start = 0
    total = len(nodes)
    while start < total:
        size = max(2, round(rng.gauss(mean, mean / 3)))
        size = min(size, total - start)
        if total - start - size == 1:
            size += 1  # avoid a trailing singleton cluster
        clusters.append(nodes[start : start + size])
        start += size
    return clusters


def _generate_component(
    graph: WeightedGraph,
    nodes: list[int],
    edge_budget: int,
    config: NetgenConfig,
    rng: RandomSource,
) -> None:
    """Build one connected clustered component with ~edge_budget edges."""
    clusters = _partition_into_clusters(nodes, config.mean_cluster_size, rng)
    edges_before = graph.edge_count

    # Intra-cluster spanning trees (heavy edges).
    for cluster in clusters:
        for position in range(1, len(cluster)):
            u = cluster[position]
            v = cluster[rng.randint(0, position - 1)]
            graph.add_edge(u, v, weight=rng.uniform(*config.intra_weight_range))

    # Chain clusters together (light edges) so the component is connected.
    for i in range(1, len(clusters)):
        u = rng.choice(clusters[i - 1])
        v = rng.choice(clusters[i])
        graph.add_edge(u, v, weight=rng.uniform(*config.inter_weight_range))

    # Spend the remaining budget inside this component.
    used = graph.edge_count - edges_before
    remaining = max(0, edge_budget - used)
    extra_intra = int(remaining * config.intra_edge_fraction)
    _add_intra_edges(graph, clusters, extra_intra, config, rng)
    used = graph.edge_count - edges_before
    _add_inter_edges(graph, clusters, edge_budget - used, config, rng)


def _add_intra_edges(
    graph: WeightedGraph,
    clusters: list[list[int]],
    budget: int,
    config: NetgenConfig,
    rng: RandomSource,
) -> None:
    """Randomly add up to *budget* extra heavy edges inside clusters."""
    eligible = [c for c in clusters if len(c) >= 3]
    if not eligible or budget <= 0:
        return
    attempts = budget * 20
    added = 0
    while added < budget and attempts > 0:
        attempts -= 1
        cluster = rng.choice(eligible)
        u, v = rng.sample(cluster, 2)
        if graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, weight=rng.uniform(*config.intra_weight_range))
        added += 1


def _add_inter_edges(
    graph: WeightedGraph,
    clusters: list[list[int]],
    budget: int,
    config: NetgenConfig,
    rng: RandomSource,
) -> None:
    """Randomly add up to *budget* light edges between clusters."""
    if len(clusters) < 2 or budget <= 0:
        return
    attempts = budget * 20
    added = 0
    while added < budget and attempts > 0:
        attempts -= 1
        i, j = rng.sample(range(len(clusters)), 2)
        u = rng.choice(clusters[i])
        v = rng.choice(clusters[j])
        if graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, weight=rng.uniform(*config.inter_weight_range))
        added += 1


def _fill_to_exact_count(
    graph: WeightedGraph,
    components: list[list[int]],
    config: NetgenConfig,
    rng: RandomSource,
) -> None:
    """Top up with light intra-component edges to the exact edge count."""
    attempts = (config.n_edges - graph.edge_count) * 50 + 100
    eligible = [c for c in components if len(c) >= 2]
    while graph.edge_count < config.n_edges and attempts > 0 and eligible:
        attempts -= 1
        component = rng.choice(eligible)
        u, v = rng.sample(component, 2)
        if graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, weight=rng.uniform(*config.inter_weight_range))
    if graph.edge_count < config.n_edges:
        for component in eligible:
            for idx_u in range(len(component)):
                for idx_v in range(idx_u + 1, len(component)):
                    if graph.edge_count >= config.n_edges:
                        return
                    u, v = component[idx_u], component[idx_v]
                    if not graph.has_edge(u, v):
                        graph.add_edge(
                            u, v, weight=rng.uniform(*config.inter_weight_range)
                        )
