"""Workload generation for experiments, examples and tests.

The paper uses NETGEN to create random graphs "similar to the actual
function data flow graph of mobile applications".  This package provides
that generator (:mod:`repro.workloads.netgen`), plus application-level
generators that exercise the bytecode IR end-to-end, multi-user system
builders, and the parameter profiles the experiment harness sweeps.
"""

from repro.workloads.applications import (
    call_graph_from_weighted_graph,
    synthesize_application,
)
from repro.workloads.multiuser import (
    MultiUserWorkload,
    build_mec_system,
    poisson_arrivals,
)
from repro.workloads.traces import (
    call_graph_from_dict,
    call_graph_to_dict,
    load_trace,
    replay_arrivals,
    save_trace,
)
from repro.workloads.netgen import NetgenConfig, netgen_graph, paper_network_configs
from repro.workloads.profiles import ExperimentProfile, paper_profile, quick_profile

__all__ = [
    "NetgenConfig",
    "netgen_graph",
    "paper_network_configs",
    "synthesize_application",
    "call_graph_from_weighted_graph",
    "MultiUserWorkload",
    "build_mec_system",
    "poisson_arrivals",
    "save_trace",
    "load_trace",
    "call_graph_to_dict",
    "call_graph_from_dict",
    "replay_arrivals",
    "ExperimentProfile",
    "paper_profile",
    "quick_profile",
]
