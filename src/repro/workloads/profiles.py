"""Experiment parameter profiles.

One place for every knob the harness sweeps, with two presets:

* :func:`paper_profile` — the paper's scales (graphs to 5000 nodes, user
  counts to 5000).  Hours of CPU on a laptop; offered for completeness.
* :func:`quick_profile` — a scaled sweep preserving the figures' *shape*
  (relative ordering and growth) at laptop-bench time scales; this is
  what ``benchmarks/`` runs and what EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mec.devices import DeviceProfile


@dataclass(frozen=True)
class ExperimentProfile:
    """All scales and physical parameters of one experiment campaign."""

    name: str
    graph_sizes: tuple[int, ...]
    """Graph sizes swept by the single-user experiments (Figs. 3-5, 9)."""

    user_counts: tuple[int, ...]
    """User counts swept by the multi-user experiments (Figs. 6-8)."""

    multiuser_graph_size: int
    """Per-user graph size in the multi-user sweep (paper: 1000)."""

    edges_per_node: float = 4.9
    """Edge density for sizes not pinned by Table I."""

    device: DeviceProfile = field(
        default_factory=lambda: DeviceProfile(
            compute_capacity=20.0,
            power_compute=1.0,
            power_transmit=6.0,
            bandwidth=70.0,
        )
    )
    """Tuned to the paper's regime: handsets are slow relative to the
    server and wireless transmission is expensive per unit, yet good cuts
    make offloading pay — the balance Section III argues for."""

    server_capacity_per_user: float = 300.0
    """Edge-server capacity provisioned per user.  Keeping per-user
    provisioning constant as users scale matches the paper's setup where
    total consumption keeps growing roughly linearly in Figs. 6-8."""

    unoffloadable_fraction: float = 0.05
    seed: int = 2019
    distinct_graphs: int = 4
    """Multi-user runs draw each user's app from this many distinct
    generated graphs (round-robin), so per-graph planning is reused."""

    def edges_for(self, n_nodes: int) -> int:
        """Edge count for a graph of *n_nodes*: Table I's exact counts
        when available, the profile density otherwise."""
        table1 = {250: 1214, 500: 2643, 1000: 4912, 2000: 9578, 5000: 40243}
        if n_nodes in table1:
            return table1[n_nodes]
        return int(self.edges_per_node * n_nodes)


def paper_profile() -> ExperimentProfile:
    """The paper's full scales (slow; see quick_profile for benches)."""
    return ExperimentProfile(
        name="paper",
        graph_sizes=(250, 500, 1000, 2000, 5000),
        user_counts=(250, 500, 1000, 2000, 5000),
        multiuser_graph_size=1000,
    )


def quick_profile() -> ExperimentProfile:
    """Laptop-scale sweep preserving the paper's trends.

    Graph sizes keep the paper's lower points and cap the top; user
    counts scale down 25x (10..200 instead of 250..5000) while keeping
    the 20x spread between the smallest and largest point.
    """
    return ExperimentProfile(
        name="quick",
        graph_sizes=(100, 250, 500, 1000),
        user_counts=(10, 25, 50, 100, 200),
        multiuser_graph_size=250,
        distinct_graphs=4,
    )
