"""Application-level workload generation.

Two paths into a :class:`~repro.callgraph.model.FunctionCallGraph`:

* :func:`synthesize_application` builds a full
  :class:`~repro.callgraph.bytecode.ApplicationBinary` (compute / call /
  sensor instructions) and runs the real extractor over it — the
  end-to-end path that exercises the Soot substitute;
* :func:`call_graph_from_weighted_graph` wraps an existing weighted graph
  (e.g. a NETGEN network) as a call graph — the bulk path the figure
  experiments use, matching the paper's use of NETGEN graphs directly.
"""

from __future__ import annotations

from repro.callgraph.bytecode import ApplicationBinary
from repro.callgraph.extractor import extract_call_graph
from repro.callgraph.model import FunctionCallGraph
from repro.graphs.weighted_graph import WeightedGraph
from repro.utils.rng import RandomSource


def synthesize_application(
    name: str,
    n_functions: int,
    seed: int = 0,
    n_components: int = 2,
    coupling: str = "loose",
    sensor_fraction: float = 0.1,
    compute_range: tuple[float, float] = (5.0, 50.0),
) -> FunctionCallGraph:
    """Generate a synthetic mobile app and extract its call graph.

    *coupling* is ``"loose"`` (light payloads between most functions) or
    ``"tight"`` (heavy payloads — the "highly coupled functions" case the
    abstract calls out).  Each component is a calling tree rooted at a
    component-entry function invoked from ``main``; a ``sensor_fraction``
    of functions read sensors and become unoffloadable.
    """
    if n_functions < 2:
        raise ValueError(f"n_functions must be >= 2, got {n_functions}")
    if n_components < 1:
        raise ValueError(f"n_components must be >= 1, got {n_components}")
    if coupling not in ("loose", "tight"):
        raise ValueError(f"coupling must be 'loose' or 'tight', got {coupling!r}")
    if not 0.0 <= sensor_fraction <= 1.0:
        raise ValueError(f"sensor_fraction must be in [0, 1], got {sensor_fraction}")

    rng = RandomSource(seed).spawn("app", name, n_functions)
    payload_range = (2.0, 8.0) if coupling == "loose" else (20.0, 60.0)

    binary = ApplicationBinary(name=name, entry_point="main")
    main = binary.define("main", component="ui")
    main.compute(rng.uniform(*compute_range))
    main.ui_render()

    body_count = n_functions - 1
    per_component = [body_count // n_components] * n_components
    for i in range(body_count % n_components):
        per_component[i] += 1

    function_index = 0
    for component_index, size in enumerate(per_component):
        if size == 0:
            continue
        component = f"component{component_index}"
        names = [f"f{function_index + offset}" for offset in range(size)]
        function_index += size
        for fn_name in names:
            fn = binary.define(fn_name, component=component)
            fn.compute(rng.uniform(*compute_range))
            if rng.random() < sensor_fraction:
                fn.sensor_read()
        # Call tree inside the component, rooted at names[0].
        for position in range(1, size):
            caller = names[rng.randint(0, position - 1)]
            binary.functions[caller].call(names[position], rng.uniform(*payload_range))
            binary.functions[names[position]].return_data(rng.uniform(*payload_range) / 2)
        # A few extra cross-calls to densify tight apps.
        extra_calls = size // 2 if coupling == "tight" else size // 4
        for _ in range(extra_calls):
            caller, callee = rng.sample(names, 2) if size >= 2 else (names[0], names[0])
            if caller != callee:
                binary.functions[caller].call(callee, rng.uniform(*payload_range))
        main.call(names[0], rng.uniform(2.0, 8.0))

    return extract_call_graph(binary)


def call_graph_from_weighted_graph(
    graph: WeightedGraph,
    app_name: str = "netgen-app",
    unoffloadable_fraction: float = 0.05,
    seed: int = 0,
) -> FunctionCallGraph:
    """Wrap a weighted graph as a function call graph.

    Node ``i`` becomes function ``f{i}``; a seeded sample of
    ``unoffloadable_fraction`` of the functions is pinned local (always
    including the highest-degree node, playing the role of the UI-driving
    ``main``).  This mirrors the paper's experimental setup, where NETGEN
    graphs stand in for real applications.
    """
    if not 0.0 <= unoffloadable_fraction < 1.0:
        raise ValueError(
            f"unoffloadable_fraction must be in [0, 1), got {unoffloadable_fraction}"
        )
    rng = RandomSource(seed).spawn("wrap", app_name)
    nodes = graph.node_list()
    if not nodes:
        raise ValueError("graph has no nodes")

    hub = max(nodes, key=lambda n: (graph.degree(n), graph.weighted_degree(n)))
    pinned = {hub}
    extra = max(0, round(unoffloadable_fraction * len(nodes)) - 1)
    candidates = [n for n in nodes if n != hub]
    if extra > 0 and candidates:
        pinned.update(rng.sample(candidates, min(extra, len(candidates))))

    fcg = FunctionCallGraph(app_name)
    for node in nodes:
        fcg.add_function(
            f"f{node}",
            computation=graph.node_weight(node),
            component="main",
            offloadable=node not in pinned,
        )
    for u, v, weight in graph.edges():
        fcg.add_data_flow(f"f{u}", f"f{v}", weight)
    return fcg
