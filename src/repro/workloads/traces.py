"""Workload persistence: save and reload complete experiment scenarios.

An experiment campaign is only reproducible if its workloads survive the
process.  A *trace* bundles everything a run consumed — the per-user call
graphs, the device/server parameters, the user→application mapping — as
one JSON document; ``load_trace`` reconstructs an identical
:class:`~repro.mec.system.MECSystem` ready to plan.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

from repro.callgraph.model import FunctionCallGraph
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.workloads.multiuser import MultiUserWorkload

TRACE_FORMAT_VERSION = 1


def call_graph_to_dict(fcg: FunctionCallGraph) -> dict[str, Any]:
    """Serialise one call graph as plain JSON-compatible data."""
    return {
        "app_name": fcg.app_name,
        "functions": [
            {
                "name": info.name,
                "computation": info.computation,
                "component": info.component,
                "offloadable": info.offloadable,
            }
            for info in (fcg.info(name) for name in fcg.functions())
        ],
        "flows": [
            {"u": u, "v": v, "amount": w} for u, v, w in fcg.graph.edges()
        ],
    }


def call_graph_from_dict(payload: dict[str, Any]) -> FunctionCallGraph:
    """Rebuild a call graph written by :func:`call_graph_to_dict`."""
    fcg = FunctionCallGraph(payload["app_name"])
    for entry in payload["functions"]:
        fcg.add_function(
            entry["name"],
            computation=entry["computation"],
            component=entry.get("component", "main"),
            offloadable=entry.get("offloadable", True),
        )
    for flow in payload["flows"]:
        fcg.add_data_flow(flow["u"], flow["v"], flow["amount"])
    return fcg


def save_trace(workload: MultiUserWorkload, path: str | Path) -> None:
    """Serialise *workload* to *path* as one JSON document."""
    system = workload.system
    payload = {
        "version": TRACE_FORMAT_VERSION,
        "server_capacity": system.server.total_capacity,
        "graph_pool": [call_graph_to_dict(g) for g in workload.distinct_graphs],
        "users": [
            {
                "user_id": user.user_id,
                "graph_index": workload.user_graph_index[user.user_id],
                "device_profile": asdict(user.device.profile),
            }
            for user in system.users
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_trace(path: str | Path) -> MultiUserWorkload:
    """Reconstruct a workload previously written by :func:`save_trace`.

    The reconstructed workload preserves graph-pool sharing: users with
    the same ``graph_index`` reference the *same* call-graph object, so
    planner caching behaves exactly as it did in the original run.
    """
    payload = json.loads(Path(path).read_text())
    version = payload.get("version")
    if version != TRACE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported trace version {version!r} (expected {TRACE_FORMAT_VERSION})"
        )

    pool = [call_graph_from_dict(entry) for entry in payload["graph_pool"]]
    users: list[UserContext] = []
    call_graphs: dict[str, FunctionCallGraph] = {}
    user_graph_index: dict[str, int] = {}
    for entry in payload["users"]:
        user_id = entry["user_id"]
        index = entry["graph_index"]
        if not 0 <= index < len(pool):
            raise ValueError(f"user {user_id!r} references missing pool graph {index}")
        profile = DeviceProfile(**entry["device_profile"])
        device = MobileDevice(user_id, profile=profile)
        users.append(UserContext(device, pool[index]))
        call_graphs[user_id] = pool[index]
        user_graph_index[user_id] = index

    system = MECSystem(EdgeServer(payload["server_capacity"]), users)
    return MultiUserWorkload(
        system=system,
        call_graphs=call_graphs,
        distinct_graphs=pool,
        user_graph_index=user_graph_index,
    )


def replay_arrivals(
    workload: MultiUserWorkload,
    rate: float | None = None,
    seed: int = 0,
    fresh_objects: bool = True,
) -> list[tuple[str, FunctionCallGraph]]:
    """Turn *workload* into an arrival-ordered request stream.

    This is the serving-layer replay hook: each element is one plan
    request ``(user_id, call_graph)``.  With *rate* set, users arrive in
    Poisson order (see :func:`repro.workloads.multiuser.poisson_arrivals`);
    otherwise in user-id order.

    With ``fresh_objects=True`` (the default) every request carries its
    own reconstructed :class:`FunctionCallGraph` — structurally identical
    to the pool entry but a *distinct object*, exactly how independent
    devices submit the same popular app.  Identity-based caching gains
    nothing on such a stream; content-addressed caching (the plan
    service) collapses it back to one plan per pool entry.
    """
    from repro.workloads.multiuser import poisson_arrivals

    user_ids = [user.user_id for user in workload.system.users]
    if rate is not None:
        times = poisson_arrivals(user_ids, rate, seed=seed)
        user_ids = sorted(user_ids, key=lambda uid: (times[uid], uid))

    requests: list[tuple[str, FunctionCallGraph]] = []
    for user_id in user_ids:
        graph = workload.call_graphs[user_id]
        if fresh_objects:
            graph = call_graph_from_dict(call_graph_to_dict(graph))
        requests.append((user_id, graph))
    return requests
