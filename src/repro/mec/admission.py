"""Edge-server capacity allocation and waiting-time model.

Section II charges each user a waiting time ``wt_j^i`` "consumed when
waiting for the resource allocated by S", and Section III argues that too
much offloading "will inevitably increase the load of S".  The paper does
not pin down the allocation discipline, so three standard ones are
provided; all return a :class:`ServerAllocation` mapping each user to an
allocated capacity ``I_s^i`` and a waiting time.

* :class:`EqualShareAllocation` — capacity split evenly across users with
  remote work; no queueing (pure processor sharing).
* :class:`ProportionalShareAllocation` — capacity proportional to each
  user's remote load (weighted processor sharing); no queueing.
* :class:`FCFSQueueAllocation` — users are admitted in id order, each
  receiving full capacity but waiting for the work of everyone ahead; the
  default, because it makes the multi-user saturation of Figs. 6-8
  visible: waiting grows linearly in total offloaded work.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from collections.abc import Mapping

from repro.mec.devices import EdgeServer

MIN_REMOTE_LOAD = 1e-12
"""Loads below this are treated as idle: computation weights are O(1)+
in every workload, and double-precision shares of smaller loads can
underflow to zero capacity, which downstream time formulas reject."""


@dataclass(frozen=True)
class ServerAllocation:
    """Per-user server capacity (``I_s^i``) and waiting time (``wt^i``)."""

    capacity: dict[str, float]
    waiting: dict[str, float]

    def capacity_for(self, user_id: str) -> float:
        """Allocated capacity for *user_id* (0 when nothing allocated)."""
        return self.capacity.get(user_id, 0.0)

    def waiting_for(self, user_id: str) -> float:
        """Waiting time for *user_id* (0 when not queued)."""
        return self.waiting.get(user_id, 0.0)


class AllocationPolicy(abc.ABC):
    """Strategy deciding how the edge server divides its capacity."""

    @abc.abstractmethod
    def allocate(
        self, server: EdgeServer, remote_loads: Mapping[str, float]
    ) -> ServerAllocation:
        """Return the allocation for the given per-user remote workloads.

        *remote_loads* maps user id to the total computation weight that
        user offloads; users with zero load receive no capacity and no
        waiting time.
        """


class EqualShareAllocation(AllocationPolicy):
    """``I_s^i = C / n_active``; no queueing delay."""

    def allocate(
        self, server: EdgeServer, remote_loads: Mapping[str, float]
    ) -> ServerAllocation:
        active = [user for user, load in remote_loads.items() if load > MIN_REMOTE_LOAD]
        if not active:
            return ServerAllocation({}, {})
        share = server.total_capacity / len(active)
        return ServerAllocation(
            capacity={user: share for user in active},
            waiting={user: 0.0 for user in active},
        )


class ProportionalShareAllocation(AllocationPolicy):
    """``I_s^i`` proportional to the user's remote load; no queueing delay.

    Under proportional sharing every active user finishes its remote work
    in the same time ``total_load / C`` — the processor-sharing fluid
    limit.
    """

    def allocate(
        self, server: EdgeServer, remote_loads: Mapping[str, float]
    ) -> ServerAllocation:
        active = {user: load for user, load in remote_loads.items() if load > MIN_REMOTE_LOAD}
        if not active:
            return ServerAllocation({}, {})
        total = sum(active.values())
        return ServerAllocation(
            capacity={
                user: server.total_capacity * load / total for user, load in active.items()
            },
            waiting={user: 0.0 for user in active},
        )


class QueueTheoreticAllocation(AllocationPolicy):
    """M/M/1-flavoured waiting model (extension beyond the paper).

    The server is treated as a single queue with service capacity ``C``
    and offered load ``rho = total remote work / (C * horizon)``; every
    active user receives the full capacity and a waiting time that blows
    up as the system approaches saturation:

        wt = (rho / (1 - rho)) * (load / C)

    ``horizon`` calibrates what "one unit of time" of offered work means;
    above ``max_utilisation`` the waiting time is pinned to the value at
    that utilisation (the deterministic planner needs finite numbers).
    """

    def __init__(self, horizon: float = 1.0, max_utilisation: float = 0.95) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        if not 0.0 < max_utilisation < 1.0:
            raise ValueError(
                f"max_utilisation must be in (0, 1), got {max_utilisation}"
            )
        self.horizon = horizon
        self.max_utilisation = max_utilisation

    def allocate(
        self, server: EdgeServer, remote_loads: Mapping[str, float]
    ) -> ServerAllocation:
        active = {user: load for user, load in remote_loads.items() if load > MIN_REMOTE_LOAD}
        if not active:
            return ServerAllocation({}, {})
        total = sum(active.values())
        rho = min(
            total / (server.total_capacity * self.horizon), self.max_utilisation
        )
        delay_factor = rho / (1.0 - rho)
        return ServerAllocation(
            capacity={user: server.total_capacity for user in active},
            waiting={
                user: delay_factor * load / server.total_capacity
                for user, load in active.items()
            },
        )


class FCFSQueueAllocation(AllocationPolicy):
    """First-come-first-served: full capacity, queue-position waiting.

    Users are ordered by id (the arrival order in our simulations); user
    ``k`` waits for the cumulative remote work of users ``1..k-1`` divided
    by the server capacity.  This is the discipline under which "too much
    offloading will inevitably increase the load of S" bites hardest and
    the multi-user figures become interesting.
    """

    def allocate(
        self, server: EdgeServer, remote_loads: Mapping[str, float]
    ) -> ServerAllocation:
        active = [
            (user, load)
            for user, load in sorted(remote_loads.items())
            if load > MIN_REMOTE_LOAD
        ]
        capacity: dict[str, float] = {}
        waiting: dict[str, float] = {}
        backlog = 0.0
        for user, load in active:
            capacity[user] = server.total_capacity
            waiting[user] = backlog / server.total_capacity
            backlog += load
        return ServerAllocation(capacity, waiting)
