"""Online multi-user admission (extension beyond the paper).

The paper plans all users at once.  A real edge deployment admits users
*over time*, and replanning everyone on each arrival is both expensive
and disruptive (already-running placements would migrate).  This module
implements the incremental alternative and the machinery to measure what
it costs:

* :class:`OnlinePlanner` keeps a running system state; each
  :meth:`~OnlinePlanner.admit` plans only the newcomer — existing users'
  placements are frozen, and the newcomer's greedy decisions are made
  against the server load those placements already impose;
* :func:`regret_vs_offline` replans every prefix of the arrival sequence
  from scratch (the clairvoyant offline optimum this pipeline can reach)
  and reports the ratio — the price of never migrating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.callgraph.model import FunctionCallGraph
from repro.mec.admission import AllocationPolicy
from repro.mec.channel import SharedChannel

if TYPE_CHECKING:  # pragma: no cover - repro.core imports repro.mec
    from repro.core.config import PlannerConfig
    from repro.core.results import CutStrategy, UserPlan
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.greedy import generate_offloading_scheme
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, SystemConsumption, UserContext


@dataclass
class AdmissionRecord:
    """One admitted user and the system state right after admission."""

    user_id: str
    consumption_after: SystemConsumption
    offloaded_functions: int
    plan: "UserPlan"


@dataclass
class OnlineState:
    """The planner's running view of the deployment."""

    users: list[UserContext] = field(default_factory=list)
    apps: dict[str, PartitionedApplication] = field(default_factory=dict)
    remote_parts: dict[str, set[int]] = field(default_factory=dict)
    history: list[AdmissionRecord] = field(default_factory=list)


class OnlinePlanner:
    """Admits users one at a time without migrating earlier placements."""

    def __init__(
        self,
        server: EdgeServer,
        cut_strategy: "CutStrategy",
        config: "PlannerConfig | None" = None,
        allocation: AllocationPolicy | None = None,
        channel: SharedChannel | None = None,
    ) -> None:
        # Local imports: repro.core depends on repro.mec, not vice versa.
        from repro.core.config import PlannerConfig
        from repro.core.planner import OffloadingPlanner

        self.server = server
        self.config = config or PlannerConfig()
        self.allocation = allocation
        self.channel = channel
        """Optional shared wireless channel: admissions and consumption
        queries price transmissions at the contention-aware ``b_i(n)``."""
        self._planner = OffloadingPlanner(
            cut_strategy, config=self.config, strategy_name="online"
        )
        self.state = OnlineState()

    def admit(
        self,
        device: MobileDevice,
        call_graph: FunctionCallGraph,
        plan: "UserPlan | None" = None,
    ) -> AdmissionRecord:
        """Plan the newcomer against the current load; freeze everyone else.

        The newcomer's application is compressed and cut exactly as in the
        offline pipeline; Algorithm 2's greedy then runs with *only* the
        newcomer's parts as candidates — existing users contribute their
        (frozen) server loads, so the newcomer sees realistic waiting.

        A precomputed *plan* (e.g. a content-addressed cache hit from
        :class:`repro.service.server.PlanService`) skips the compress/cut
        stages entirely; only the newcomer's greedy placement runs.  The
        caller owns the guarantee that *plan* was produced from an
        identical graph under an identical config — the service's
        fingerprint keying provides exactly that.
        """
        if any(u.user_id == device.device_id for u in self.state.users):
            raise ValueError(f"user {device.device_id!r} already admitted")

        if plan is None:
            plan = self._planner.plan_user(call_graph)
        user = UserContext(device, call_graph)
        self.state.users.append(user)
        self.state.apps[device.device_id] = PartitionedApplication(
            device.device_id, call_graph, plan.parts
        )

        system = MECSystem(
            self.server,
            list(self.state.users),
            allocation=self.allocation,
            channel=self.channel,
        )
        # Frozen users enter the greedy with no bisections -> no candidate
        # moves; their remote sets are seeded from the recorded placement
        # by replaying them as one un-split "side" that initial_placement
        # marks remote, then intersecting with the frozen sets.
        bisections = {
            uid: [] for uid in self.state.apps if uid != device.device_id
        }
        bisections[device.device_id] = plan.bisections
        greedy = generate_offloading_scheme(
            system,
            self.state.apps,
            bisections,
            weights=self.config.objective,
            placement_mode=self.config.initial_placement_mode,
            frozen_remote=self.state.remote_parts,
        )
        self.state.remote_parts = greedy.remote_parts
        record = AdmissionRecord(
            user_id=device.device_id,
            consumption_after=greedy.consumption,
            offloaded_functions=greedy.scheme.offload_count(device.device_id),
            plan=plan,
        )
        self.state.history.append(record)
        return record

    def current_consumption(self) -> SystemConsumption:
        """Consumption of the deployment as it stands."""
        if not self.state.users:
            raise ValueError("no users admitted yet")
        system = MECSystem(
            self.server,
            list(self.state.users),
            allocation=self.allocation,
            channel=self.channel,
        )
        return system.evaluate_placement(self.state.apps, self.state.remote_parts)


def regret_vs_offline(
    server: EdgeServer,
    cut_strategy: "CutStrategy",
    arrivals: list[tuple[MobileDevice, FunctionCallGraph]],
    config: "PlannerConfig | None" = None,
    allocation: AllocationPolicy | None = None,
) -> list[tuple[str, float, float]]:
    """Per-arrival (user id, online E+T, offline E+T) comparison.

    The offline column replans the whole prefix from scratch — the best
    this pipeline could do if migration were free.  Online/offline >= 1
    up to greedy noise; the gap is the price of freezing placements.
    """
    from repro.core.config import PlannerConfig
    from repro.core.planner import OffloadingPlanner

    config = config or PlannerConfig()
    online = OnlinePlanner(server, cut_strategy, config=config, allocation=allocation)
    offline_planner = OffloadingPlanner(cut_strategy, config=config, strategy_name="offline")

    rows: list[tuple[str, float, float]] = []
    prefix: list[tuple[MobileDevice, FunctionCallGraph]] = []
    for device, call_graph in arrivals:
        prefix.append((device, call_graph))
        online.admit(device, call_graph)
        online_cost = online.current_consumption().combined(config.objective)

        system = MECSystem(
            server, [UserContext(d, g) for d, g in prefix], allocation=allocation
        )
        offline_result = offline_planner.plan_system(
            system, {d.device_id: g for d, g in prefix}
        )
        offline_cost = offline_result.consumption.combined(config.objective)
        rows.append((device.device_id, online_cost, offline_cost))
    return rows
