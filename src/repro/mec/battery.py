"""Device battery model (the paper's motivating constraint).

The introduction's whole case for offloading is battery life ("nearly
half of responders were dissatisfied with the battery power of their
mobile phones").  This module makes that constraint first-class: a
:class:`BatteryModel` prices a planned scheme in battery-percentage
terms, checks feasibility against a remaining charge, and estimates how
many runs of the application a charge sustains — the numbers an end user
would actually see.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mec.energy import ConsumptionBreakdown
from repro.utils.validation import ensure_in_range, ensure_positive


@dataclass(frozen=True)
class BatteryModel:
    """One device's battery in the model's energy units."""

    capacity: float
    """Full-charge energy, in the same units as the consumption model."""

    reserve_fraction: float = 0.1
    """Charge fraction the OS refuses to spend on apps (low-battery
    cutoff); feasibility is judged against the usable region above it."""

    def __post_init__(self) -> None:
        ensure_positive(self.capacity, "capacity")
        ensure_in_range(self.reserve_fraction, 0.0, 1.0, "reserve_fraction")

    @property
    def usable_capacity(self) -> float:
        """Energy available to applications on a full charge."""
        return self.capacity * (1.0 - self.reserve_fraction)

    def drain_fraction(self, consumption: ConsumptionBreakdown) -> float:
        """Battery fraction one execution of the scheme consumes."""
        return consumption.energy / self.capacity

    def is_feasible(
        self, consumption: ConsumptionBreakdown, charge_fraction: float = 1.0
    ) -> bool:
        """Whether one execution fits in the charge above the reserve."""
        ensure_in_range(charge_fraction, 0.0, 1.0, "charge_fraction")
        available = self.capacity * max(0.0, charge_fraction - self.reserve_fraction)
        return consumption.energy <= available

    def runs_per_charge(self, consumption: ConsumptionBreakdown) -> int:
        """Complete executions a full charge sustains (reserve respected)."""
        if consumption.energy <= 0:
            raise ValueError("consumption must be positive to estimate runs")
        return int(self.usable_capacity // consumption.energy)

    def lifetime_gain(
        self,
        with_offloading: ConsumptionBreakdown,
        all_local: ConsumptionBreakdown,
    ) -> float:
        """Multiplier on runs-per-charge that offloading buys.

        > 1 means the scheme extends battery life; the headline number
        for an end-user changelog ("2.3x more photo edits per charge").
        """
        if with_offloading.energy <= 0 or all_local.energy <= 0:
            raise ValueError("consumptions must be positive")
        return all_local.energy / with_offloading.energy
