"""Mobile devices and the shared edge server.

Section II's notation maps onto these classes as follows: ``I_c^i`` is
:attr:`MobileDevice.compute_capacity`; ``p_c`` and ``p_t`` are the unit
power draws for local computing and wireless transmission; ``b`` is the
uplink bandwidth; the edge server ``S`` carries the total capacity that
:mod:`repro.mec.admission` divides among users.

The paper assumes homogeneous users ("for the simplicity of discussion,
we assume b_i = b, p_s = p_s, p_c = p_c"); :class:`DeviceProfile` makes
that assumption explicit and convenient while per-device overrides remain
possible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_positive


@dataclass(frozen=True)
class DeviceProfile:
    """Shared device parameters for a homogeneous user population.

    Defaults are in arbitrary but mutually consistent units: computation
    weights are "megacycles", capacities "megacycles per second",
    bandwidth "data units per second", powers "joules per second" and
    "joules per data unit" respectively.  The paper's key regime —
    wireless transmission far more expensive per unit than local compute —
    is reflected in the defaults (``power_transmit >> power_compute``).
    """

    compute_capacity: float = 100.0
    """``I_c`` — device computing capacity."""

    power_compute: float = 0.5
    """``p_c`` — unit power consumption of local computing."""

    power_transmit: float = 6.0
    """``p_t`` — unit energy consumption of wireless transmission."""

    bandwidth: float = 50.0
    """``b`` — uplink bandwidth between the user and the server."""

    def __post_init__(self) -> None:
        ensure_positive(self.compute_capacity, "compute_capacity")
        ensure_positive(self.power_compute, "power_compute")
        ensure_positive(self.power_transmit, "power_transmit")
        ensure_positive(self.bandwidth, "bandwidth")


@dataclass(frozen=True)
class MobileDevice:
    """One user's handset (``u_i`` in the paper)."""

    device_id: str
    profile: DeviceProfile = DeviceProfile()

    @property
    def compute_capacity(self) -> float:
        """``I_c^i`` — available computing capacity of this device."""
        return self.profile.compute_capacity

    @property
    def power_compute(self) -> float:
        """``p_c^i`` — unit power of local computing."""
        return self.profile.power_compute

    @property
    def power_transmit(self) -> float:
        """``p_t^i`` — unit energy of transmission toward the server."""
        return self.profile.power_transmit

    @property
    def bandwidth(self) -> float:
        """``b_i`` — uplink bandwidth."""
        return self.profile.bandwidth


@dataclass(frozen=True)
class EdgeServer:
    """One edge server ``S`` shared by its admitted users.

    The paper models a single such server; :class:`repro.fleet.EdgeFleet`
    manages a pool of them, routing each user to one server, so every
    ``EdgeServer`` instance remains exactly the paper's ``S`` for the
    users it admits.  ``total_capacity`` is divided among those users by
    an :class:`~repro.mec.admission.AllocationPolicy`; the
    construction-cost argument of Section III (server resources "always
    limited") is what makes multi-user offloading a real trade-off
    rather than offload-everything.
    """

    total_capacity: float = 2000.0

    def __post_init__(self) -> None:
        ensure_positive(self.total_capacity, "total_capacity")
