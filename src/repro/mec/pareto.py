"""Pareto exploration of the double objective (formula (6) taken seriously).

The paper scalarises ``min(E), min(T)`` into ``E + T`` (Algorithm 2's
loop condition).  The scalarisation weight is a policy choice, and every
choice lands somewhere on the energy/time trade-off curve.  This module
sweeps the weight ratio, plans once per point, and returns the
non-dominated frontier — how an operator would actually pick the
operating point for a deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

from repro.callgraph.model import FunctionCallGraph
from repro.mec.objective import ObjectiveWeights
from repro.mec.system import MECSystem

if TYPE_CHECKING:  # pragma: no cover - repro.core imports repro.mec
    from repro.core.config import PlannerConfig
    from repro.core.results import CutStrategy


@dataclass(frozen=True)
class ParetoPoint:
    """One (energy, time) operating point and the weight that found it."""

    energy: float
    time: float
    energy_weight: float
    time_weight: float
    offloaded_functions: int

    def dominates(self, other: "ParetoPoint") -> bool:
        """Weakly better on both axes, strictly on at least one."""
        if self.energy > other.energy + 1e-12 or self.time > other.time + 1e-12:
            return False
        return self.energy < other.energy - 1e-12 or self.time < other.time - 1e-12


DEFAULT_RATIOS: tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 1.0, 2.0, 4.0, 10.0, float("inf"))
"""Energy/time weight ratios swept by default.  0 = time-only,
``inf`` = energy-only, 1.0 = Algorithm 2's unweighted sum."""


def pareto_front(points: Sequence[ParetoPoint]) -> list[ParetoPoint]:
    """Filter *points* down to the non-dominated set, sorted by energy."""
    frontier = [
        p
        for p in points
        if not any(q.dominates(p) for q in points if q is not p)
    ]
    # Distinct operating points only (several weights often coincide).
    unique: list[ParetoPoint] = []
    for point in sorted(frontier, key=lambda p: (p.energy, p.time)):
        if unique and abs(unique[-1].energy - point.energy) < 1e-12 and abs(
            unique[-1].time - point.time
        ) < 1e-12:
            continue
        unique.append(point)
    return unique


def explore_tradeoff(
    system: MECSystem,
    call_graphs: Mapping[str, FunctionCallGraph],
    cut_strategy: "CutStrategy",
    ratios: Sequence[float] = DEFAULT_RATIOS,
    base_config: "PlannerConfig | None" = None,
) -> list[ParetoPoint]:
    """Plan the system once per weight ratio; returns all sampled points.

    *ratios* are energy/time weight ratios; 0 maps to ``(0, 1)`` and
    ``inf`` to ``(1, 0)``.  Feed the result to :func:`pareto_front` for
    the frontier.
    """
    # Local imports: repro.core depends on repro.mec, not vice versa.
    from repro.core.config import PlannerConfig
    from repro.core.planner import OffloadingPlanner

    base_config = base_config or PlannerConfig()
    points: list[ParetoPoint] = []
    for ratio in ratios:
        if ratio == 0.0:
            weights = ObjectiveWeights(energy=0.0, time=1.0)
        elif ratio == float("inf"):
            weights = ObjectiveWeights(energy=1.0, time=0.0)
        else:
            if ratio < 0:
                raise ValueError(f"ratios must be >= 0, got {ratio}")
            weights = ObjectiveWeights(energy=ratio, time=1.0)
        config = replace(base_config, objective=weights)
        planner = OffloadingPlanner(cut_strategy, config=config, strategy_name="pareto")
        result = planner.plan_system(system, call_graphs)
        points.append(
            ParetoPoint(
                energy=result.consumption.energy,
                time=result.consumption.time,
                energy_weight=weights.energy,
                time_weight=weights.time,
                offloaded_functions=result.scheme.total_offloaded,
            )
        )
    return points
