"""The double objective (formula (6)) and its scalarisation.

The paper states ``min(E), min(T)`` and Algorithm 2 optimises their sum
(the loop condition compares ``E_t + T_t`` against the previous round).
``ObjectiveWeights`` generalises that to a weighted sum so ablations can
trade the two goals explicitly; the default (1, 1) is Algorithm 2's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_non_negative


@dataclass(frozen=True)
class ObjectiveWeights:
    """Weights for the scalarised objective ``w_E * E + w_T * T``."""

    energy: float = 1.0
    time: float = 1.0

    def __post_init__(self) -> None:
        ensure_non_negative(self.energy, "energy weight")
        ensure_non_negative(self.time, "time weight")
        if self.energy == 0.0 and self.time == 0.0:
            raise ValueError("at least one objective weight must be positive")

    def combine(self, energy: float, time: float) -> float:
        """Scalarise an (E, T) pair."""
        return self.energy * energy + self.time * time
