"""MEC system model and offloading scheme generation (Sections II & III-B).

This package turns cut decisions into joules and seconds: it implements
formulas (1)-(6) of the paper, the shared edge server with its capacity
allocation and waiting-time model, and the greedy offloading scheme
generator of Algorithm 2.
"""

from repro.mec.admission import (
    AllocationPolicy,
    EqualShareAllocation,
    FCFSQueueAllocation,
    ProportionalShareAllocation,
    QueueTheoreticAllocation,
    ServerAllocation,
)
from repro.mec.battery import BatteryModel
from repro.mec.channel import (
    ChannelQuality,
    SharedChannel,
    make_quality_profile,
)
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.energy import (
    ConsumptionBreakdown,
    local_compute_time,
    local_energy,
    remote_compute_time,
    transmission_energy,
    transmission_time,
)
from repro.mec.game import (
    BestResponseMove,
    BestResponseResult,
    best_response_equilibrium,
    solo_offload_set,
)
from repro.mec.greedy import GreedyResult, generate_offloading_scheme
from repro.mec.objective import ObjectiveWeights
from repro.mec.online import AdmissionRecord, OnlinePlanner, regret_vs_offline
from repro.mec.pareto import ParetoPoint, explore_tradeoff, pareto_front
from repro.mec.scheme import OffloadingScheme, PartitionedApplication, SchemePart
from repro.mec.system import MECSystem, SystemConsumption, UserContext
from repro.mec.validation import ValidationResult, validate_scheme

__all__ = [
    "MobileDevice",
    "EdgeServer",
    "DeviceProfile",
    "AllocationPolicy",
    "EqualShareAllocation",
    "ProportionalShareAllocation",
    "FCFSQueueAllocation",
    "QueueTheoreticAllocation",
    "ServerAllocation",
    "ConsumptionBreakdown",
    "local_compute_time",
    "remote_compute_time",
    "local_energy",
    "transmission_energy",
    "transmission_time",
    "ObjectiveWeights",
    "ParetoPoint",
    "explore_tradeoff",
    "pareto_front",
    "MECSystem",
    "UserContext",
    "SystemConsumption",
    "OffloadingScheme",
    "SchemePart",
    "PartitionedApplication",
    "GreedyResult",
    "generate_offloading_scheme",
    "ChannelQuality",
    "SharedChannel",
    "make_quality_profile",
    "BestResponseMove",
    "BestResponseResult",
    "best_response_equilibrium",
    "solo_offload_set",
    "validate_scheme",
    "ValidationResult",
    "BatteryModel",
    "OnlinePlanner",
    "AdmissionRecord",
    "regret_vs_offline",
]
