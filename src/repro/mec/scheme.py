"""Offloading schemes and the part-level view Algorithm 2 operates on.

After compression and per-sub-graph cutting, each user's application is a
collection of *parts* — groups of functions that will be placed on the
same side as a unit.  :class:`PartitionedApplication` precomputes every
quantity the greedy loop needs (part computation weights, part-to-part
communication, traffic to pinned-local functions) so that evaluating a
candidate placement costs O(parts^2) arithmetic rather than graph scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.callgraph.model import FunctionCallGraph


@dataclass(frozen=True)
class SchemePart:
    """One indivisible placement unit for one user."""

    user_id: str
    part_id: int
    functions: frozenset[str]
    computation: float
    anchor_traffic: float
    """Communication between this part and the user's pinned-local
    functions; charged over the wireless link whenever the part is
    remote."""

    @property
    def key(self) -> tuple[str, int]:
        """Globally unique (user, part) identifier."""
        return (self.user_id, self.part_id)


class PartitionedApplication:
    """One user's application, sliced into placement parts.

    ``inter_comm[(i, j)]`` (with ``i < j``) is the communication weight
    between parts ``i`` and ``j``; it crosses the wireless link exactly
    when the two parts sit on different sides.
    """

    def __init__(
        self,
        user_id: str,
        call_graph: FunctionCallGraph,
        part_sets: Iterable[Iterable[str]],
    ) -> None:
        self.user_id = user_id
        self.call_graph = call_graph
        graph = call_graph.graph

        cleaned = [frozenset(part) for part in part_sets if part]
        covered: set[str] = set()
        for part in cleaned:
            overlap = covered & part
            if overlap:
                raise ValueError(f"parts overlap on functions {sorted(overlap)!r}")
            covered |= part
        offloadable = set(call_graph.offloadable_functions())
        missing = offloadable - covered
        if missing:
            raise ValueError(f"offloadable functions not covered by parts: {sorted(missing)!r}")
        extraneous = covered - offloadable
        if extraneous:
            raise ValueError(
                f"parts contain unoffloadable functions: {sorted(extraneous)!r}"
            )

        self.parts: list[SchemePart] = []
        membership: dict[str, int] = {}
        for index, functions in enumerate(cleaned):
            computation = sum(graph.node_weight(f) for f in functions)
            anchor = call_graph.local_anchor_traffic(functions)
            self.parts.append(
                SchemePart(
                    user_id=user_id,
                    part_id=index,
                    functions=functions,
                    computation=computation,
                    anchor_traffic=anchor,
                )
            )
            for function in functions:
                membership[function] = index

        self.inter_comm: dict[tuple[int, int], float] = {}
        for u, v, weight in graph.edges():
            pu = membership.get(u)
            pv = membership.get(v)
            if pu is None or pv is None or pu == pv:
                continue
            key = (min(pu, pv), max(pu, pv))
            self.inter_comm[key] = self.inter_comm.get(key, 0.0) + weight

        self.pinned_computation = sum(
            graph.node_weight(f) for f in call_graph.unoffloadable_functions()
        )

    @property
    def part_count(self) -> int:
        """Number of placement parts."""
        return len(self.parts)

    def remote_weight(self, remote_parts: set[int]) -> float:
        """Total computation weight of the remote-placed parts."""
        return sum(p.computation for p in self.parts if p.part_id in remote_parts)

    def local_weight(self, remote_parts: set[int]) -> float:
        """Total local computation: pinned functions + local parts."""
        local_parts = sum(
            p.computation for p in self.parts if p.part_id not in remote_parts
        )
        return self.pinned_computation + local_parts

    def cut_weight(self, remote_parts: set[int]) -> float:
        """Communication crossing the device/server boundary.

        Counts (a) inter-part edges whose endpoints sit on different
        sides and (b) remote parts' traffic to pinned-local functions.
        """
        total = 0.0
        for (i, j), weight in self.inter_comm.items():
            if (i in remote_parts) != (j in remote_parts):
                total += weight
        for part in self.parts:
            if part.part_id in remote_parts:
                total += part.anchor_traffic
        return total


@dataclass
class OffloadingScheme:
    """The final decision: which functions each user offloads."""

    remote_functions: dict[str, set[str]] = field(default_factory=dict)

    def remote_for(self, user_id: str) -> set[str]:
        """Functions user *user_id* executes on the edge server."""
        return self.remote_functions.get(user_id, set())

    def offload_count(self, user_id: str) -> int:
        """Number of functions user *user_id* offloads."""
        return len(self.remote_for(user_id))

    @property
    def total_offloaded(self) -> int:
        """Total offloaded functions across users."""
        return sum(len(functions) for functions in self.remote_functions.values())
