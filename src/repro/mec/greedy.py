"""Algorithm 2's greedy offloading scheme generation.

Input: every user's application already partitioned into parts (the two
sides of each compressed sub-graph's minimum cut).  Algorithm 2 then:

1. inserts all parts into ``V_2`` (the remote candidate set);
2. moves ``V_2'`` — the parts that clearly belong on the device — into
   ``V_1`` (the local set).  The paper leaves ``V_2'`` implicit; three
   readings are implemented (see :func:`initial_placement`), defaulting
   to the "anchored" one where each bisection's pinned-traffic-heavy side
   starts local;
3. while the combined consumption ``E_t + T_t`` keeps decreasing, moves
   the single part from ``V_2`` to ``V_1`` whose move minimises the
   resulting ``E + T`` (greedy best-move).

The loop monotonically decreases the objective and each part moves at
most once, so it terminates after at most ``|parts|`` iterations.

Implementation: the naive loop re-evaluates the whole system per
candidate (O(moves * parts * users) full evaluations).  Here a
:class:`PlacementEvaluator` computes each candidate move incrementally —
only the moved user's energy terms and the server-time aggregate change —
and a lazy-greedy priority queue (re-validate the top candidate, accept
if still best) avoids rescanning all parts per move.  ``exhaustive=True``
forces the textbook full scan; tests assert both give the same scheme on
small systems.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections.abc import Mapping

import numpy as np

from repro.mec.admission import MIN_REMOTE_LOAD, FCFSQueueAllocation
from repro.mec.energy import transmission_energy, transmission_time
from repro.mec.objective import ObjectiveWeights
from repro.mec.scheme import OffloadingScheme, PartitionedApplication
from repro.mec.system import MECSystem, SystemConsumption

_EPS = 1e-12

GREEDY_KERNELS = ("python", "numpy", "auto")
"""Inner-loop implementations for Algorithm 2's candidate evaluation:
``"python"`` scores candidates one :meth:`PlacementEvaluator.evaluate_move`
at a time, ``"numpy"`` batches whole scans through
:meth:`PlacementEvaluator.evaluate_moves`, ``"auto"`` picks ``numpy``.
Both produce bit-identical move sequences (asserted in tests)."""


@dataclass
class GreedyResult:
    """Final scheme plus the objective trajectory of the greedy loop."""

    scheme: OffloadingScheme
    consumption: SystemConsumption
    moves: list[tuple[str, int]] = field(default_factory=list)
    """Parts moved local, in move order (user id, part id)."""

    history: list[float] = field(default_factory=list)
    """Combined objective after the initial placement and each move."""

    remote_parts: dict[str, set[int]] = field(default_factory=dict)
    """Final part-level placement (user id -> remote part ids)."""

    contention_rounds: int = 0
    """Rate/placement fixed-point iterations run (0 = no shared channel:
    the paper's constant-``b`` evaluation needed no iteration)."""

    effective_rates: dict[str, float] = field(default_factory=dict)
    """The per-user effective uplink rates the *final* greedy round was
    priced at (empty without a shared channel)."""


INITIAL_PLACEMENT_MODES = ("anchored", "dominated", "all-remote")


def initial_placement(
    apps: Mapping[str, PartitionedApplication],
    bisections: Mapping[str, list[tuple[set[int], set[int]]]],
    mode: str = "anchored",
) -> dict[str, set[int]]:
    """Lines 7-8 of Algorithm 2: everything into ``V_2``, then ``V_2'``
    moves to ``V_1``.  The paper leaves ``V_2'`` implicit; three readings
    are provided (*mode*):

    * ``"anchored"`` (default, used by all reproduction experiments) —
      Section III-B says each sub-graph's cut yields "one part executes
      locally, and another part executes remotely": per bisection, the
      side with the heavier traffic toward the user's pinned-local
      functions starts local (ties: the lighter-computation side), the
      other side remote.  Un-split components start remote.
    * ``"dominated"`` — only *communication-dominated* sides (anchor
      traffic exceeding their computation weight) start local; everything
      else starts remote.  Reaches more schemes (remote sets only shrink
      under Algorithm 2's moves) but weakens the link between cut quality
      and transmission cost.
    * ``"all-remote"`` — the literal "insert all parts into V_2" with an
      empty ``V_2'`` (ablation baseline).
    """
    if mode not in INITIAL_PLACEMENT_MODES:
        raise ValueError(
            f"unknown initial placement mode {mode!r}; expected one of "
            f"{INITIAL_PLACEMENT_MODES}"
        )
    placement: dict[str, set[int]] = {}
    for user_id, app in apps.items():
        remote: set[int] = set()
        anchor = {part.part_id: part.anchor_traffic for part in app.parts}
        computation = {part.part_id: part.computation for part in app.parts}

        def side_anchor(side: set[int]) -> float:
            return sum(anchor.get(p, 0.0) for p in side)

        def side_comp(side: set[int]) -> float:
            return sum(computation.get(p, 0.0) for p in side)

        for side_one, side_two in bisections.get(user_id, []):
            if mode == "all-remote":
                remote |= side_one | side_two
                continue
            if mode == "dominated":
                for side in (side_one, side_two):
                    if side and side_anchor(side) <= side_comp(side):
                        remote |= side
                continue
            # mode == "anchored"
            if not side_one or not side_two:
                # Un-split component: Algorithm 2 inserts it into V_2.
                remote |= side_one | side_two
                continue
            anchor_one, anchor_two = side_anchor(side_one), side_anchor(side_two)
            if anchor_one > anchor_two:
                remote |= side_two
            elif anchor_two > anchor_one:
                remote |= side_one
            else:
                # Tie (often no anchors at all): ship the heavier side.
                if side_comp(side_one) >= side_comp(side_two):
                    remote |= side_one
                else:
                    remote |= side_two
        placement[user_id] = remote
    return placement


class PlacementEvaluator:
    """Incremental evaluation of part placements for one MEC system.

    Per user, the part attributes are frozen into numpy arrays indexed by
    ``part_id`` (parts are stored with ``part_id == index``):
    ``computation``, ``anchor_traffic``, the total incident inter-part
    communication ``w_total`` and the communication toward
    currently-remote parts ``w_remote`` (maintained incrementally).  A
    candidate move's cut change is then a closed form over three array
    reads — edges to still-remote parts start crossing, edges to local
    parts stop crossing, anchor traffic stops crossing::

        delta_cut(p) = -anchor[p] + 2 * w_remote[p] - w_total[p]

    so :meth:`evaluate_move` costs O(1) array reads for the device side
    plus the O(active users) server-time aggregate, and only
    :meth:`apply_move` pays O(deg(p)) to refresh neighbors' ``w_remote``.
    """

    def __init__(
        self,
        system: MECSystem,
        apps: Mapping[str, PartitionedApplication],
        remote: Mapping[str, set[int]],
        weights: ObjectiveWeights,
        rates: Mapping[str, float] | None = None,
    ) -> None:
        self.system = system
        self.apps = apps
        self.weights = weights
        self.rates: dict[str, float] = dict(rates or {})
        """Frozen per-user effective uplink rates for this greedy pass.
        Users absent from the mapping are priced at their private device
        bandwidth — exactly the paper's constant-``b`` model.  Under a
        shared channel the caller freezes ``b_i(n)`` from the previous
        fixed-point round so every move evaluation stays O(1) on the
        device side (see :func:`generate_offloading_scheme`)."""
        self.remote: dict[str, set[int]] = {u: set(p) for u, p in remote.items()}

        # Per-part arrays, indexed by part_id, plus the communication
        # adjacency (part -> [(other part, weight)]) used by apply_move.
        self._part_adjacency: dict[str, list[list[tuple[int, float]]]] = {}
        self._comp: dict[str, np.ndarray] = {}
        self._anchor: dict[str, np.ndarray] = {}
        self._w_total: dict[str, np.ndarray] = {}
        self._w_remote: dict[str, np.ndarray] = {}
        for user_id, app in apps.items():
            n_parts = len(app.parts)
            adjacency: list[list[tuple[int, float]]] = [[] for _ in range(n_parts)]
            w_total = np.zeros(n_parts)
            w_remote = np.zeros(n_parts)
            parts_remote = self.remote.get(user_id, set())
            for (i, j), weight in app.inter_comm.items():
                adjacency[i].append((j, weight))
                adjacency[j].append((i, weight))
                w_total[i] += weight
                w_total[j] += weight
                if j in parts_remote:
                    w_remote[i] += weight
                if i in parts_remote:
                    w_remote[j] += weight
            self._part_adjacency[user_id] = adjacency
            self._comp[user_id] = np.array([p.computation for p in app.parts])
            self._anchor[user_id] = np.array([p.anchor_traffic for p in app.parts])
            self._w_total[user_id] = w_total
            self._w_remote[user_id] = w_remote

        # Per-user aggregates under the current placement.
        self._local_w: dict[str, float] = {}
        self._remote_w: dict[str, float] = {}
        self._cut: dict[str, float] = {}
        for user_id, app in apps.items():
            parts_remote = self.remote.get(user_id, set())
            self._local_w[user_id] = app.local_weight(parts_remote)
            self._remote_w[user_id] = app.remote_weight(parts_remote)
            self._cut[user_id] = app.cut_weight(parts_remote)

        self._cached_combined: float | None = None
        self._cached_server_time: float | None = None

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    def _device_terms(self, user_id: str, local_w: float, cut: float) -> tuple[float, float]:
        """(energy, device-side time) for one user's local work and cut.

        The transmission terms go through the shared formula-(4)/(5)
        helpers — the single source of truth also used by
        :meth:`MECSystem._evaluate_user` — at the user's effective rate,
        so the greedy and the system evaluation cannot drift.
        """
        device = self.system.user(user_id).device
        rate = self.rates.get(user_id, device.bandwidth)
        t_c = local_w / device.compute_capacity
        e_c = t_c * device.power_compute
        e_t = transmission_energy(cut, device.power_transmit, rate)
        t_t = transmission_time(cut, rate)
        return e_c + e_t, t_c + t_t

    def _server_time_total(self, loads: Mapping[str, float]) -> float:
        """Sum over users of formula (2)'s remote time, incl. waiting."""
        allocation = self.system.allocation.allocate(self.system.server, loads)
        total = 0.0
        for user_id, load in loads.items():
            if load <= MIN_REMOTE_LOAD:
                # Matches the allocation policies' idle floor: subtraction
                # residue from incremental updates must not count as load.
                continue
            capacity = allocation.capacity_for(user_id)
            total += load / capacity + allocation.waiting_for(user_id)
        return total

    def combined(self) -> float:
        """Scalarised objective of the current placement (cached)."""
        if self._cached_combined is not None:
            return self._cached_combined
        value = 0.0
        for user_id in self.apps:
            energy, device_time = self._device_terms(
                user_id, self._local_w[user_id], self._cut[user_id]
            )
            value += self.weights.energy * energy + self.weights.time * device_time
        # e_c and e_t enter E while t_c and t_t enter T; server time (t_s,
        # waiting included) enters T only.
        value += self.weights.time * self._current_server_time()
        self._cached_combined = value
        return value

    def _current_server_time(self) -> float:
        if self._cached_server_time is None:
            self._cached_server_time = self._server_time_total(self._remote_w)
        return self._cached_server_time

    # ------------------------------------------------------------------
    # Moves
    # ------------------------------------------------------------------
    def _move_deltas(self, user_id: str, part_id: int) -> tuple[float, float, float]:
        """(new_local_w, new_remote_w, new_cut) for user after moving part local."""
        computation = float(self._comp[user_id][part_id])
        delta_cut = float(
            -self._anchor[user_id][part_id]
            + 2.0 * self._w_remote[user_id][part_id]
            - self._w_total[user_id][part_id]
        )
        # Exact arithmetic keeps the cut non-negative; incremental float
        # updates can leave a ~1e-16 residue that the (validating)
        # shared transmission helpers would reject.  Clamp here — the
        # numpy batch path applies the identical np.maximum clamp.
        return (
            self._local_w[user_id] + computation,
            self._remote_w[user_id] - computation,
            max(self._cut[user_id] + delta_cut, 0.0),
        )

    def evaluate_move(self, user_id: str, part_id: int) -> float:
        """Objective value if (user, part) moved local; state unchanged."""
        if part_id not in self.remote.get(user_id, set()):
            raise ValueError(f"part {part_id} of {user_id!r} is not remote")
        new_local, new_remote, new_cut = self._move_deltas(user_id, part_id)

        old_energy, old_time = self._device_terms(
            user_id, self._local_w[user_id], self._cut[user_id]
        )
        new_energy, new_time = self._device_terms(user_id, new_local, new_cut)
        delta_device = self.weights.energy * (new_energy - old_energy) + self.weights.time * (
            new_time - old_time
        )

        loads = dict(self._remote_w)
        loads[user_id] = new_remote
        delta_server = self._server_time_total(loads) - self._current_server_time()
        return self.combined() + delta_device + self.weights.time * delta_server

    def evaluate_moves(self, candidates: list[tuple[str, int]]) -> list[float]:
        """Objective values for a batch of moves; state unchanged.

        Bit-identical to calling :meth:`evaluate_move` per candidate, but
        the device terms and the FCFS server-time aggregate are computed
        as numpy vectors over each user's candidate block — one pass over
        the user population instead of one per candidate.

        The vectorisation leans on two exact-arithmetic facts: elementwise
        numpy arithmetic applies the same IEEE-754 operations in the same
        order as the scalar expressions it replaces, and masking inactive
        candidates by adding ``0.0`` to a non-negative accumulator leaves
        it bit-identical to not adding at all.  The server fold is only
        vectorisable for :class:`FCFSQueueAllocation` (every active user
        gets full capacity and sorted-order queueing); other allocation
        policies fall back to the scalar path.
        """
        if not candidates:
            return []
        if type(self.system.allocation) is not FCFSQueueAllocation:
            return [self.evaluate_move(user_id, part_id) for user_id, part_id in candidates]
        blocks: dict[str, tuple[list[int], list[int]]] = {}
        for position, (user_id, part_id) in enumerate(candidates):
            if part_id not in self.remote.get(user_id, set()):
                raise ValueError(f"part {part_id} of {user_id!r} is not remote")
            positions, part_ids = blocks.setdefault(user_id, ([], []))
            positions.append(position)
            part_ids.append(part_id)

        total = len(candidates)
        delta_device = np.empty(total, dtype=float)
        new_remote = np.empty(total, dtype=float)
        user_positions: dict[str, list[int]] = {}
        for user_id, (positions, part_ids) in blocks.items():
            parts = np.asarray(part_ids, dtype=np.int64)
            computation = self._comp[user_id][parts]
            new_local = self._local_w[user_id] + computation
            new_cut = np.maximum(
                self._cut[user_id]
                + (
                    -self._anchor[user_id][parts]
                    + 2.0 * self._w_remote[user_id][parts]
                    - self._w_total[user_id][parts]
                ),
                0.0,
            )
            new_remote[positions] = self._remote_w[user_id] - computation
            user_positions[user_id] = positions

            device = self.system.user(user_id).device
            rate = self.rates.get(user_id, device.bandwidth)
            old_energy, old_time = self._device_terms(
                user_id, self._local_w[user_id], self._cut[user_id]
            )
            t_c = new_local / device.compute_capacity
            e_c = t_c * device.power_compute
            e_t = new_cut * device.power_transmit / rate
            t_t = new_cut / rate
            delta_device[positions] = self.weights.energy * (
                (e_c + e_t) - old_energy
            ) + self.weights.time * ((t_c + t_t) - old_time)

        delta_server = self._fcfs_server_times(new_remote, user_positions) - (
            self._current_server_time()
        )
        results = self.combined() + delta_device + self.weights.time * delta_server
        return [float(value) for value in results]

    def _fcfs_server_times(
        self, new_remote: np.ndarray, user_positions: Mapping[str, list[int]]
    ) -> np.ndarray:
        """:meth:`_server_time_total` per candidate, one fold for the batch.

        ``new_remote[k]`` is candidate *k*'s own user's load after the
        move; *user_positions* maps each user to the candidate positions
        it owns.  The FCFS folds are replayed exactly — waiting
        accumulates over active users in sorted-id order, the total over
        the load dict's insertion order — but each fold step is one
        vector operation over all candidates: at a step for user *v*, a
        candidate's column carries ``new_remote`` if the candidate
        belongs to *v*, and *v*'s current load otherwise.  Inactive loads
        (at or below ``MIN_REMOTE_LOAD``) contribute ``+ 0.0``, which is
        exact on the non-negative accumulators.
        """
        loads = self._remote_w
        full_capacity = self.system.server.total_capacity
        count = new_remote.shape[0]

        owned: dict[str, np.ndarray] = {}
        for user_id, positions in user_positions.items():
            mask = np.zeros(count, dtype=bool)
            mask[positions] = True
            owned[user_id] = mask
        active_self = new_remote > MIN_REMOTE_LOAD

        waiting: dict[str, np.ndarray | float] = {}
        backlog: np.ndarray | float = 0.0
        for other in sorted(loads):
            mask = owned.get(other)
            if mask is None:
                if loads[other] > MIN_REMOTE_LOAD:
                    waiting[other] = backlog / full_capacity
                    backlog = backlog + loads[other]
                continue
            waiting[other] = backlog / full_capacity
            step = np.where(mask, np.where(active_self, new_remote, 0.0), loads[other])
            if loads[other] <= MIN_REMOTE_LOAD:
                step = np.where(mask, step, 0.0)
            backlog = backlog + step

        totals: np.ndarray = np.zeros(count)
        for other, load in loads.items():
            mask = owned.get(other)
            if mask is None:
                if load > MIN_REMOTE_LOAD:
                    totals = totals + (load / full_capacity + waiting[other])
                continue
            own_term = np.where(
                active_self, new_remote / full_capacity + waiting[other], 0.0
            )
            other_term = (
                load / full_capacity + waiting[other] if load > MIN_REMOTE_LOAD else 0.0
            )
            totals = totals + np.where(mask, own_term, other_term)
        return totals

    def apply_move(self, user_id: str, part_id: int) -> None:
        """Commit the move of (user, part) to local."""
        new_local, new_remote, new_cut = self._move_deltas(user_id, part_id)
        self.remote[user_id].discard(part_id)
        self._local_w[user_id] = new_local
        self._remote_w[user_id] = new_remote
        self._cut[user_id] = new_cut
        # The moved part left the remote set: its neighbors' remote-facing
        # communication drops by the shared edge weight.
        w_remote = self._w_remote[user_id]
        for other, weight in self._part_adjacency[user_id][part_id]:
            w_remote[other] -= weight
        self._cached_combined = None
        self._cached_server_time = None

    def candidates(self) -> list[tuple[str, int]]:
        """All currently-remote (user, part) pairs, in deterministic order."""
        return [
            (user_id, part_id)
            for user_id in sorted(self.remote)
            for part_id in sorted(self.remote[user_id])
        ]


def generate_offloading_scheme(
    system: MECSystem,
    apps: Mapping[str, PartitionedApplication],
    bisections: Mapping[str, list[tuple[set[int], set[int]]]],
    weights: ObjectiveWeights | None = None,
    exhaustive: bool = False,
    placement_mode: str = "anchored",
    frozen_remote: Mapping[str, set[int]] | None = None,
    kernel: str = "auto",
) -> GreedyResult:
    """Run Algorithm 2 and return the generated scheme.

    *weights* scalarises the double objective (defaults to Algorithm 2's
    unweighted sum); *placement_mode* selects the ``V_2'`` reading (see
    :func:`initial_placement`).  *frozen_remote* pins users to existing
    placements (online admission): a frozen user's remote set is taken
    verbatim and none of their parts become candidate moves — they only
    contribute load.  With ``exhaustive=True`` every iteration rescans all
    candidates (the literal Algorithm 2 loop); the default lazy-greedy
    keeps candidates in a priority queue keyed by their last-known
    improvement and re-validates the top entry before accepting — orders
    of magnitude faster on multi-user systems and, because move benefits
    only shrink as the placement drains, virtually always identical.

    *kernel* picks the candidate-scan implementation (see
    :data:`GREEDY_KERNELS`): full scans — the initial queue fill and every
    exhaustive-mode iteration — go through the batched
    :meth:`PlacementEvaluator.evaluate_moves` under ``"numpy"``/``"auto"``,
    while the lazy loop's single-candidate revalidations stay scalar.
    The move sequence is bit-identical across kernels.

    With a :class:`~repro.mec.channel.SharedChannel` on *system*, the
    effective rate every user transmits at depends on who offloads, and
    who offloads depends on the rate — a fixed point.  The greedy
    iterates it: each round freezes ``b_i(n)`` from the previous round's
    co-offloading set, re-runs the full greedy from the same initial
    placement, and stops when the rates reproduce themselves (or after
    ``channel.planning_rounds`` rounds; congestion fixed points can
    oscillate, so the round whose placement evaluates best under its
    *own* contention-consistent rates wins).  Per-part moves can never
    *thin* the co-offloading population — every intermediate placement
    still transmits — so a final whole-user sweep offers each
    contention-limited, unfrozen offloader the switch to fully local
    (and local users their remote set back once spectrum frees up),
    accepting flips that lower the evaluated system objective.  With one
    offloading user and a channel at least as fast as the device link
    the rates equal the private bandwidths, the sweep finds nothing to
    flip, and the result is bit-identical to the constant-``b`` path
    (pinned by the parity tests).
    """
    if kernel not in GREEDY_KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; expected one of {GREEDY_KERNELS}")
    batched = kernel != "python"
    weights = weights or ObjectiveWeights()
    frozen = {uid: set(parts) for uid, parts in (frozen_remote or {}).items()}
    remote = initial_placement(apps, bisections, mode=placement_mode)
    for user_id, parts in frozen.items():
        if user_id in apps:
            remote[user_id] = set(parts)

    def movable(user_id: str, part_id: int) -> bool:
        return user_id not in frozen

    def run_pass(
        rates: Mapping[str, float] | None,
    ) -> tuple[PlacementEvaluator, list[tuple[str, int]], list[float]]:
        """One full greedy descent from the initial placement."""
        evaluator = PlacementEvaluator(system, apps, remote, weights, rates=rates)
        best_value = evaluator.combined()
        history = [best_value]
        moves: list[tuple[str, int]] = []

        def scan_values(scan: list[tuple[str, int]]) -> list[float]:
            if batched:
                return evaluator.evaluate_moves(scan)
            return [evaluator.evaluate_move(user_id, part_id) for user_id, part_id in scan]

        if exhaustive:
            while True:
                best_candidate: tuple[str, int] | None = None
                best_candidate_value = best_value
                scan = [
                    (user_id, part_id)
                    for user_id, part_id in evaluator.candidates()
                    if movable(user_id, part_id)
                ]
                for (user_id, part_id), value in zip(scan, scan_values(scan)):
                    if value < best_candidate_value - _EPS:
                        best_candidate = (user_id, part_id)
                        best_candidate_value = value
                if best_candidate is None:
                    break
                evaluator.apply_move(*best_candidate)
                best_value = best_candidate_value
                history.append(best_value)
                moves.append(best_candidate)
        else:
            # Lazy greedy: heap of (last-known objective-after-move, candidate).
            # heapify and sequential heappush build different internal arrays,
            # but every (value, user, part) key is distinct, so the pop
            # sequence — all the greedy loop observes — is identical.
            scan = [
                (user_id, part_id)
                for user_id, part_id in evaluator.candidates()
                if movable(user_id, part_id)
            ]
            heap: list[tuple[float, str, int]] = [
                (value, user_id, part_id)
                for (user_id, part_id), value in zip(scan, scan_values(scan))
            ]
            heapq.heapify(heap)
            while heap:
                value, user_id, part_id = heapq.heappop(heap)
                if part_id not in evaluator.remote.get(user_id, set()):
                    continue
                current = evaluator.evaluate_move(user_id, part_id)
                if current > value + _EPS:
                    # Stale entry: the move got worse since it was queued.
                    # Requeue with the fresh value unless it can no longer
                    # improve at all.  Each requeue strictly increases the
                    # stored key, so the loop terminates.
                    if current < best_value - _EPS:
                        heapq.heappush(heap, (current, user_id, part_id))
                    continue
                # Fresh value is at least as good as its stored key, which was
                # the heap minimum — accept it if it improves, otherwise no
                # remaining candidate improves (move benefits only shrink as
                # the placement drains) and the loop is done.
                if current >= best_value - _EPS:
                    break
                evaluator.apply_move(user_id, part_id)
                best_value = current
                history.append(best_value)
                moves.append((user_id, part_id))
        return evaluator, moves, history

    channel = system.channel
    contention_rounds = 0
    final_rates: dict[str, float] = {}
    if channel is None:
        evaluator, moves, history = run_pass(None)
        final_remote = evaluator.remote
    else:
        bandwidths = {
            uid: system.user(uid).device.bandwidth for uid in sorted(apps)
        }

        def active_users(placement: Mapping[str, set[int]]) -> list[str]:
            return [
                uid
                for uid in sorted(apps)
                if apps[uid].cut_weight(placement.get(uid, set())) > 0
            ]

        # Round 1 runs at the *uncontended* rates (active set empty →
        # ``n = 1``), i.e. it reproduces the contention-blind greedy
        # exactly; since every round's placement is evaluated under its
        # own contention-consistent rates and the best one wins, the
        # result can never be worse than contention-blind planning
        # evaluated under the channel.  Later rounds freeze the rates
        # the previous round's co-offloading set implies.
        rates = channel.planning_rates(bandwidths, [])
        seen_rates = {tuple(sorted(rates.items()))}
        best_combined = float("inf")
        candidates: dict[str, set[int]] = {}
        for round_index in range(channel.planning_rounds):
            round_evaluator, round_moves, round_history = run_pass(rates)
            contention_rounds += 1
            if round_index == 0:
                # The uncontended pass: each user's remote set here is
                # their best-case offload — the re-offer candidate the
                # sweep below hands back to withdrawn users.
                candidates = {
                    uid: set(parts) for uid, parts in round_evaluator.remote.items()
                }
            actual = system.evaluate_placement(apps, round_evaluator.remote)
            combined = actual.combined(weights)
            if combined < best_combined:
                best_combined = combined
                evaluator, moves, history = round_evaluator, round_moves, round_history
            new_rates = channel.planning_rates(
                bandwidths, active_users(round_evaluator.remote)
            )
            rates_key = tuple(sorted(new_rates.items()))
            if rates_key in seen_rates:
                # Fixed point reached, or the iteration entered a cycle
                # (congestion fixed points can oscillate) — either way
                # no new placements are coming.
                break
            seen_rates.add(rates_key)
            rates = new_rates

        # Withdrawal/re-offer sweep: per-part moves leave every offloader
        # transmitting, so the co-offloading population never shrinks
        # within a pass.  Sweep at whole-user granularity instead: a
        # contention-limited offloader (effective rate strictly below
        # their own link) is offered the switch to fully local, and a
        # local user is offered their pass-final remote set back (the
        # spectrum freed by earlier withdrawals may now make it pay).
        # Flips that lower the evaluated system objective are accepted
        # until a full sweep is quiet.  Frozen users never flip; with a
        # single offloading user at full rate both directions are
        # no-ops, preserving constant-``b`` parity.
        placement = {uid: set(parts) for uid, parts in evaluator.remote.items()}
        consumption = system.evaluate_placement(apps, placement)
        best_combined = consumption.combined(weights)
        improved = True
        while improved:
            improved = False
            for user_id in sorted(placement):
                if user_id in frozen:
                    continue
                if placement[user_id]:
                    rate = consumption.effective_bandwidth.get(user_id)
                    if rate is None or rate >= bandwidths[user_id]:
                        continue
                    alternative: set[int] = set()
                else:
                    alternative = candidates[user_id]
                    if not alternative:
                        continue
                trial = dict(placement)
                trial[user_id] = alternative
                trial_consumption = system.evaluate_placement(apps, trial)
                trial_combined = trial_consumption.combined(weights)
                if trial_combined < best_combined - _EPS:
                    placement = trial
                    consumption = trial_consumption
                    best_combined = trial_combined
                    improved = True
        final_remote = placement
        final_rates = dict(consumption.effective_bandwidth)

    consumption = system.evaluate_placement(apps, final_remote)
    scheme = OffloadingScheme(
        remote_functions={
            user_id: {
                function
                for part in apps[user_id].parts
                if part.part_id in parts
                for function in part.functions
            }
            for user_id, parts in final_remote.items()
        }
    )
    return GreedyResult(
        scheme=scheme,
        consumption=consumption,
        moves=moves,
        history=history,
        remote_parts=final_remote,
        contention_rounds=contention_rounds,
        effective_rates=dict(final_rates),
    )
