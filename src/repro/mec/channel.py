"""Shared-channel contention: load-dependent effective uplink rates.

The paper prices every transmission with a constant per-user bandwidth
``b`` (formulas (4)/(5)), which silently assumes each user owns private
spectrum.  Multiuser resource-allocation work (You & Huang's TDMA/OFDMA
formulation, Chen et al.'s multi-user offloading game — see PAPERS.md)
shows the rate a user actually gets is *load-dependent*: users
co-offloading to the same server share one wireless channel, so the
effective per-user rate falls as the co-offloading population grows.

:class:`SharedChannel` models that contention deterministically:

* a total channel ``capacity`` (data units/s) shared by all users who
  currently transmit (cut weight > 0);
* a per-user :class:`ChannelQuality` — transmission power, channel gain
  and noise in the spirit of the COSIM device model — collapsed into a
  normalised spectral efficiency via ``log2(1 + SNR)``;
* an access scheme (equal-share TDMA to start): ``n`` co-offloading
  users each get a ``1/n`` time share of the spectrum.

The effective rate is always capped by the device's own uplink ``b_i``
— a generous channel can never make a slow handset upload faster than
its physical link — so a *single* offloading user on a channel with
``capacity >= b_i`` and default quality gets exactly ``b_i``: the
contention-aware evaluation degenerates bit-identically to the paper's
constant-``b`` model (pinned by the parity tests).

Everything here is a pure function of its inputs; the fixed-point
iteration that couples rates to offload decisions lives in
:func:`repro.mec.greedy.generate_offloading_scheme`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Collection, Mapping

from repro.utils.rng import RandomSource
from repro.utils.validation import ensure_positive

ACCESS_SCHEMES = ("tdma",)
"""Supported multiple-access disciplines.  ``"tdma"`` gives every
co-offloading user an equal ``1/n`` time share of the spectrum."""

DEFAULT_PLANNING_ROUNDS = 8
"""Fixed-point budget for rate/placement iteration in the greedy."""


@dataclass(frozen=True)
class ChannelQuality:
    """One user's link quality: power, gain and noise (COSIM-style).

    The three physical-layer knobs collapse into a single normalised
    spectral efficiency: ``log2(1 + SNR) / log2(1 + reference_SNR)``,
    so the default quality (``SNR == reference``) is exactly ``1.0``
    and a user's share of the channel scales with how good their link
    actually is.
    """

    transmit_power: float = 1.0
    """Relative transmission power (shapes SNR only; the *energy* price
    of transmission stays the device's ``p_t``)."""

    gain: float = 1.0
    """Channel gain between the user and the server."""

    noise: float = 1.0
    """Noise power on the user's link."""

    def __post_init__(self) -> None:
        ensure_positive(self.transmit_power, "transmit_power")
        ensure_positive(self.gain, "gain")
        ensure_positive(self.noise, "noise")

    @property
    def snr(self) -> float:
        """Signal-to-noise ratio ``p * g / sigma``."""
        return self.transmit_power * self.gain / self.noise

    def efficiency(self, reference_snr: float = 1.0) -> float:
        """Normalised spectral efficiency ``log2(1+SNR)/log2(1+ref)``."""
        ensure_positive(reference_snr, "reference_snr")
        return math.log2(1.0 + self.snr) / math.log2(1.0 + reference_snr)


@dataclass(frozen=True)
class SharedChannel:
    """A wireless channel shared by every user co-offloading to one server.

    ``rate_for`` is the whole model: under equal-share TDMA, ``n``
    active users each get ``capacity * efficiency_i / n``, capped at
    the device's own uplink bandwidth.
    """

    capacity: float
    """Total channel capacity (data units/s) split among active users."""

    access: str = "tdma"
    """Multiple-access scheme (see :data:`ACCESS_SCHEMES`)."""

    reference_snr: float = 1.0
    """SNR at which a user's spectral efficiency is exactly ``1.0``."""

    quality: Mapping[str, ChannelQuality] = field(default_factory=dict)
    """Per-user quality overrides; absent users get the default
    (efficiency exactly ``1.0``)."""

    planning_rounds: int = DEFAULT_PLANNING_ROUNDS
    """Upper bound on greedy rate/placement fixed-point iterations."""

    def __post_init__(self) -> None:
        ensure_positive(self.capacity, "capacity")
        ensure_positive(self.reference_snr, "reference_snr")
        if self.access not in ACCESS_SCHEMES:
            raise ValueError(
                f"unknown access scheme {self.access!r}; expected one of {ACCESS_SCHEMES}"
            )
        if self.planning_rounds < 1:
            raise ValueError(
                f"planning_rounds must be >= 1, got {self.planning_rounds}"
            )

    # ------------------------------------------------------------------
    def quality_for(self, user_id: str) -> ChannelQuality:
        """The user's quality profile (default quality when absent)."""
        return self.quality.get(user_id, ChannelQuality())

    def efficiency_for(self, user_id: str) -> float:
        """The user's normalised spectral efficiency."""
        quality = self.quality.get(user_id)
        if quality is None:
            # Default quality at the reference SNR: exactly 1.0, with no
            # float round-trip through log2 — the single-user parity
            # guarantee rests on this short-circuit.
            return 1.0
        return quality.efficiency(self.reference_snr)

    def rate_for(self, user_id: str, n_active: int, device_bandwidth: float) -> float:
        """Effective uplink rate ``b_i(n)`` for one user.

        ``n_active`` is the number of co-offloading users sharing the
        channel (at least 1 — the user themselves).  The share is capped
        at the device's own link rate: spectrum cannot make a handset
        faster than its radio.
        """
        ensure_positive(device_bandwidth, "device_bandwidth")
        n = max(1, n_active)
        share = self.capacity * self.efficiency_for(user_id) / n
        return min(share, device_bandwidth)

    def planning_rates(
        self, bandwidths: Mapping[str, float], active: Collection[str]
    ) -> dict[str, float]:
        """Effective rate for every known user given the active set.

        *bandwidths* maps user id to device uplink bandwidth; *active*
        is the set of users currently transmitting (cut weight > 0).
        Every user — active or not — is priced at ``b_i(n)`` with ``n``
        the active population (min 1), so a planner evaluating "what if
        this user started transmitting" has a rate to hand; the greedy's
        fixed-point loop re-derives ``n`` from each round's outcome.
        """
        n = max(1, len(active))
        return {
            user_id: self.rate_for(user_id, n, bandwidth)
            for user_id, bandwidth in sorted(bandwidths.items())
        }


def make_quality_profile(
    user_ids: Collection[str], spread: float = 0.0, seed: int = 0
) -> dict[str, ChannelQuality]:
    """Deterministic per-user quality profiles for experiments.

    Each user's channel gain is drawn uniformly from
    ``[1 - spread, 1 + spread]`` via a :class:`RandomSource` keyed by
    *seed* and the user id, so profiles replay identically across runs
    and are independent of iteration order.  ``spread == 0`` returns an
    empty mapping (every user at default quality — the parity regime).
    """
    if not 0.0 <= spread < 1.0:
        raise ValueError(f"spread must be in [0, 1), got {spread}")
    if spread == 0.0:
        return {}
    source = RandomSource(seed)
    return {
        user_id: ChannelQuality(
            gain=source.spawn("channel-gain", user_id).uniform(1.0 - spread, 1.0 + spread)
        )
        for user_id in sorted(user_ids)
    }
