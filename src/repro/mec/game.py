"""Decentralized best-response offloading game (Chen et al. baseline).

The greedy pipeline is a *centralized* planner: one optimiser sees every
user and minimises the system objective.  Chen et al.'s multi-user
offloading work (PAPERS.md) studies the decentralized alternative — each
user selfishly picks the strategy minimising *their own* cost given what
everyone else currently does, and the system settles where no user wants
to move (a Nash equilibrium of the congestion game).

The strategy space here is deliberately binary, matching the paper's
"offload or not" decision:

* **offload** — the user's candidate remote set, computed once by running
  the single-user greedy (Algorithm 2) on a solo system with the same
  server, allocation policy and shared channel; or
* **local** — run everything on the device.

Users best-respond in a seeded-shuffle order (deterministic under a
fixed seed, but not biased by user-id ordering) until a full round
produces no moves.  Costs are each user's own combined ``E + T`` from
the *full* system evaluation, so both congestion couplings — the shared
server allocation and the shared wireless channel — feed the game.

This is a baseline, not an optimiser: the equilibrium is typically worse
than the centralized greedy (the price of anarchy), which is exactly the
comparison ``benchmarks/bench_contention.py`` draws.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.mec.objective import ObjectiveWeights
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem, SystemConsumption
from repro.utils.rng import RandomSource

_EPS = 1e-12

DEFAULT_MAX_ROUNDS = 32
"""Round budget for best-response iteration.  Binary-strategy congestion
games of this size converge in a handful of rounds; the cap only guards
against pathological cost ties."""


@dataclass(frozen=True)
class BestResponseMove:
    """One accepted strategy switch during best-response iteration."""

    round_index: int
    """0-based round in which the move happened."""

    user_id: str

    decision: str
    """The strategy switched *to*: ``"offload"`` or ``"local"``."""

    gain: float
    """The user's own cost reduction from the switch (positive)."""


@dataclass
class BestResponseResult:
    """Equilibrium placement plus the trajectory that reached it."""

    remote_parts: dict[str, set[int]]
    """Part-level placement at the final round (user id -> remote parts)."""

    consumption: SystemConsumption
    """Full-system consumption of the final placement."""

    rounds: int
    """Best-response rounds executed (including the final quiet round)."""

    converged: bool
    """True when the last round produced no moves — a Nash equilibrium
    of the binary offloading game."""

    moves: list[BestResponseMove] = field(default_factory=list)
    """Accepted switches in execution order."""

    offloaders: list[str] = field(default_factory=list)
    """Users offloading a non-empty part set at equilibrium (sorted)."""


def solo_offload_set(
    system: MECSystem,
    user_id: str,
    apps: Mapping[str, PartitionedApplication],
    bisections: Mapping[str, list[tuple[set[int], set[int]]]],
    weights: ObjectiveWeights | None = None,
    placement_mode: str = "anchored",
) -> set[int]:
    """The user's candidate "offload" strategy: their solo-optimal parts.

    Runs the single-user greedy on a system containing only this user —
    same server, allocation policy and shared channel — so the candidate
    set is what the user would pick with the infrastructure to
    themselves.  Congestion then enters through the *game*, not the
    candidate: strategies stay fixed while occupancy decides their cost.
    """
    from repro.mec.greedy import generate_offloading_scheme

    solo = MECSystem(
        server=system.server,
        users=[system.user(user_id)],
        allocation=system.allocation,
        channel=system.channel,
    )
    result = generate_offloading_scheme(
        solo,
        {user_id: apps[user_id]},
        {user_id: bisections.get(user_id, [])},
        weights=weights,
        placement_mode=placement_mode,
    )
    return set(result.remote_parts.get(user_id, set()))


def best_response_equilibrium(
    system: MECSystem,
    apps: Mapping[str, PartitionedApplication],
    bisections: Mapping[str, list[tuple[set[int], set[int]]]],
    weights: ObjectiveWeights | None = None,
    seed: int = 0,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    placement_mode: str = "anchored",
) -> BestResponseResult:
    """Iterate per-user best responses until no user moves.

    Every user starts all-local.  Each round visits the users in a
    seeded-shuffle order; a user switches strategy iff the alternative
    strictly lowers *their own* combined cost under the current play of
    everyone else (shared-server waiting and shared-channel contention
    included).  Terminates when a full round is quiet or after
    *max_rounds* rounds.

    Deterministic: the visit order comes from a
    :class:`~repro.utils.rng.RandomSource` keyed by *seed*, and all
    costs are pure functions of the placement.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    weights = weights or ObjectiveWeights()
    user_ids = sorted(apps)
    candidates = {
        user_id: solo_offload_set(
            system, user_id, apps, bisections, weights, placement_mode
        )
        for user_id in user_ids
    }
    order_source = RandomSource(seed).spawn("best-response")

    placement: dict[str, set[int]] = {user_id: set() for user_id in user_ids}

    def user_cost(user_id: str, trial: Mapping[str, set[int]]) -> float:
        consumption = system.evaluate_placement(apps, trial)
        breakdown = consumption.per_user[user_id]
        return weights.combine(breakdown.energy, breakdown.time)

    moves: list[BestResponseMove] = []
    rounds = 0
    converged = False
    for round_index in range(max_rounds):
        rounds += 1
        moved = False
        for user_id in order_source.spawn(str(round_index)).shuffled(user_ids):
            candidate = candidates[user_id]
            current = placement[user_id]
            alternative = candidate if not current else set()
            if alternative == current:
                continue
            cost_now = user_cost(user_id, placement)
            trial = dict(placement)
            trial[user_id] = alternative
            cost_alt = user_cost(user_id, trial)
            if cost_alt < cost_now - _EPS:
                placement[user_id] = alternative
                moves.append(
                    BestResponseMove(
                        round_index=round_index,
                        user_id=user_id,
                        decision="offload" if alternative else "local",
                        gain=cost_now - cost_alt,
                    )
                )
                moved = True
        if not moved:
            converged = True
            break

    consumption = system.evaluate_placement(apps, placement)
    offloaders = sorted(uid for uid, parts in placement.items() if parts)
    return BestResponseResult(
        remote_parts=placement,
        consumption=consumption,
        rounds=rounds,
        converged=converged,
        moves=moves,
        offloaders=offloaders,
    )
