"""Offloading-scheme validation: is a scheme executable at all?

Planners guarantee feasibility by construction, but schemes also arrive
from outside — a trace file, a hand-written experiment, another tool.
``validate_scheme`` checks every executable-feasibility rule and returns
the full list of violations (not just the first), so callers can report
everything wrong at once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.callgraph.model import FunctionCallGraph
from repro.mec.scheme import OffloadingScheme
from repro.mec.system import MECSystem


@dataclass
class ValidationResult:
    """Outcome of a scheme validation."""

    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the scheme passed every check."""
        return not self.violations

    def raise_if_invalid(self) -> None:
        """Raise ``ValueError`` listing all violations (no-op when ok)."""
        if self.violations:
            summary = "; ".join(self.violations)
            raise ValueError(f"invalid offloading scheme: {summary}")


def validate_scheme(
    system: MECSystem,
    call_graphs: Mapping[str, FunctionCallGraph],
    scheme: OffloadingScheme,
) -> ValidationResult:
    """Check *scheme* against *system* and *call_graphs*.

    Rules:

    * every user in the scheme exists in the system;
    * every user in the system has a call graph;
    * every offloaded function exists in that user's application;
    * no unoffloadable (pinned) function is offloaded.
    """
    result = ValidationResult()
    system_users = {user.user_id for user in system.users}

    for user_id in scheme.remote_functions:
        if user_id not in system_users:
            result.violations.append(f"scheme references unknown user {user_id!r}")

    for user_id in system_users:
        if user_id not in call_graphs:
            result.violations.append(f"user {user_id!r} has no call graph")

    for user_id, remote in scheme.remote_functions.items():
        call_graph = call_graphs.get(user_id)
        if call_graph is None:
            continue
        known = set(call_graph.functions())
        pinned = set(call_graph.unoffloadable_functions())
        for function in sorted(remote):
            if function not in known:
                result.violations.append(
                    f"user {user_id!r} offloads unknown function {function!r}"
                )
            elif function in pinned:
                result.violations.append(
                    f"user {user_id!r} offloads pinned function {function!r}"
                )
    return result
