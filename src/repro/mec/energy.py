"""Energy and time models — formulas (1) through (5) of the paper.

All functions are pure and unit-consistent; :class:`ConsumptionBreakdown`
bundles one user's complete consumption so the system model and the greedy
generator can aggregate and compare placements cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_non_negative, ensure_positive


def local_compute_time(local_weight: float, capacity: float) -> float:
    """Formula (1): ``t_c = sum(w_j, v_j in V_c) / I_c``."""
    ensure_non_negative(local_weight, "local_weight")
    ensure_positive(capacity, "capacity")
    return local_weight / capacity


def remote_compute_time(remote_weight: float, allocated_capacity: float, waiting: float) -> float:
    """Formula (2): ``t_s = sum(w_j, v_j in V_s) / I_s + wt``.

    A user with nothing offloaded spends no server time regardless of
    allocation, so zero remote weight short-circuits to ``0.0`` (and a
    zero allocation is then legal).
    """
    ensure_non_negative(remote_weight, "remote_weight")
    ensure_non_negative(waiting, "waiting")
    if remote_weight == 0.0:
        return 0.0
    ensure_positive(allocated_capacity, "allocated_capacity")
    return remote_weight / allocated_capacity + waiting


def local_energy(local_time: float, power_compute: float) -> float:
    """Formula (3): ``e_c = t_c * p_c``."""
    ensure_non_negative(local_time, "local_time")
    ensure_positive(power_compute, "power_compute")
    return local_time * power_compute


def transmission_energy(cut_weight: float, power_transmit: float, bandwidth: float) -> float:
    """Formula (4): ``e_t = sum s(v_j, v_l) * p_t / b`` over the cut."""
    ensure_non_negative(cut_weight, "cut_weight")
    ensure_positive(power_transmit, "power_transmit")
    ensure_positive(bandwidth, "bandwidth")
    return cut_weight * power_transmit / bandwidth


def transmission_time(cut_weight: float, bandwidth: float) -> float:
    """Formula (5): ``t_t = sum s(v_j, v_l) / b`` over the cut."""
    ensure_non_negative(cut_weight, "cut_weight")
    ensure_positive(bandwidth, "bandwidth")
    return cut_weight / bandwidth


@dataclass(frozen=True)
class ConsumptionBreakdown:
    """One user's complete consumption under a given placement."""

    local_energy: float
    transmission_energy: float
    local_time: float
    remote_time: float
    transmission_time: float
    waiting_time: float

    @property
    def energy(self) -> float:
        """This user's contribution to ``E = Σ e_c + Σ e_t``."""
        return self.local_energy + self.transmission_energy

    @property
    def time(self) -> float:
        """This user's contribution to ``T = Σ t_c + Σ t_s + Σ t_w``.

        ``remote_time`` already includes the waiting term per formula (2);
        the paper's ``T`` lists ``t_w`` separately, so here ``time`` is
        ``t_c + t_s`` with ``t_s`` the waiting-inclusive remote time, plus
        the transmission time the cut imposes on the critical path.
        """
        return self.local_time + self.remote_time + self.transmission_time

    def combined(self, energy_weight: float = 1.0, time_weight: float = 1.0) -> float:
        """Scalarised objective contribution (Algorithm 2's ``E + T``)."""
        return energy_weight * self.energy + time_weight * self.time

    @staticmethod
    def zero() -> "ConsumptionBreakdown":
        """An all-zero breakdown (useful as an accumulator seed)."""
        return ConsumptionBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    def __add__(self, other: "ConsumptionBreakdown") -> "ConsumptionBreakdown":
        return ConsumptionBreakdown(
            self.local_energy + other.local_energy,
            self.transmission_energy + other.transmission_energy,
            self.local_time + other.local_time,
            self.remote_time + other.remote_time,
            self.transmission_time + other.transmission_time,
            self.waiting_time + other.waiting_time,
        )
