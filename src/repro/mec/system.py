"""The multi-user MEC system and its consumption evaluation.

``MECSystem`` binds users (device + application) to the shared edge
server and evaluates any placement — a mapping from user to the set of
parts placed remotely — into the paper's ``E`` and ``T`` totals through
formulas (1)-(5) and the server allocation policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from repro.callgraph.model import FunctionCallGraph
from repro.mec.admission import AllocationPolicy, FCFSQueueAllocation
from repro.mec.channel import SharedChannel
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.energy import (
    ConsumptionBreakdown,
    local_compute_time,
    local_energy,
    remote_compute_time,
    transmission_energy,
    transmission_time,
)
from repro.mec.objective import ObjectiveWeights
from repro.mec.scheme import OffloadingScheme, PartitionedApplication


@dataclass(frozen=True)
class UserContext:
    """One user: their device and their application's call graph."""

    device: MobileDevice
    call_graph: FunctionCallGraph

    @property
    def user_id(self) -> str:
        """The device id doubles as the user id."""
        return self.device.device_id


@dataclass
class SystemConsumption:
    """System-wide totals plus the per-user breakdown."""

    per_user: dict[str, ConsumptionBreakdown] = field(default_factory=dict)

    effective_bandwidth: dict[str, float] = field(default_factory=dict)
    """Per-user effective uplink rate ``b_i(n)`` the transmission terms
    were priced at.  Populated only when the system carries a
    :class:`~repro.mec.channel.SharedChannel`; empty means every user
    was priced at their private device bandwidth (the paper's model)."""

    @property
    def energy(self) -> float:
        """``E = Σ_i e_c^i + Σ_i e_t^i`` (formula (6))."""
        return sum(b.energy for b in self.per_user.values())

    @property
    def local_energy(self) -> float:
        """``Σ_i e_c^i`` — the quantity plotted in Figs. 3 and 6."""
        return sum(b.local_energy for b in self.per_user.values())

    @property
    def transmission_energy(self) -> float:
        """``Σ_i e_t^i`` — the quantity plotted in Figs. 4 and 7."""
        return sum(b.transmission_energy for b in self.per_user.values())

    @property
    def time(self) -> float:
        """``T = Σ_i t_c^i + Σ_i t_s^i + Σ_i t_w^i``."""
        return sum(b.time for b in self.per_user.values())

    def combined(self, weights: ObjectiveWeights | None = None) -> float:
        """Scalarised objective (Algorithm 2's ``E + T`` by default)."""
        weights = weights or ObjectiveWeights()
        return weights.combine(self.energy, self.time)


class MECSystem:
    """The shared-server multi-user system of Section II."""

    def __init__(
        self,
        server: EdgeServer,
        users: list[UserContext],
        allocation: AllocationPolicy | None = None,
        channel: SharedChannel | None = None,
    ) -> None:
        if not users:
            raise ValueError("an MEC system needs at least one user")
        ids = [user.user_id for user in users]
        if len(set(ids)) != len(ids):
            raise ValueError("user ids must be unique")
        self.server = server
        self.users = list(users)
        self.allocation = allocation or FCFSQueueAllocation()
        self.channel = channel
        """Optional shared wireless channel: when set, co-offloading
        users split spectrum and formulas (4)/(5) are priced at the
        load-dependent effective rate ``b_i(n)`` instead of the private
        device bandwidth."""
        self._by_id = {user.user_id: user for user in self.users}

    def user(self, user_id: str) -> UserContext:
        """Return the user with the given id."""
        if user_id not in self._by_id:
            raise KeyError(f"unknown user {user_id!r}")
        return self._by_id[user_id]

    # ------------------------------------------------------------------
    # Placement evaluation
    # ------------------------------------------------------------------
    def evaluate_placement(
        self,
        apps: Mapping[str, PartitionedApplication],
        remote_parts: Mapping[str, set[int]],
    ) -> SystemConsumption:
        """Evaluate a part-level placement into system consumption.

        *apps* maps user id to the partitioned application; *remote_parts*
        maps user id to the part ids placed on the server.  Users absent
        from *remote_parts* run fully locally.

        With a :class:`~repro.mec.channel.SharedChannel` attached, the
        placement itself determines who transmits (cut weight > 0), so
        the effective rates need no iteration here: each user's
        transmission terms are priced at ``b_i(n)`` with ``n`` the
        number of co-offloading users under *this* placement, and the
        rates used are recorded on the returned consumption.
        """
        remote_loads = {
            user.user_id: apps[user.user_id].remote_weight(
                remote_parts.get(user.user_id, set())
            )
            for user in self.users
            if user.user_id in apps
        }
        allocation = self.allocation.allocate(self.server, remote_loads)
        rates = self.effective_rates(apps, remote_parts)

        consumption = SystemConsumption()
        for user in self.users:
            app = apps.get(user.user_id)
            if app is None:
                continue
            parts_remote = remote_parts.get(user.user_id, set())
            consumption.per_user[user.user_id] = self._evaluate_user(
                user, app, parts_remote, allocation.capacity_for(user.user_id),
                allocation.waiting_for(user.user_id),
                bandwidth=rates.get(user.user_id),
            )
        consumption.effective_bandwidth = rates
        return consumption

    def effective_rates(
        self,
        apps: Mapping[str, PartitionedApplication],
        remote_parts: Mapping[str, set[int]],
    ) -> dict[str, float]:
        """Per-user effective uplink rates under the given placement.

        Empty without a shared channel (every user keeps their private
        bandwidth); otherwise ``b_i(n)`` with ``n`` the co-offloading
        population of this placement.
        """
        if self.channel is None:
            return {}
        active = [
            user.user_id
            for user in self.users
            if user.user_id in apps
            and apps[user.user_id].cut_weight(remote_parts.get(user.user_id, set())) > 0
        ]
        bandwidths = {
            user.user_id: user.device.bandwidth
            for user in self.users
            if user.user_id in apps
        }
        return self.channel.planning_rates(bandwidths, active)

    def evaluate_scheme(
        self,
        apps: Mapping[str, PartitionedApplication],
        scheme: OffloadingScheme,
    ) -> SystemConsumption:
        """Evaluate a function-level scheme (convenience over placements)."""
        remote_parts: dict[str, set[int]] = {}
        for user_id, app in apps.items():
            remote = scheme.remote_for(user_id)
            parts = {
                part.part_id
                for part in app.parts
                if part.functions and part.functions <= remote
            }
            remote_parts[user_id] = parts
        return self.evaluate_placement(apps, remote_parts)

    def _evaluate_user(
        self,
        user: UserContext,
        app: PartitionedApplication,
        parts_remote: set[int],
        allocated_capacity: float,
        waiting: float,
        bandwidth: float | None = None,
    ) -> ConsumptionBreakdown:
        device = user.device
        rate = device.bandwidth if bandwidth is None else bandwidth
        local_weight = app.local_weight(parts_remote)
        remote_weight = app.remote_weight(parts_remote)
        cut = app.cut_weight(parts_remote)

        t_c = local_compute_time(local_weight, device.compute_capacity)
        t_s = remote_compute_time(remote_weight, allocated_capacity or 1.0, waiting)
        t_t = transmission_time(cut, rate) if cut > 0 else 0.0
        e_c = local_energy(t_c, device.power_compute)
        e_t = transmission_energy(cut, device.power_transmit, rate) if cut > 0 else 0.0

        return ConsumptionBreakdown(
            local_energy=e_c,
            transmission_energy=e_t,
            local_time=t_c,
            remote_time=t_s,
            transmission_time=t_t,
            waiting_time=waiting if remote_weight > 0 else 0.0,
        )
