"""Spectral graph machinery (Section III-B, Theorems 1-3).

The minimum-cut stage of the paper rests on the spectrum of the graph
Laplacian: the eigenvector of the second-smallest eigenvalue (the Fiedler
vector) encodes the bisection.  This package provides:

* from-scratch eigensolvers (deflated power iteration, Lanczos) validated
  against numpy/scipy in the test suite;
* a :class:`FiedlerSolver` with dense, sparse, power, lanczos and
  distributed backends;
* spectral bisection (the ``split`` of Algorithm 2) and a k-way spectral
  clustering extension;
* the Theorem 2 quadratic-form identity used by the property tests.
"""

from repro.spectral.bisection import BisectionResult, spectral_bisect
from repro.spectral.cheeger import (
    cheeger_bounds,
    graph_conductance,
    normalized_lambda2,
    sweep_cut,
)
from repro.spectral.clustering import kmeans, spectral_clustering
from repro.spectral.eigen import (
    dominant_eigenpair,
    power_iteration,
    smallest_nontrivial_laplacian_eigenpair,
)
from repro.spectral.fiedler import FiedlerResult, FiedlerSolver
from repro.spectral.lanczos import lanczos_smallest_nontrivial
from repro.spectral.recursive import RecursivePartition, recursive_spectral_partition
from repro.spectral.theory import (
    cut_value_quadratic_form,
    indicator_vector,
    rayleigh_quotient,
)

__all__ = [
    "power_iteration",
    "dominant_eigenpair",
    "smallest_nontrivial_laplacian_eigenpair",
    "lanczos_smallest_nontrivial",
    "FiedlerSolver",
    "FiedlerResult",
    "spectral_bisect",
    "BisectionResult",
    "recursive_spectral_partition",
    "RecursivePartition",
    "cheeger_bounds",
    "sweep_cut",
    "graph_conductance",
    "normalized_lambda2",
    "spectral_clustering",
    "kmeans",
    "cut_value_quadratic_form",
    "indicator_vector",
    "rayleigh_quotient",
]
