"""Lanczos iteration for the smallest non-trivial Laplacian eigenpair.

Power iteration converges slowly when ``lambda_2`` is close to ``lambda_3``;
the Lanczos process builds a Krylov basis whose Ritz pairs converge far
faster on the spectrum's edges.  This is the workhorse the paper's Spark
deployment would run as repeated distributed mat-vecs.

Implementation notes: full reorthogonalisation (the graphs here are small
enough that the O(n*k) cost is irrelevant and it removes the classic ghost
eigenvalue problem), plus explicit deflation of the constant vector, which
is the known 0-eigenvector of a connected Laplacian.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

MatVec = Callable[[np.ndarray], np.ndarray]


def lanczos_smallest_nontrivial(
    laplacian: np.ndarray,
    matvec: MatVec | None = None,
    max_steps: int | None = None,
    tol: float = 1e-10,
    seed: int = 7,
    start: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Return the Fiedler pair ``(lambda_2, v_2)`` via Lanczos.

    *matvec* overrides the dense product (hook for the distributed
    backend).  The Krylov space is built orthogonally to the constant
    vector, so the trivial 0-eigenpair never appears; the smallest Ritz
    pair is then exactly the Fiedler pair.  *start* seeds the Krylov
    space (warm start); a start vector that vanishes under deflation
    falls back to the seeded random vector.
    """
    laplacian = np.asarray(laplacian, dtype=float)
    n = laplacian.shape[0]
    if n == 0:
        raise ValueError("empty Laplacian")
    if n == 1:
        return 0.0, np.zeros(1)

    base_matvec = matvec or (lambda x: laplacian @ x)
    ones = np.full(n, 1.0 / np.sqrt(n))
    steps = min(n - 1, max_steps if max_steps is not None else max(2 * int(np.sqrt(n)) + 20, 30))

    rng = np.random.default_rng(seed)
    if start is not None:
        q = np.array(start, dtype=float)
        if q.shape != (n,):
            raise ValueError(f"start vector must have shape ({n},), got {q.shape}")
    else:
        q = rng.standard_normal(n)
    q -= (ones @ q) * ones
    norm = np.linalg.norm(q)
    if norm == 0 and start is not None:
        q = rng.standard_normal(n)
        q -= (ones @ q) * ones
        norm = np.linalg.norm(q)
    if norm == 0:
        raise np.linalg.LinAlgError("start vector vanished under deflation")
    q /= norm

    basis = [q]
    alphas: list[float] = []
    betas: list[float] = []
    previous = np.zeros(n)
    beta = 0.0

    for step in range(steps):
        w = base_matvec(basis[-1])
        alpha = float(basis[-1] @ w)
        alphas.append(alpha)
        w = w - alpha * basis[-1] - beta * previous
        # Full reorthogonalisation against the constant vector and basis.
        w -= (ones @ w) * ones
        for b in basis:
            w -= (b @ w) * b
        beta = float(np.linalg.norm(w))
        if beta < tol:
            break
        betas.append(beta)
        previous = basis[-1]
        basis.append(w / beta)

    tridiagonal = np.diag(alphas)
    for i, b in enumerate(betas[: len(alphas) - 1]):
        tridiagonal[i, i + 1] = b
        tridiagonal[i + 1, i] = b

    ritz_values, ritz_vectors = np.linalg.eigh(tridiagonal)
    smallest = int(np.argmin(ritz_values))
    coefficients = ritz_vectors[:, smallest]
    vector = np.zeros(n)
    # basis can hold one more vector than coefficients when the beta
    # tolerance break fires after extending the basis; the extra vector
    # has no Ritz weight, so the shorter zip is the correct contraction.
    for coefficient, b in zip(coefficients, basis, strict=False):
        vector += coefficient * b
    norm = np.linalg.norm(vector)
    if norm > 0:
        vector /= norm
    return max(float(ritz_values[smallest]), 0.0), vector
