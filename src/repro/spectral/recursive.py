"""Recursive spectral partitioning (extension beyond the paper).

The paper cuts each compressed sub-graph exactly once ("we just partition
each sub-graph into two parts ... to reduce the number in the
communication").  Its conclusion lists reducing complexity / exploring
variants as future work; the natural variant is *recursive* bisection:
keep splitting the heaviest parts while each split's cut stays cheap
relative to the computation it unlocks.

``recursive_spectral_partition`` stops splitting a part when any of:

* the part has fewer than ``min_part_size`` nodes;
* the maximum number of parts is reached;
* the split's cut weight exceeds ``max_cut_ratio`` times the part's total
  node weight (the split would cost more communication than the
  flexibility is worth — the same balance Algorithm 2 optimises).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph
from repro.spectral.bisection import spectral_bisect
from repro.spectral.fiedler import FiedlerSolver

NodeId = Hashable


@dataclass
class RecursivePartition:
    """Outcome of a recursive spectral partition."""

    parts: list[set[NodeId]]
    cut_total: float
    splits: int
    rejected_splits: int = 0
    split_tree: list[tuple[int, int, int]] = field(default_factory=list)
    """(parent part index, child one, child two) per accepted split, with
    indices referring to the *final* parts list for children and the
    pre-split list for parents (parents are replaced in place)."""


def recursive_spectral_partition(
    graph: WeightedGraph,
    max_parts: int = 8,
    min_part_size: int = 2,
    max_cut_ratio: float = 0.5,
    solver: FiedlerSolver | None = None,
) -> RecursivePartition:
    """Partition *graph* into up to *max_parts* parts by recursive bisection.

    Splits are applied greedily to the current heaviest part (by node
    weight); a candidate split is rejected when its cut exceeds
    ``max_cut_ratio * part weight``, and a rejected part is never retried.
    """
    if max_parts < 1:
        raise ValueError(f"max_parts must be >= 1, got {max_parts}")
    if min_part_size < 1:
        raise ValueError(f"min_part_size must be >= 1, got {min_part_size}")
    if max_cut_ratio < 0:
        raise ValueError(f"max_cut_ratio must be >= 0, got {max_cut_ratio}")
    solver = solver or FiedlerSolver()

    parts: list[set[NodeId]] = [set(graph.nodes())]
    frozen: set[int] = set()
    cut_total = 0.0
    splits = 0
    rejected = 0
    tree: list[tuple[int, int, int]] = []

    def part_weight(part: set[NodeId]) -> float:
        return sum(graph.node_weight(n) for n in part)

    while len(parts) < max_parts:
        # Heaviest splittable part.
        candidates = [
            i
            for i, part in enumerate(parts)
            if i not in frozen and len(part) >= 2 * min_part_size
        ]
        if not candidates:
            break
        target = max(candidates, key=lambda i: part_weight(parts[i]))
        subgraph = graph.subgraph(parts[target])
        result = spectral_bisect(subgraph, solver)
        if not result.part_one or not result.part_two:
            frozen.add(target)
            continue
        weight = part_weight(parts[target])
        if weight > 0 and result.cut_value > max_cut_ratio * weight:
            frozen.add(target)
            rejected += 1
            continue
        # Accept: replace the parent with child one, append child two.
        parts[target] = set(result.part_one)
        parts.append(set(result.part_two))
        tree.append((target, target, len(parts) - 1))
        cut_total += result.cut_value
        splits += 1

    return RecursivePartition(
        parts=parts,
        cut_total=cut_total,
        splits=splits,
        rejected_splits=rejected,
        split_tree=tree,
    )
