"""Conductance, the Cheeger bound, and a sweep-cut refinement.

Theorem 1 ties the paper's minimum cut to ``lambda_2``.  The classical
quantitative version is Cheeger's inequality for the normalized
Laplacian:

    lambda_2 / 2  <=  phi(G)  <=  sqrt(2 * lambda_2)

where ``phi(G)`` is the graph's conductance (the normalized min cut).
Two uses here:

* the property tests check the inequality on arbitrary graphs — an
  independent certification of the whole spectral stack;
* :func:`sweep_cut` implements the constructive half of the proof: scan
  the Fiedler order's prefixes and return the best-conductance one.  It
  is offered as an alternative split rule (often better than the raw
  sign split on irregular graphs).
"""

from __future__ import annotations

from collections.abc import Hashable

import numpy as np

from repro.graphs.laplacian import normalized_laplacian_matrix
from repro.graphs.metrics import conductance, volume
from repro.graphs.weighted_graph import WeightedGraph
from repro.spectral.fiedler import FiedlerSolver

NodeId = Hashable


def normalized_lambda2(graph: WeightedGraph) -> float:
    """Second-smallest eigenvalue of the symmetric normalized Laplacian."""
    if graph.node_count < 2:
        raise ValueError("need at least 2 nodes")
    matrix = normalized_laplacian_matrix(graph)
    values = np.linalg.eigvalsh(matrix)
    return max(float(values[1]), 0.0)


def graph_conductance(graph: WeightedGraph) -> tuple[float, set[NodeId]]:
    """Best (minimum) conductance over Fiedler sweep prefixes.

    Not the exact ``phi(G)`` (which is NP-hard); the sweep bound is the
    certified approximation from Cheeger's inequality, which is exactly
    what the property tests need.
    """
    phi, side = sweep_cut(graph)
    return phi, side


def sweep_cut(
    graph: WeightedGraph, solver: FiedlerSolver | None = None
) -> tuple[float, set[NodeId]]:
    """The Cheeger sweep: best-conductance prefix of the spectral order.

    Nodes are ordered by the ``D^{-1/2}``-scaled second eigenvector of
    the *normalized* Laplacian — the embedding for which the constructive
    half of Cheeger's inequality guarantees a prefix with conductance at
    most ``sqrt(2 lambda_2)``.  (Sweeping the combinatorial Fiedler order
    is close in practice but carries no such certificate on weighted
    irregular graphs.)  Every prefix's conductance is evaluated
    incrementally, so the sweep is O(n log n + m) after the eigensolve.

    *solver* is accepted for API symmetry with the bisection helpers but
    only consulted for degenerate sizes; the ordering itself needs the
    normalized spectrum, computed densely here (the sweep is an analysis
    tool, not the planner's hot path).
    """
    n = graph.node_count
    if n < 2:
        raise ValueError("need at least 2 nodes to sweep")

    node_order = graph.node_list()
    normalized = normalized_laplacian_matrix(graph, node_order)
    _, vectors = np.linalg.eigh(normalized)
    second = vectors[:, 1]
    degrees = np.array([graph.weighted_degree(node) for node in node_order])
    with np.errstate(divide="ignore"):
        scaling = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    embedding = second * scaling
    entry = {node: float(embedding[i]) for i, node in enumerate(node_order)}
    order = sorted(node_order, key=lambda node: (entry[node], str(node)))

    total_volume = volume(graph, graph.nodes())
    inside: set[NodeId] = set()
    cut = 0.0
    vol = 0.0
    best_phi = float("inf")
    best_k = 1
    for k, node in enumerate(order[:-1], start=1):
        # Adding `node`: edges to inside stop crossing, others start.
        for neighbor, weight in graph.neighbor_items(node):
            if neighbor in inside:
                cut -= weight
            else:
                cut += weight
        inside.add(node)
        vol += graph.weighted_degree(node)
        denominator = min(vol, total_volume - vol)
        phi = 0.0 if denominator == 0 else cut / denominator
        if phi < best_phi:
            best_phi = phi
            best_k = k
    best_side = set(order[:best_k])
    return conductance(graph, best_side), best_side


def cheeger_bounds(graph: WeightedGraph) -> tuple[float, float, float]:
    """Return ``(lambda_2 / 2, sweep conductance, sqrt(2 lambda_2))``.

    The middle value is certified to lie within the outer two by
    Cheeger's inequality (for connected graphs); the property tests
    assert exactly that.
    """
    lam = normalized_lambda2(graph)
    phi, _ = sweep_cut(graph)
    return lam / 2.0, phi, float(np.sqrt(2.0 * lam))
