"""Spectral bisection: the ``split`` step of Algorithm 2.

The Fiedler vector's sign pattern bipartitions the graph; Theorem 1 ties
the resulting cut to ``lambda_2``.  Degenerate sign patterns (all entries
one sign, which happens on very symmetric or numerically flat spectra) are
resolved by a median split so neither side is ever empty for ``n >= 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

import numpy as np

from repro.graphs.weighted_graph import WeightedGraph
from repro.spectral.fiedler import FiedlerResult, FiedlerSolver

NodeId = Hashable


@dataclass
class BisectionResult:
    """A two-way split of a graph with its cut value."""

    part_one: set[NodeId]
    part_two: set[NodeId]
    cut_value: float
    fiedler: FiedlerResult

    @property
    def balance(self) -> float:
        """|part_one| / n — 0.5 is a perfectly balanced split."""
        total = len(self.part_one) + len(self.part_two)
        if total == 0:
            return 0.0
        return len(self.part_one) / total


def spectral_bisect(
    graph: WeightedGraph,
    solver: FiedlerSolver | None = None,
    balanced: bool = False,
) -> BisectionResult:
    """Bisect *graph* by the sign of its Fiedler vector.

    With ``balanced=True`` the split is at the median Fiedler entry
    instead of zero, trading cut weight for balanced part sizes (useful
    as an ablation; the paper's pipeline uses the sign split).

    A single-node graph returns that node in ``part_one`` and an empty
    ``part_two`` with cut 0 — Algorithm 2 then simply has one part to place.
    """
    solver = solver or FiedlerSolver()
    result = solver.solve(graph)
    order = result.order

    if graph.node_count <= 1:
        return BisectionResult(set(order), set(), 0.0, result)

    threshold = float(np.median(result.vector)) if balanced else 0.0
    part_one = {node for node, entry in zip(order, result.vector, strict=True) if entry >= threshold}
    part_two = set(order) - part_one

    if not part_one or not part_two:
        part_one, part_two = _median_fallback(order, result.vector)

    cut = graph.cut_weight(part_one)
    return BisectionResult(part_one, part_two, cut, result)


def _median_fallback(
    order: list[NodeId], vector: np.ndarray
) -> tuple[set[NodeId], set[NodeId]]:
    """Split at the median rank when the sign split degenerates."""
    ranking = sorted(range(len(order)), key=lambda i: (float(vector[i]), i))
    half = len(order) // 2
    low = {order[i] for i in ranking[:half]}
    high = set(order) - low
    return high, low
