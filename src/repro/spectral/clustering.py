"""k-way spectral clustering (extension beyond the paper's 2-way split).

The paper bisects each compressed sub-graph.  A natural extension — listed
as future work ("explore different ways to reduce the computational
complexity") — is to cut a sub-graph into k parts at once using the first
k Laplacian eigenvectors and k-means on the spectral embedding.  We ship
it as an opt-in planner mode and an ablation bench.

The k-means here is a small, seeded, from-scratch Lloyd's algorithm with
k-means++ initialisation — no sklearn dependency.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro.graphs.laplacian import laplacian_matrix
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def kmeans(
    points: np.ndarray,
    k: int,
    seed: int = 7,
    max_iter: int = 100,
    restarts: int = 4,
) -> np.ndarray:
    """Cluster rows of *points* into *k* groups; returns integer labels.

    Lloyd's algorithm with k-means++ seeding, best of *restarts* runs by
    within-cluster sum of squares.  Deterministic for a fixed seed.
    """
    points = np.asarray(points, dtype=float)
    n = points.shape[0]
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    if n == 0:
        return np.zeros(0, dtype=int)
    if k >= n:
        return np.arange(n, dtype=int) % k

    rng = np.random.default_rng(seed)
    best_labels: np.ndarray | None = None
    best_inertia = np.inf
    for _ in range(max(1, restarts)):
        centers = _kmeans_pp_init(points, k, rng)
        labels = np.zeros(n, dtype=int)
        for _ in range(max_iter):
            distances = ((points[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            new_labels = distances.argmin(axis=1)
            if np.array_equal(new_labels, labels) and _ > 0:
                break
            labels = new_labels
            for j in range(k):
                members = points[labels == j]
                if len(members) > 0:
                    centers[j] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the farthest point.
                    farthest = distances.min(axis=1).argmax()
                    centers[j] = points[farthest]
        inertia = float(
            ((points - centers[labels]) ** 2).sum()
        )
        if inertia < best_inertia:
            best_inertia = inertia
            best_labels = labels.copy()
    assert best_labels is not None
    return best_labels


def _kmeans_pp_init(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """k-means++ center initialisation."""
    n = points.shape[0]
    centers = [points[int(rng.integers(n))]]
    for _ in range(1, k):
        distances = np.min(
            [((points - c) ** 2).sum(axis=1) for c in centers], axis=0
        )
        total = distances.sum()
        if total == 0:
            centers.append(points[int(rng.integers(n))])
            continue
        probabilities = distances / total
        centers.append(points[int(rng.choice(n, p=probabilities))])
    return np.array(centers, dtype=float)


def spectral_clustering(
    graph: WeightedGraph,
    k: int,
    seed: int = 7,
) -> dict[NodeId, int]:
    """Partition *graph* into *k* clusters via the spectral embedding.

    Rows of the first *k* Laplacian eigenvectors (skipping the trivial
    constant one) embed the nodes; k-means groups them.  Returns
    ``{node: cluster index}``.
    """
    if k <= 0:
        raise ValueError(f"k must be > 0, got {k}")
    order = graph.node_list()
    n = len(order)
    if n == 0:
        return {}
    if k == 1 or n <= k:
        return {node: min(i, k - 1) for i, node in enumerate(order)}

    laplacian = laplacian_matrix(graph, order)
    _, vectors = np.linalg.eigh(laplacian)
    embedding = vectors[:, 1 : min(k, n)]
    labels = kmeans(embedding, k, seed=seed)
    return {node: int(label) for node, label in zip(order, labels, strict=True)}
