"""From-scratch eigensolvers for the graph Laplacian.

These implement the linear algebra the paper runs on Spark: repeated
matrix-vector products.  The production path (``FiedlerSolver``) defaults
to numpy/scipy for speed, but these reference solvers (a) document the
mathematics, (b) are what the mini-Spark substrate parallelises for the
Fig. 9 comparison, and (c) are cross-validated against numpy in tests.

The Fiedler pair is extracted with the classic spectral-shift trick: for a
Laplacian ``L`` with Gershgorin bound ``c >= lambda_max``, the matrix
``M = c I - L`` has eigenvalues ``c - lambda_i`` with the same
eigenvectors, so the *second largest* of ``M`` — reachable by power
iteration with the constant vector deflated — is exactly the Fiedler pair.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

MatVec = Callable[[np.ndarray], np.ndarray]


def power_iteration(
    matvec: MatVec,
    n: int,
    deflate: list[np.ndarray] | None = None,
    tol: float = 1e-10,
    max_iter: int = 5000,
    seed: int = 7,
    start: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Power iteration on an implicit symmetric PSD matrix.

    *matvec* computes ``M @ x``; *deflate* is an orthonormal list of
    eigenvectors to project out each step (deflation), so the iteration
    converges to the dominant eigenpair of the orthogonal complement.
    *start*, when given, seeds the iteration (warm start); a start
    vector that vanishes under deflation falls back to the seeded
    random vector, so a bad warm start can slow convergence but never
    change the answer.

    Returns ``(eigenvalue, unit eigenvector)``.  Convergence is declared
    when the iterate moves by less than *tol* in the 2-norm.
    """
    if n <= 0:
        raise ValueError(f"dimension must be > 0, got {n}")
    deflate = deflate or []
    rng = np.random.default_rng(seed)
    if start is not None:
        x = np.array(start, dtype=float)
        if x.shape != (n,):
            raise ValueError(f"start vector must have shape ({n},), got {x.shape}")
    else:
        x = rng.standard_normal(n)
    x = _project_out(x, deflate)
    norm = np.linalg.norm(x)
    if norm == 0 and start is not None:
        x = _project_out(rng.standard_normal(n), deflate)
        norm = np.linalg.norm(x)
    if norm == 0:
        raise np.linalg.LinAlgError("start vector vanished under deflation")
    x /= norm

    eigenvalue = 0.0
    for _ in range(max_iter):
        y = matvec(x)
        y = _project_out(y, deflate)
        norm = np.linalg.norm(y)
        if norm < 1e-300:
            # M annihilates the complement: the dominant eigenvalue there is 0.
            return 0.0, x
        y /= norm
        eigenvalue = float(y @ matvec(y))
        if np.linalg.norm(y - np.sign(y @ x + 1e-300) * x) < tol:
            return eigenvalue, y
        x = y
    return eigenvalue, x


def dominant_eigenpair(
    matrix: np.ndarray, tol: float = 1e-10, max_iter: int = 5000, seed: int = 7
) -> tuple[float, np.ndarray]:
    """Dominant eigenpair of a dense symmetric PSD matrix via power iteration."""
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"matrix must be square, got shape {matrix.shape}")
    return power_iteration(
        lambda x: matrix @ x, matrix.shape[0], tol=tol, max_iter=max_iter, seed=seed
    )


def gershgorin_bound(laplacian: np.ndarray) -> float:
    """Upper bound on the largest Laplacian eigenvalue (row-sum bound).

    For ``L = D - A`` every Gershgorin disc is centred at ``d_i`` with
    radius ``d_i``, so ``lambda_max <= 2 max_i d_i``.
    """
    diagonal = np.diag(laplacian)
    return float(2.0 * diagonal.max()) if diagonal.size else 0.0


def smallest_nontrivial_laplacian_eigenpair(
    laplacian: np.ndarray,
    matvec: MatVec | None = None,
    tol: float = 1e-10,
    max_iter: int = 20000,
    seed: int = 7,
    start: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """The Fiedler pair ``(lambda_2, v_2)`` via deflated power iteration.

    *matvec*, when given, overrides the dense product ``laplacian @ x``
    (this is the hook the distributed backend uses).  The constant vector
    (the known 0-eigenvector of a connected graph's Laplacian) is deflated;
    power iteration then finds the dominant pair of ``c I - L`` restricted
    to the complement, which maps back to ``lambda_2 = c - mu``.  *start*
    seeds the iteration — the warm-start hook: a previous Fiedler vector
    of a structurally similar graph converges in far fewer steps.
    """
    laplacian = np.asarray(laplacian, dtype=float)
    n = laplacian.shape[0]
    if n == 0:
        raise ValueError("empty Laplacian")
    if n == 1:
        return 0.0, np.zeros(1)

    shift = gershgorin_bound(laplacian)
    if shift == 0.0:
        # Edgeless graph: every vector is a 0-eigenvector; return a fixed
        # representative orthogonal to the constant vector.
        vector = np.zeros(n)
        vector[0] = 1.0
        vector -= vector.mean()
        return 0.0, vector / np.linalg.norm(vector)

    base_matvec = matvec or (lambda x: laplacian @ x)
    ones = np.full(n, 1.0 / np.sqrt(n))

    def shifted(x: np.ndarray) -> np.ndarray:
        return shift * x - base_matvec(x)

    mu, vector = power_iteration(
        shifted, n, deflate=[ones], tol=tol, max_iter=max_iter, seed=seed, start=start
    )
    lambda2 = shift - mu
    # Numerical floor: eigenvalues of a PSD matrix cannot be negative.
    return max(lambda2, 0.0), vector


def _project_out(x: np.ndarray, basis: list[np.ndarray]) -> np.ndarray:
    """Project *x* onto the orthogonal complement of *basis* vectors."""
    for b in basis:
        x = x - (b @ x) * b
    return x
