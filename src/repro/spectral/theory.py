"""The quadratic-form identities behind Theorems 1-3.

Theorem 2 of the paper: for an indicator vector ``q`` taking value ``d1``
on one side of a cut and ``d2`` on the other,

    CUT(G1, G2) = (q^T L q) / (d1 - d2)^2.

These helpers make that identity executable so the property-based tests
can check it on arbitrary random graphs and arbitrary bipartitions — the
strongest possible validation that our Laplacian, cut computation and
spectral reasoning agree with each other.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence

import numpy as np

from repro.graphs.laplacian import laplacian_matrix
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def indicator_vector(
    order: Sequence[NodeId],
    part_one: Iterable[NodeId],
    d1: float = 1.0,
    d2: float = -1.0,
) -> np.ndarray:
    """Return the Theorem-2 indicator: ``d1`` on *part_one*, ``d2`` elsewhere."""
    if d1 == d2:
        raise ValueError("d1 and d2 must differ")
    inside = set(part_one)
    return np.array([d1 if node in inside else d2 for node in order], dtype=float)


def cut_value_quadratic_form(
    graph: WeightedGraph,
    part_one: Iterable[NodeId],
    d1: float = 1.0,
    d2: float = -1.0,
) -> float:
    """Evaluate ``CUT`` through the Theorem-2 identity (not by edge scan).

    Equal to ``graph.cut_weight(part_one)`` up to floating-point error;
    the property tests assert exactly that.
    """
    order = graph.node_list()
    q = indicator_vector(order, part_one, d1, d2)
    laplacian = laplacian_matrix(graph, order)
    return float(q @ laplacian @ q) / (d1 - d2) ** 2


def rayleigh_quotient(laplacian: np.ndarray, vector: np.ndarray) -> float:
    """``(x^T L x) / (x^T x)`` — the variational form behind Theorem 3."""
    denominator = float(vector @ vector)
    if denominator == 0:
        raise ValueError("vector must be non-zero")
    return float(vector @ laplacian @ vector) / denominator
