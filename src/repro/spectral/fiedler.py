"""The Fiedler solver: one interface, five backends.

``FiedlerSolver`` computes the second-smallest Laplacian eigenpair of a
graph.  Backends:

* ``dense``   — full ``numpy.linalg.eigh`` (exact; O(n^3); small graphs);
* ``sparse``  — ``scipy.sparse.linalg.eigsh`` shift-invert (large graphs);
* ``power``   — from-scratch deflated power iteration (reference);
* ``lanczos`` — from-scratch Lanczos (reference, faster convergence);
* ``auto``    — dense below a size threshold, sparse above.

The distributed backend used for the Fig. 9 "with Spark" series lives in
:mod:`repro.distributed.spark_spectral`; it reuses the ``power``/``lanczos``
solvers here by injecting a cluster-backed matvec.
"""

from __future__ import annotations

import enum
import logging
import threading
from collections import OrderedDict
from collections.abc import Hashable, Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy.sparse.linalg import ArpackError, eigsh

from repro.graphs.csr import CSRGraph, as_csr
from repro.graphs.laplacian import laplacian_matrix, sparse_laplacian
from repro.graphs.weighted_graph import WeightedGraph
from repro.spectral.eigen import smallest_nontrivial_laplacian_eigenpair
from repro.spectral.lanczos import lanczos_smallest_nontrivial

NodeId = Hashable

_LOG = logging.getLogger(__name__)

_DENSE_CUTOFF = 600

_WARM_CACHE_SIZE = 128


class FiedlerMethod(enum.Enum):
    """Available eigensolver backends."""

    AUTO = "auto"
    DENSE = "dense"
    SPARSE = "sparse"
    POWER = "power"
    LANCZOS = "lanczos"


@dataclass
class FiedlerResult:
    """The second-smallest Laplacian eigenpair of a graph."""

    value: float
    """``lambda_2``, the algebraic connectivity (Theorem 1's cut bound)."""

    vector: np.ndarray
    """The Fiedler vector, aligned with :attr:`order`."""

    order: list[NodeId]
    """Node order indexing :attr:`vector`."""

    method: str
    """Backend that produced the result."""

    _index: dict[NodeId, int] | None = field(default=None, repr=False, compare=False)
    """Lazy node -> position map backing :meth:`entry`."""

    def entry(self, node: NodeId) -> float:
        """Fiedler-vector entry for *node* (O(1) after the first call)."""
        if self._index is None:
            self._index = {node: i for i, node in enumerate(self.order)}
        return float(self.vector[self._index[node]])


class FiedlerSolver:
    """Computes Fiedler pairs with a configurable backend.

    With ``warm_start=True`` the solver keeps a small LRU cache of
    previously computed Fiedler vectors keyed by
    :meth:`~repro.graphs.csr.CSRGraph.structure_signature` and seeds the
    iterative backends (``sparse``'s ``eigsh v0``, ``power``'s and
    ``lanczos``'s start vector) with the last vector seen for that
    structure — structurally recurring graphs (the common case under
    content-affine serving) then converge in far fewer iterations.  Warm
    starts are **off by default**: iterative solvers started from a
    different vector may converge to a result differing in the last
    floating-point bits, which breaks callers that assert bit-identical
    plans across repeated runs (e.g. the serve-bench cold-vs-cached
    parity check).  A stale or colliding cache entry can only slow
    convergence, never change correctness.

    >>> from repro.graphs.generators import path_graph
    >>> solver = FiedlerSolver()
    >>> result = solver.solve(path_graph(4))
    >>> round(result.value, 6) > 0
    True
    """

    def __init__(
        self,
        method: FiedlerMethod | str = FiedlerMethod.AUTO,
        dense_cutoff: int = _DENSE_CUTOFF,
        tol: float = 1e-10,
        seed: int = 7,
        warm_start: bool = False,
        warm_cache_size: int = _WARM_CACHE_SIZE,
    ) -> None:
        if warm_cache_size < 1:
            raise ValueError(f"warm_cache_size must be >= 1, got {warm_cache_size}")
        self.method = FiedlerMethod(method) if isinstance(method, str) else method
        self.dense_cutoff = dense_cutoff
        self.tol = tol
        self.seed = seed
        self.warm_start = warm_start
        self.warm_cache_size = warm_cache_size
        self._warm_cache: OrderedDict[str, np.ndarray] = OrderedDict()
        self._warm_lock = threading.Lock()
        self.warm_hits = 0
        self.warm_misses = 0
        self.sparse_fallbacks = 0
        """Times shift-invert ``eigsh`` failed and the SA fallback ran."""

    def solve(
        self,
        graph: "WeightedGraph | CSRGraph",
        order: Sequence[NodeId] | None = None,
    ) -> FiedlerResult:
        """Return the Fiedler pair of *graph*.

        Accepts a plain :class:`WeightedGraph` or a pre-frozen
        :class:`~repro.graphs.csr.CSRGraph` (hot paths freeze once and
        reuse the arrays).  Degenerate sizes are handled explicitly: an
        empty graph is an error; a single node has no second eigenvalue,
        so ``(0, [0])`` is returned, which downstream bisection treats
        as "nothing to split".
        """
        if graph.node_count == 0:
            raise ValueError("cannot compute the Fiedler pair of an empty graph")
        node_order = list(order) if order is not None else graph.node_list()
        if graph.node_count == 1:
            return FiedlerResult(0.0, np.zeros(1), node_order, "trivial")

        start = None
        signature = None
        if self.warm_start:
            frozen = as_csr(graph, node_order if order is not None else None)
            signature = frozen.structure_signature()
            start = self._warm_lookup(signature, graph.node_count)
            graph = frozen

        method = self._resolve(graph.node_count)
        if method is FiedlerMethod.DENSE:
            value, vector = self._solve_dense(graph, node_order)
        elif method is FiedlerMethod.SPARSE:
            value, vector = self._solve_sparse(graph, node_order, v0=start)
        elif method is FiedlerMethod.POWER:
            laplacian = laplacian_matrix(graph, node_order)
            value, vector = smallest_nontrivial_laplacian_eigenpair(
                laplacian, tol=self.tol, seed=self.seed, start=start
            )
        elif method is FiedlerMethod.LANCZOS:
            laplacian = laplacian_matrix(graph, node_order)
            value, vector = lanczos_smallest_nontrivial(
                laplacian, tol=self.tol, seed=self.seed, start=start
            )
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled method {method}")
        if signature is not None:
            self._warm_store(signature, vector)
        return FiedlerResult(value, vector, node_order, method.value)

    # ------------------------------------------------------------------
    # Warm-start cache
    # ------------------------------------------------------------------
    def _warm_lookup(self, signature: str, n: int) -> np.ndarray | None:
        """Previous Fiedler vector for this structure, if usable."""
        with self._warm_lock:
            cached = self._warm_cache.get(signature)
            if cached is not None and cached.shape == (n,):
                self._warm_cache.move_to_end(signature)
                self.warm_hits += 1
                return cached
            self.warm_misses += 1
            return None

    def _warm_store(self, signature: str, vector: np.ndarray) -> None:
        with self._warm_lock:
            self._warm_cache[signature] = np.array(vector, dtype=float)
            self._warm_cache.move_to_end(signature)
            while len(self._warm_cache) > self.warm_cache_size:
                self._warm_cache.popitem(last=False)

    def export_warm_entries(self) -> list[tuple[str, np.ndarray]]:
        """Snapshot the warm-start cache, oldest first.

        The entries are copies: the snapshot can cross a process boundary
        (process-pool workers are primed with the parent's cache, so a
        fresh worker converges as fast as the parent thread would) without
        sharing mutable state.
        """
        with self._warm_lock:
            return [
                (signature, np.array(vector, dtype=float))
                for signature, vector in self._warm_cache.items()
            ]

    def prime_warm_entries(self, entries: Sequence[tuple[str, np.ndarray]]) -> int:
        """Seed the warm-start cache with exported entries; returns count kept.

        Entries are inserted oldest-first so LRU order survives the
        round-trip.  Priming never toggles :attr:`warm_start` — a solver
        configured for bit-exact cold solves stays bit-exact.
        """
        kept = 0
        for signature, vector in entries:
            self._warm_store(signature, vector)
            kept += 1
        return kept

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _resolve(self, n: int) -> FiedlerMethod:
        if self.method is not FiedlerMethod.AUTO:
            return self.method
        return FiedlerMethod.DENSE if n <= self.dense_cutoff else FiedlerMethod.SPARSE

    def _solve_dense(
        self, graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId]
    ) -> tuple[float, np.ndarray]:
        laplacian = laplacian_matrix(graph, order)
        values, vectors = np.linalg.eigh(laplacian)
        return max(float(values[1]), 0.0), vectors[:, 1]

    def _solve_sparse(
        self,
        graph: "WeightedGraph | CSRGraph",
        order: Sequence[NodeId],
        v0: np.ndarray | None = None,
    ) -> tuple[float, np.ndarray]:
        laplacian = sparse_laplacian(graph, order)
        if not np.issubdtype(laplacian.dtype, np.floating):
            laplacian = laplacian.astype(np.float64)
        n = laplacian.shape[0]
        k = min(2, n - 1)
        if v0 is not None:
            # A previous Fiedler vector is orthogonal to the constant
            # null vector; a Krylov space seeded with it can miss the
            # trivial 0-eigenpair entirely and shift which Ritz position
            # lambda_2 occupies.  Blending in the constant direction
            # guarantees both of the two smallest pairs are reachable.
            v0 = v0 + np.full(n, 1.0 / np.sqrt(n))
        try:
            values, vectors = eigsh(
                laplacian, k=k, sigma=0.0, which="LM", tol=self.tol, v0=v0
            )
        except (RuntimeError, ArpackError) as exc:
            # Shift-invert fails on exactly singular factorizations
            # (disconnected graphs: RuntimeError from the SuperLU factor,
            # ArpackError on non-convergence); smallest-algebraic mode
            # needs no factorization and always converges for k <= 2.
            self.sparse_fallbacks += 1
            _LOG.warning(
                "shift-invert eigsh failed on %d-node Laplacian (%s); "
                "falling back to smallest-algebraic mode",
                n,
                exc,
            )
            values, vectors = eigsh(
                laplacian, k=k, which="SA", tol=max(self.tol, 1e-8), v0=v0
            )
        idx = np.argsort(values)
        if len(idx) < 2:
            return 0.0, vectors[:, idx[0]]
        second = idx[1]
        return max(float(values[second]), 0.0), vectors[:, second]
