"""The Fiedler solver: one interface, five backends.

``FiedlerSolver`` computes the second-smallest Laplacian eigenpair of a
graph.  Backends:

* ``dense``   — full ``numpy.linalg.eigh`` (exact; O(n^3); small graphs);
* ``sparse``  — ``scipy.sparse.linalg.eigsh`` shift-invert (large graphs);
* ``power``   — from-scratch deflated power iteration (reference);
* ``lanczos`` — from-scratch Lanczos (reference, faster convergence);
* ``auto``    — dense below a size threshold, sparse above.

The distributed backend used for the Fig. 9 "with Spark" series lives in
:mod:`repro.distributed.spark_spectral`; it reuses the ``power``/``lanczos``
solvers here by injecting a cluster-backed matvec.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np
from scipy.sparse.linalg import eigsh

from repro.graphs.laplacian import laplacian_matrix, sparse_laplacian
from repro.graphs.weighted_graph import WeightedGraph
from repro.spectral.eigen import smallest_nontrivial_laplacian_eigenpair
from repro.spectral.lanczos import lanczos_smallest_nontrivial

NodeId = Hashable

_DENSE_CUTOFF = 600


class FiedlerMethod(enum.Enum):
    """Available eigensolver backends."""

    AUTO = "auto"
    DENSE = "dense"
    SPARSE = "sparse"
    POWER = "power"
    LANCZOS = "lanczos"


@dataclass
class FiedlerResult:
    """The second-smallest Laplacian eigenpair of a graph."""

    value: float
    """``lambda_2``, the algebraic connectivity (Theorem 1's cut bound)."""

    vector: np.ndarray
    """The Fiedler vector, aligned with :attr:`order`."""

    order: list[NodeId]
    """Node order indexing :attr:`vector`."""

    method: str
    """Backend that produced the result."""

    def entry(self, node: NodeId) -> float:
        """Fiedler-vector entry for *node*."""
        return float(self.vector[self.order.index(node)])


class FiedlerSolver:
    """Computes Fiedler pairs with a configurable backend.

    >>> from repro.graphs.generators import path_graph
    >>> solver = FiedlerSolver()
    >>> result = solver.solve(path_graph(4))
    >>> round(result.value, 6) > 0
    True
    """

    def __init__(
        self,
        method: FiedlerMethod | str = FiedlerMethod.AUTO,
        dense_cutoff: int = _DENSE_CUTOFF,
        tol: float = 1e-10,
        seed: int = 7,
    ) -> None:
        self.method = FiedlerMethod(method) if isinstance(method, str) else method
        self.dense_cutoff = dense_cutoff
        self.tol = tol
        self.seed = seed

    def solve(self, graph: WeightedGraph, order: Sequence[NodeId] | None = None) -> FiedlerResult:
        """Return the Fiedler pair of *graph*.

        Degenerate sizes are handled explicitly: an empty graph is an
        error; a single node has no second eigenvalue, so ``(0, [0])`` is
        returned, which downstream bisection treats as "nothing to split".
        """
        if graph.node_count == 0:
            raise ValueError("cannot compute the Fiedler pair of an empty graph")
        node_order = list(order) if order is not None else graph.node_list()
        if graph.node_count == 1:
            return FiedlerResult(0.0, np.zeros(1), node_order, "trivial")

        method = self._resolve(graph.node_count)
        if method is FiedlerMethod.DENSE:
            value, vector = self._solve_dense(graph, node_order)
        elif method is FiedlerMethod.SPARSE:
            value, vector = self._solve_sparse(graph, node_order)
        elif method is FiedlerMethod.POWER:
            laplacian = laplacian_matrix(graph, node_order)
            value, vector = smallest_nontrivial_laplacian_eigenpair(
                laplacian, tol=self.tol, seed=self.seed
            )
        elif method is FiedlerMethod.LANCZOS:
            laplacian = laplacian_matrix(graph, node_order)
            value, vector = lanczos_smallest_nontrivial(
                laplacian, tol=self.tol, seed=self.seed
            )
        else:  # pragma: no cover - enum is exhaustive
            raise AssertionError(f"unhandled method {method}")
        return FiedlerResult(value, vector, node_order, method.value)

    # ------------------------------------------------------------------
    # Backends
    # ------------------------------------------------------------------
    def _resolve(self, n: int) -> FiedlerMethod:
        if self.method is not FiedlerMethod.AUTO:
            return self.method
        return FiedlerMethod.DENSE if n <= self.dense_cutoff else FiedlerMethod.SPARSE

    def _solve_dense(
        self, graph: WeightedGraph, order: Sequence[NodeId]
    ) -> tuple[float, np.ndarray]:
        laplacian = laplacian_matrix(graph, order)
        values, vectors = np.linalg.eigh(laplacian)
        return max(float(values[1]), 0.0), vectors[:, 1]

    def _solve_sparse(
        self, graph: WeightedGraph, order: Sequence[NodeId]
    ) -> tuple[float, np.ndarray]:
        laplacian = sparse_laplacian(graph, order).asfptype()
        n = laplacian.shape[0]
        k = min(2, n - 1)
        try:
            values, vectors = eigsh(laplacian, k=k, sigma=0.0, which="LM", tol=self.tol)
        except Exception:
            # Shift-invert can fail on exactly singular factorizations
            # (e.g. disconnected graphs); fall back to smallest-algebraic.
            values, vectors = eigsh(laplacian, k=k, which="SA", tol=max(self.tol, 1e-8))
        idx = np.argsort(values)
        if len(idx) < 2:
            return 0.0, vectors[:, idx[0]]
        second = idx[1]
        return max(float(values[second]), 0.0), vectors[:, second]
