"""Node merging: turning a labeled graph into its compressed graph.

The paper's compression rule: "Any two nodes which are in the same cluster
and are connected directly will be merged into one node."  Merging is thus
a union-find over *monochromatic edges* (same label on both ends); each
resulting super-node carries the summed computation weight of its members,
and parallel edges between super-nodes accumulate their communication
weights.  Intra-super-node edges vanish — that traffic can never be cut,
which is exactly the guarantee compression exists to provide.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable, Iterable

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


class _UnionFind:
    """Minimal union-find with path compression and union by size."""

    def __init__(self, items: Iterable[NodeId]) -> None:
        self._parent: dict[NodeId, NodeId] = {item: item for item in items}
        self._size: dict[NodeId, int] = {item: 1 for item in self._parent}

    def find(self, item: NodeId) -> NodeId:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: NodeId, b: NodeId) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]


@dataclass
class CompressedGraph:
    """A compressed graph plus the bookkeeping to expand results back.

    ``graph`` uses dense integer super-node ids ``0..k-1``; ``clusters[i]``
    is the set of original node ids fused into super-node ``i``.
    """

    graph: WeightedGraph
    clusters: list[set[NodeId]]
    original_node_count: int
    original_edge_count: int
    membership: dict[NodeId, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.membership:
            self.membership = {
                member: i for i, cluster in enumerate(self.clusters) for member in cluster
            }

    def expand(self, super_nodes: Iterable[int]) -> set[NodeId]:
        """Original node ids covered by the given super-node ids."""
        result: set[NodeId] = set()
        for super_node in super_nodes:
            result.update(self.clusters[super_node])
        return result

    def super_node_of(self, original: NodeId) -> int:
        """Super-node id containing the original node."""
        if original not in self.membership:
            raise KeyError(f"node {original!r} is not part of this compression")
        return self.membership[original]

    @property
    def node_reduction(self) -> float:
        """Fraction of nodes eliminated (0 when nothing merged)."""
        if self.original_node_count == 0:
            return 0.0
        return 1.0 - self.graph.node_count / self.original_node_count

    @property
    def edge_reduction(self) -> float:
        """Fraction of edges eliminated."""
        if self.original_edge_count == 0:
            return 0.0
        return 1.0 - self.graph.edge_count / self.original_edge_count


def merge_labeled_graph(graph: WeightedGraph, labels: dict[NodeId, int]) -> CompressedGraph:
    """Compress *graph* under the given label assignment.

    Every node must be labeled.  Two nodes merge iff they share a label
    *and* are connected (possibly transitively through same-label edges) —
    i.e. union-find over monochromatic edges, per the paper's rule.
    """
    for node in graph.nodes():
        if node not in labels:
            raise ValueError(f"node {node!r} has no label")

    uf = _UnionFind(graph.nodes())
    for u, v, _ in graph.edges():
        if labels[u] == labels[v]:
            uf.union(u, v)

    # Assign dense ids in insertion order of the first member seen.
    root_to_id: dict[NodeId, int] = {}
    clusters: list[set[NodeId]] = []
    for node in graph.nodes():
        root = uf.find(node)
        if root not in root_to_id:
            root_to_id[root] = len(clusters)
            clusters.append(set())
        clusters[root_to_id[root]].add(node)

    compressed = WeightedGraph()
    for i, cluster in enumerate(clusters):
        weight = sum(graph.node_weight(member) for member in cluster)
        compressed.add_node(i, weight=weight, size=len(cluster))
    for u, v, w in graph.edges():
        cu = root_to_id[uf.find(u)]
        cv = root_to_id[uf.find(v)]
        if cu != cv:
            compressed.add_edge(cu, cv, weight=w)  # accumulates parallels

    return CompressedGraph(
        graph=compressed,
        clusters=clusters,
        original_node_count=graph.node_count,
        original_edge_count=graph.edge_count,
    )
