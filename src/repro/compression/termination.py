"""Termination criteria for the label propagation loop.

Two conditions, either of which stops the loop (Section III-A):

* the label update rate ``alpha = update_num / total_num`` drops to or
  below the preset threshold ``alpha_t`` (formula (7));
* the number of completed propagation rounds reaches the cap ``beta_t``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TerminationCriteria:
    """The (``alpha_t``, ``beta_t``) stopping pair of Algorithm 1."""

    alpha_threshold: float = 0.0
    """Stop when the per-round update rate is <= this value.  The default
    0.0 runs propagation to a fixed point."""

    max_rounds: int = 20
    """Hard cap ``beta_t`` on the number of propagation rounds."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.alpha_threshold <= 1.0:
            raise ValueError(
                f"alpha_threshold must be in [0, 1], got {self.alpha_threshold!r}"
            )
        if self.max_rounds < 1:
            raise ValueError(f"max_rounds must be >= 1, got {self.max_rounds!r}")

    def update_rate(self, updates: int, total_nodes: int) -> float:
        """Formula (7): ``alpha = update_num / total_num``."""
        if total_nodes <= 0:
            return 0.0
        return updates / total_nodes

    def should_stop(self, updates: int, total_nodes: int, rounds_done: int) -> bool:
        """Whether the propagation loop should stop after this round."""
        if rounds_done >= self.max_rounds:
            return True
        return self.update_rate(updates, total_nodes) <= self.alpha_threshold
