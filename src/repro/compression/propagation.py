"""The label propagation process of Algorithm 1.

Starting from the node with the largest degree (the paper's
``Largest_outdegree``; the data-flow graph is undirected, so degree plays
the role of out-degree, with weighted degree as tie-break), labels spread
along *strong* edges — edges heavier than the rule threshold.  A node
reached over a weak edge receives a fresh label.  Rounds repeat until a
:class:`~repro.compression.termination.TerminationCriteria` fires.

The propagation is deterministic: traversal order is BFS or DFS from the
starter, and a node adopting a label from several strong labeled neighbors
takes the one across its heaviest strong edge (ties break toward the
earlier-labeled neighbor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable

from repro.compression.labels import ThresholdRule
from repro.compression.termination import TerminationCriteria
from repro.graphs.traversal import bfs_order, dfs_order
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


class TraversalPolicy(enum.Enum):
    """Node visitation policy for each propagation round."""

    BFS = "bfs"
    DFS = "dfs"


@dataclass
class PropagationReport:
    """Outcome of a full propagation run on one sub-graph."""

    labels: dict[NodeId, int]
    rounds: int
    updates_per_round: list[int] = field(default_factory=list)
    threshold: float = 0.0
    starter: NodeId | None = None

    @property
    def cluster_count(self) -> int:
        """Number of distinct labels in the final assignment."""
        return len(set(self.labels.values()))


def select_starter(graph: WeightedGraph) -> NodeId:
    """Return the propagation starter: the max-degree node.

    Ties break by weighted degree and then by insertion order, keeping the
    choice deterministic.
    """
    if graph.node_count == 0:
        raise ValueError("cannot select a starter in an empty graph")
    best: NodeId | None = None
    best_key: tuple[int, float] | None = None
    for node in graph.nodes():
        key = (graph.degree(node), graph.weighted_degree(node))
        if best_key is None or key > best_key:
            best = node
            best_key = key
    return best


class LabelPropagation:
    """Runs the threshold-guided label propagation on one sub-graph."""

    def __init__(
        self,
        threshold_rule: ThresholdRule,
        termination: TerminationCriteria | None = None,
        policy: TraversalPolicy = TraversalPolicy.BFS,
    ) -> None:
        self.threshold_rule = threshold_rule
        self.termination = termination or TerminationCriteria()
        self.policy = policy

    def run(self, graph: WeightedGraph) -> PropagationReport:
        """Propagate labels over *graph* and return the final assignment.

        Works on disconnected graphs too: each connected piece gets its own
        starter (the global traversal restarts from the best remaining
        node), so every node ends up labeled.
        """
        if graph.node_count == 0:
            return PropagationReport(labels={}, rounds=0)

        threshold = self.threshold_rule.threshold(graph)
        starter = select_starter(graph)
        order = self._visit_order(graph, starter)

        labels: dict[NodeId, int] = {}
        next_label = 0
        label_birth: dict[int, int] = {}

        rounds = 0
        updates_per_round: list[int] = []
        while True:
            updates = 0
            for node in order:
                proposed = self._propose_label(graph, node, labels, threshold, label_birth)
                if proposed is None:
                    if node not in labels:
                        labels[node] = next_label
                        label_birth[next_label] = len(label_birth)
                        next_label += 1
                        updates += 1
                    continue
                if labels.get(node) != proposed:
                    labels[node] = proposed
                    updates += 1
            rounds += 1
            updates_per_round.append(updates)
            if self.termination.should_stop(updates, graph.node_count, rounds):
                break

        return PropagationReport(
            labels=labels,
            rounds=rounds,
            updates_per_round=updates_per_round,
            threshold=threshold,
            starter=starter,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _visit_order(self, graph: WeightedGraph, starter: NodeId) -> list[NodeId]:
        """Full visitation order covering every node (all components)."""
        walker = bfs_order if self.policy is TraversalPolicy.BFS else dfs_order
        order = walker(graph, starter)
        visited = set(order)
        for node in graph.nodes():
            if node in visited:
                continue
            extra = walker(graph, node)
            order.extend(extra)
            visited.update(extra)
        return order

    @staticmethod
    def _propose_label(
        graph: WeightedGraph,
        node: NodeId,
        labels: dict[NodeId, int],
        threshold: float,
        label_birth: dict[int, int],
    ) -> int | None:
        """Label *node* should adopt, or ``None`` if no strong labeled neighbor.

        Among labeled neighbors across edges heavier than *threshold*, take
        the label over the heaviest edge; break weight ties toward the
        oldest label so repeated rounds converge instead of oscillating.
        """
        best_label: int | None = None
        best_key: tuple[float, float] | None = None
        for neighbor, weight in graph.neighbor_items(node):
            if weight <= threshold or neighbor not in labels:
                continue
            candidate = labels[neighbor]
            # Older labels (smaller birth index) win ties -> negate for max().
            key = (weight, -label_birth.get(candidate, 0))
            if best_key is None or key > best_key:
                best_key = key
                best_label = candidate
        return best_label
