"""The label propagation process of Algorithm 1.

Starting from the node with the largest degree (the paper's
``Largest_outdegree``; the data-flow graph is undirected, so degree plays
the role of out-degree, with weighted degree as tie-break), labels spread
along *strong* edges — edges heavier than the rule threshold.  A node
reached over a weak edge receives a fresh label.  Rounds repeat until a
:class:`~repro.compression.termination.TerminationCriteria` fires.

The propagation is deterministic: traversal order is BFS or DFS from the
starter, and a node adopting a label from several strong labeled neighbors
takes the one across its heaviest strong edge (ties break toward the
earlier-labeled neighbor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Hashable

import numpy as np

from repro.compression.labels import ThresholdRule
from repro.compression.termination import TerminationCriteria
from repro.graphs.csr import CSRGraph
from repro.graphs.traversal import bfs_order, dfs_order
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable

PROPAGATION_KERNELS = ("dict", "csr", "numpy", "auto")

_CSR_KERNEL_CUTOFF = 96
"""``auto`` kernel switch-over: below this node count the flat-array
setup cost outweighs the per-round savings; above it the CSR kernel's
strong-edge prefilter and dirty frontier win decisively."""

try:  # Optional accelerator: jit the segment builder when numba exists.
    import numba as _numba
except ImportError:  # pragma: no cover - numba is never required
    _numba = None


def _segment_ids(
    order_idx: np.ndarray,
    s_indptr: np.ndarray,
    s_indices: np.ndarray,
    stamp: np.ndarray,
    out: np.ndarray,
) -> None:
    """Assign each visit position a segment id (see ``_run_numpy``).

    Walking the visit order, a new segment starts whenever the next node
    has a strong neighbor already placed in the current segment — so
    every segment is an independent set w.r.t. strong edges, and nodes
    within one segment cannot observe each other's label updates.
    ``stamp[v]`` records the segment node ``v`` was placed in.
    """
    seg = 0
    for t in range(order_idx.shape[0]):
        v = order_idx[t]
        for k in range(s_indptr[v], s_indptr[v + 1]):
            if stamp[s_indices[k]] == seg:
                seg += 1
                break
        stamp[v] = seg
        out[t] = seg


if _numba is not None:  # pragma: no cover - exercised only with numba installed
    _segment_ids = _numba.njit(cache=True)(_segment_ids)


class TraversalPolicy(enum.Enum):
    """Node visitation policy for each propagation round."""

    BFS = "bfs"
    DFS = "dfs"


@dataclass
class PropagationReport:
    """Outcome of a full propagation run on one sub-graph."""

    labels: dict[NodeId, int]
    rounds: int
    updates_per_round: list[int] = field(default_factory=list)
    threshold: float = 0.0
    starter: NodeId | None = None

    @property
    def cluster_count(self) -> int:
        """Number of distinct labels in the final assignment."""
        return len(set(self.labels.values()))


def select_starter(graph: WeightedGraph) -> NodeId:
    """Return the propagation starter: the max-degree node.

    Ties break by weighted degree and then by insertion order, keeping the
    choice deterministic.
    """
    if graph.node_count == 0:
        raise ValueError("cannot select a starter in an empty graph")
    best: NodeId | None = None
    best_key: tuple[int, float] | None = None
    for node in graph.nodes():
        key = (graph.degree(node), graph.weighted_degree(node))
        if best_key is None or key > best_key:
            best = node
            best_key = key
    return best


class LabelPropagation:
    """Runs the threshold-guided label propagation on one sub-graph.

    *kernel* selects the round-loop implementation:

    * ``"dict"`` — the reference path walking the adjacency dicts;
    * ``"csr"``  — the array fast path: the graph is frozen into a
      :class:`~repro.graphs.csr.CSRGraph`, weak edges (weight <=
      threshold, which can never carry a label) are filtered out of the
      incidence arrays once, and rounds after the first only re-evaluate
      the *dirty frontier* — nodes with a strong neighbor whose label
      changed since their last evaluation.  Bit-for-bit identical to the
      dict path (labels, rounds, per-round update counts);
    * ``"numpy"`` — the vectorised path: the visit order is decomposed
      once into contiguous *segments* that are independent sets w.r.t.
      strong edges, then each round evaluates whole segments with numpy
      gather + ``np.maximum.reduceat`` passes instead of a per-node
      Python loop.  Also bit-for-bit identical to the dict path;
    * ``"auto"`` — ``csr`` above a node-count cutoff, ``dict`` below.
    """

    def __init__(
        self,
        threshold_rule: ThresholdRule,
        termination: TerminationCriteria | None = None,
        policy: TraversalPolicy = TraversalPolicy.BFS,
        kernel: str = "auto",
    ) -> None:
        if kernel not in PROPAGATION_KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {PROPAGATION_KERNELS}"
            )
        self.threshold_rule = threshold_rule
        self.termination = termination or TerminationCriteria()
        self.policy = policy
        self.kernel = kernel

    def run(self, graph: WeightedGraph) -> PropagationReport:
        """Propagate labels over *graph* and return the final assignment.

        Works on disconnected graphs too: each connected piece gets its own
        starter (the global traversal restarts from the best remaining
        node), so every node ends up labeled.
        """
        if graph.node_count == 0:
            return PropagationReport(labels={}, rounds=0)
        if self.kernel == "numpy":
            return self._run_numpy(graph)
        use_csr = self.kernel == "csr" or (
            self.kernel == "auto" and graph.node_count >= _CSR_KERNEL_CUTOFF
        )
        if use_csr:
            return self._run_csr(graph)
        return self._run_dict(graph)

    def _run_dict(self, graph: WeightedGraph) -> PropagationReport:
        """Reference kernel: per-round full scans over the adjacency dicts."""
        threshold = self.threshold_rule.threshold(graph)
        starter = select_starter(graph)
        order = self._visit_order(graph, starter)

        labels: dict[NodeId, int] = {}
        next_label = 0
        label_birth: dict[int, int] = {}

        rounds = 0
        updates_per_round: list[int] = []
        while True:
            updates = 0
            for node in order:
                proposed = self._propose_label(graph, node, labels, threshold, label_birth)
                if proposed is None:
                    if node not in labels:
                        labels[node] = next_label
                        label_birth[next_label] = len(label_birth)
                        next_label += 1
                        updates += 1
                    continue
                if labels.get(node) != proposed:
                    labels[node] = proposed
                    updates += 1
            rounds += 1
            updates_per_round.append(updates)
            if self.termination.should_stop(updates, graph.node_count, rounds):
                break

        return PropagationReport(
            labels=labels,
            rounds=rounds,
            updates_per_round=updates_per_round,
            threshold=threshold,
            starter=starter,
        )

    def _run_csr(self, graph: WeightedGraph) -> PropagationReport:
        """Array kernel: strong-edge CSR arrays plus a dirty frontier.

        Parity argument (tested bit-for-bit against :meth:`_run_dict`):

        * a proposed label is a pure maximum over the strong labeled
          neighborhood under the key ``(edge weight, -label birth)``, so
          scan order inside a neighborhood is irrelevant — and since
          labels are created in birth order, ``birth(label) == label``,
          making the key ``(weight, -label)``;
        * weak edges (``weight <= threshold``) never contribute, so
          filtering them out of the incidence arrays once is exact;
        * a node whose strong neighborhood has not changed since its last
          evaluation re-derives the same proposal, so skipping it cannot
          change labels *or* the per-round update count.  Whenever a
          label changes, every strong neighbor is marked dirty: those
          later in the visit order are re-evaluated in the same round
          (as a full scan would), those earlier in the next round.
        """
        threshold = self.threshold_rule.threshold(graph)
        starter = select_starter(graph)
        order = self._visit_order(graph, starter)

        csr = CSRGraph.from_graph(graph)
        strong = csr.edge_weight > threshold
        rows = np.repeat(np.arange(csr.node_count), np.diff(csr.indptr))
        strong_counts = np.bincount(rows[strong], minlength=csr.node_count)
        # Flat Python lists beat numpy scalar indexing in the tight loop.
        s_indptr = np.concatenate(([0], np.cumsum(strong_counts))).tolist()
        s_indices = csr.indices[strong].tolist()
        s_weights = csr.edge_weight[strong].tolist()

        n = csr.node_count
        order_idx = [csr.index[node] for node in order]
        labels_arr: list[int] = [-1] * n
        dirty = [True] * n
        next_label = 0

        rounds = 0
        updates_per_round: list[int] = []
        while True:
            updates = 0
            for i in order_idx:
                if not dirty[i]:
                    continue
                dirty[i] = False
                best_label = -1
                best_weight = 0.0
                for k in range(s_indptr[i], s_indptr[i + 1]):
                    candidate = labels_arr[s_indices[k]]
                    if candidate < 0:
                        continue
                    weight = s_weights[k]
                    if (
                        best_label < 0
                        or weight > best_weight
                        or (weight == best_weight and candidate < best_label)
                    ):
                        best_weight = weight
                        best_label = candidate
                if best_label < 0:
                    if labels_arr[i] < 0:
                        labels_arr[i] = next_label
                        next_label += 1
                        updates += 1
                        for k in range(s_indptr[i], s_indptr[i + 1]):
                            dirty[s_indices[k]] = True
                    continue
                if labels_arr[i] != best_label:
                    labels_arr[i] = best_label
                    updates += 1
                    for k in range(s_indptr[i], s_indptr[i + 1]):
                        dirty[s_indices[k]] = True
            rounds += 1
            updates_per_round.append(updates)
            if self.termination.should_stop(updates, n, rounds):
                break

        return PropagationReport(
            labels={node: labels_arr[i] for i, node in enumerate(csr.nodes)},
            rounds=rounds,
            updates_per_round=updates_per_round,
            threshold=threshold,
            starter=starter,
        )

    def _run_numpy(self, graph: WeightedGraph) -> PropagationReport:
        """Vectorised kernel: segment decomposition + reduceat proposals.

        The visit order is cut into maximal contiguous *segments* such
        that no two nodes in a segment share a strong edge (the builder
        starts a new segment as soon as the next node has a strong
        neighbor already inside the current one).  Because label reads
        inside a round only ever travel strong edges, nodes within one
        segment cannot observe each other's writes — evaluating a whole
        segment against the labels as they stood when the segment began
        is exactly what the sequential dict scan does.

        Within a segment, proposals are a pure max over each strong
        neighborhood under the key ``(weight, -label)`` (labels are born
        in birth order, so ``birth(label) == label``).  That key is
        packed into one int64 — ``wrank * (n + 1) + (n - 1 - label)``
        where ``wrank`` is the dense rank of the edge weight among all
        strong weights — so ``np.maximum.reduceat`` over the flattened
        incidence arrays computes every node's proposal at once.  Fresh
        labels go to proposal-less unlabeled members in visit order.

        Like the csr kernel, stable work is skipped: a segment none of
        whose members saw a strong-neighbor label change since their
        last evaluation re-derives proposals its members already carry,
        so it contributes zero updates and is skipped wholesale; every
        label write marks the writer's strong neighbors dirty, so
        affected segments later in the round are still evaluated within
        it, exactly as a sequential full scan would.  Labels, rounds,
        and per-round update counts all match the dict path bit-for-bit.
        """
        threshold = self.threshold_rule.threshold(graph)
        starter = select_starter(graph)
        order = self._visit_order(graph, starter)

        csr = CSRGraph.from_graph(graph)
        n = csr.node_count
        strong = csr.edge_weight > threshold
        strong_counts = np.bincount(csr.incidence_rows()[strong], minlength=n)
        s_indptr = np.concatenate(([0], np.cumsum(strong_counts)))
        s_indices = csr.indices[strong]
        s_weights = csr.edge_weight[strong]

        order_idx = np.asarray([csr.index[node] for node in order], dtype=np.int64)
        seg_of_pos = np.empty(n, dtype=np.int64)
        _segment_ids(order_idx, s_indptr, s_indices, np.full(n, -1, dtype=np.int64), seg_of_pos)
        seg_bounds = np.concatenate(
            ([0], np.nonzero(np.diff(seg_of_pos))[0] + 1, [n])
        )

        # Dense weight rank: equal floats share a rank, so the packed key
        # orders exactly like the (weight, -label) tuple.
        unique_weights = np.unique(s_weights)
        wrank = np.searchsorted(unique_weights, s_weights).astype(np.int64)
        base_key = wrank * np.int64(n + 1)

        # Flatten the strong incidences in visit-position order.
        lens = strong_counts[order_idx]
        row_starts = np.concatenate(([0], np.cumsum(lens)))
        total = int(row_starts[-1])
        if total:
            flat_src = np.repeat(s_indptr[order_idx], lens) + (
                np.arange(total, dtype=np.int64) - np.repeat(row_starts[:-1], lens)
            )
        else:
            flat_src = np.empty(0, dtype=np.int64)
        flat_neighbors = s_indices[flat_src]
        flat_base = base_key[flat_src]

        # Per-segment static structure: member nodes, their strong-neighbor
        # slice of the flat arrays, and reduceat starts for members with at
        # least one strong incidence.
        segments: list[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []
        for s in range(seg_bounds.size - 1):
            a, b = int(seg_bounds[s]), int(seg_bounds[s + 1])
            member_nodes = order_idx[a:b]
            nonempty_local = np.nonzero(lens[a:b])[0]
            lo, hi = int(row_starts[a]), int(row_starts[b])
            rel_starts = row_starts[a + nonempty_local] - lo
            segments.append(
                (
                    member_nodes,
                    nonempty_local,
                    rel_starts,
                    flat_neighbors[lo:hi],
                    flat_base[lo:hi],
                )
            )

        labels_np = np.full(n, -1, dtype=np.int64)
        dirty = np.ones(n, dtype=bool)
        n1 = np.int64(n - 1)
        modulus = np.int64(n + 1)
        next_label = 0
        s_starts = s_indptr[:-1]

        rounds = 0
        updates_per_round: list[int] = []
        while True:
            updates = 0
            for member_nodes, nonempty_local, rel_starts, seg_neighbors, seg_base in segments:
                if not dirty[member_nodes].any():
                    continue
                dirty[member_nodes] = False
                proposal = np.full(member_nodes.size, -1, dtype=np.int64)
                if rel_starts.size:
                    candidates = labels_np[seg_neighbors]
                    keys = np.where(
                        candidates >= 0,
                        seg_base + (n1 - candidates),
                        np.int64(-1),
                    )
                    best = np.maximum.reduceat(keys, rel_starts)
                    proposal[nonempty_local] = np.where(best >= 0, n1 - best % modulus, -1)
                current = labels_np[member_nodes]
                adopted = (proposal >= 0) & (current != proposal)
                fresh = (proposal < 0) & (current < 0)
                count = int(fresh.sum())
                if count:
                    labels_np[member_nodes[fresh]] = next_label + np.arange(
                        count, dtype=np.int64
                    )
                    next_label += count
                    updates += count
                count = int(adopted.sum())
                if count:
                    labels_np[member_nodes[adopted]] = proposal[adopted]
                    updates += count
                    written = member_nodes[adopted | fresh] if fresh.any() else member_nodes[adopted]
                elif fresh.any():
                    written = member_nodes[fresh]
                else:
                    continue
                # A write is only observable across strong edges, so only
                # the writers' strong neighbors need re-evaluation.
                counts = strong_counts[written]
                touched = int(counts.sum())
                if touched:
                    offsets = np.concatenate(([0], np.cumsum(counts)))
                    src = np.repeat(s_starts[written], counts) + (
                        np.arange(touched, dtype=np.int64)
                        - np.repeat(offsets[:-1], counts)
                    )
                    dirty[s_indices[src]] = True
            rounds += 1
            updates_per_round.append(updates)
            if self.termination.should_stop(updates, n, rounds):
                break

        return PropagationReport(
            labels={node: int(labels_np[i]) for i, node in enumerate(csr.nodes)},
            rounds=rounds,
            updates_per_round=updates_per_round,
            threshold=threshold,
            starter=starter,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _visit_order(self, graph: WeightedGraph, starter: NodeId) -> list[NodeId]:
        """Full visitation order covering every node (all components)."""
        walker = bfs_order if self.policy is TraversalPolicy.BFS else dfs_order
        order = walker(graph, starter)
        visited = set(order)
        for node in graph.nodes():
            if node in visited:
                continue
            extra = walker(graph, node)
            order.extend(extra)
            visited.update(extra)
        return order

    @staticmethod
    def _propose_label(
        graph: WeightedGraph,
        node: NodeId,
        labels: dict[NodeId, int],
        threshold: float,
        label_birth: dict[int, int],
    ) -> int | None:
        """Label *node* should adopt, or ``None`` if no strong labeled neighbor.

        Among labeled neighbors across edges heavier than *threshold*, take
        the label over the heaviest edge; break weight ties toward the
        oldest label so repeated rounds converge instead of oscillating.
        """
        best_label: int | None = None
        best_key: tuple[float, float] | None = None
        for neighbor, weight in graph.neighbor_items(node):
            if weight <= threshold or neighbor not in labels:
                continue
            candidate = labels[neighbor]
            # Older labels (smaller birth index) win ties -> negate for max().
            key = (weight, -label_birth.get(candidate, 0))
            if best_key is None or key > best_key:
                best_key = key
                best_label = candidate
        return best_label
