"""The label propagation process of Algorithm 1.

Starting from the node with the largest degree (the paper's
``Largest_outdegree``; the data-flow graph is undirected, so degree plays
the role of out-degree, with weighted degree as tie-break), labels spread
along *strong* edges — edges heavier than the rule threshold.  A node
reached over a weak edge receives a fresh label.  Rounds repeat until a
:class:`~repro.compression.termination.TerminationCriteria` fires.

The propagation is deterministic: traversal order is BFS or DFS from the
starter, and a node adopting a label from several strong labeled neighbors
takes the one across its heaviest strong edge (ties break toward the
earlier-labeled neighbor).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from collections.abc import Hashable

import numpy as np

from repro.compression.labels import ThresholdRule
from repro.compression.termination import TerminationCriteria
from repro.graphs.csr import CSRGraph
from repro.graphs.traversal import bfs_order, dfs_order
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable

PROPAGATION_KERNELS = ("dict", "csr", "auto")

_CSR_KERNEL_CUTOFF = 96
"""``auto`` kernel switch-over: below this node count the flat-array
setup cost outweighs the per-round savings; above it the CSR kernel's
strong-edge prefilter and dirty frontier win decisively."""


class TraversalPolicy(enum.Enum):
    """Node visitation policy for each propagation round."""

    BFS = "bfs"
    DFS = "dfs"


@dataclass
class PropagationReport:
    """Outcome of a full propagation run on one sub-graph."""

    labels: dict[NodeId, int]
    rounds: int
    updates_per_round: list[int] = field(default_factory=list)
    threshold: float = 0.0
    starter: NodeId | None = None

    @property
    def cluster_count(self) -> int:
        """Number of distinct labels in the final assignment."""
        return len(set(self.labels.values()))


def select_starter(graph: WeightedGraph) -> NodeId:
    """Return the propagation starter: the max-degree node.

    Ties break by weighted degree and then by insertion order, keeping the
    choice deterministic.
    """
    if graph.node_count == 0:
        raise ValueError("cannot select a starter in an empty graph")
    best: NodeId | None = None
    best_key: tuple[int, float] | None = None
    for node in graph.nodes():
        key = (graph.degree(node), graph.weighted_degree(node))
        if best_key is None or key > best_key:
            best = node
            best_key = key
    return best


class LabelPropagation:
    """Runs the threshold-guided label propagation on one sub-graph.

    *kernel* selects the round-loop implementation:

    * ``"dict"`` — the reference path walking the adjacency dicts;
    * ``"csr"``  — the array fast path: the graph is frozen into a
      :class:`~repro.graphs.csr.CSRGraph`, weak edges (weight <=
      threshold, which can never carry a label) are filtered out of the
      incidence arrays once, and rounds after the first only re-evaluate
      the *dirty frontier* — nodes with a strong neighbor whose label
      changed since their last evaluation.  Bit-for-bit identical to the
      dict path (labels, rounds, per-round update counts);
    * ``"auto"`` — ``csr`` above a node-count cutoff, ``dict`` below.
    """

    def __init__(
        self,
        threshold_rule: ThresholdRule,
        termination: TerminationCriteria | None = None,
        policy: TraversalPolicy = TraversalPolicy.BFS,
        kernel: str = "auto",
    ) -> None:
        if kernel not in PROPAGATION_KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {PROPAGATION_KERNELS}"
            )
        self.threshold_rule = threshold_rule
        self.termination = termination or TerminationCriteria()
        self.policy = policy
        self.kernel = kernel

    def run(self, graph: WeightedGraph) -> PropagationReport:
        """Propagate labels over *graph* and return the final assignment.

        Works on disconnected graphs too: each connected piece gets its own
        starter (the global traversal restarts from the best remaining
        node), so every node ends up labeled.
        """
        if graph.node_count == 0:
            return PropagationReport(labels={}, rounds=0)
        use_csr = self.kernel == "csr" or (
            self.kernel == "auto" and graph.node_count >= _CSR_KERNEL_CUTOFF
        )
        if use_csr:
            return self._run_csr(graph)
        return self._run_dict(graph)

    def _run_dict(self, graph: WeightedGraph) -> PropagationReport:
        """Reference kernel: per-round full scans over the adjacency dicts."""
        threshold = self.threshold_rule.threshold(graph)
        starter = select_starter(graph)
        order = self._visit_order(graph, starter)

        labels: dict[NodeId, int] = {}
        next_label = 0
        label_birth: dict[int, int] = {}

        rounds = 0
        updates_per_round: list[int] = []
        while True:
            updates = 0
            for node in order:
                proposed = self._propose_label(graph, node, labels, threshold, label_birth)
                if proposed is None:
                    if node not in labels:
                        labels[node] = next_label
                        label_birth[next_label] = len(label_birth)
                        next_label += 1
                        updates += 1
                    continue
                if labels.get(node) != proposed:
                    labels[node] = proposed
                    updates += 1
            rounds += 1
            updates_per_round.append(updates)
            if self.termination.should_stop(updates, graph.node_count, rounds):
                break

        return PropagationReport(
            labels=labels,
            rounds=rounds,
            updates_per_round=updates_per_round,
            threshold=threshold,
            starter=starter,
        )

    def _run_csr(self, graph: WeightedGraph) -> PropagationReport:
        """Array kernel: strong-edge CSR arrays plus a dirty frontier.

        Parity argument (tested bit-for-bit against :meth:`_run_dict`):

        * a proposed label is a pure maximum over the strong labeled
          neighborhood under the key ``(edge weight, -label birth)``, so
          scan order inside a neighborhood is irrelevant — and since
          labels are created in birth order, ``birth(label) == label``,
          making the key ``(weight, -label)``;
        * weak edges (``weight <= threshold``) never contribute, so
          filtering them out of the incidence arrays once is exact;
        * a node whose strong neighborhood has not changed since its last
          evaluation re-derives the same proposal, so skipping it cannot
          change labels *or* the per-round update count.  Whenever a
          label changes, every strong neighbor is marked dirty: those
          later in the visit order are re-evaluated in the same round
          (as a full scan would), those earlier in the next round.
        """
        threshold = self.threshold_rule.threshold(graph)
        starter = select_starter(graph)
        order = self._visit_order(graph, starter)

        csr = CSRGraph.from_graph(graph)
        strong = csr.edge_weight > threshold
        rows = np.repeat(np.arange(csr.node_count), np.diff(csr.indptr))
        strong_counts = np.bincount(rows[strong], minlength=csr.node_count)
        # Flat Python lists beat numpy scalar indexing in the tight loop.
        s_indptr = np.concatenate(([0], np.cumsum(strong_counts))).tolist()
        s_indices = csr.indices[strong].tolist()
        s_weights = csr.edge_weight[strong].tolist()

        n = csr.node_count
        order_idx = [csr.index[node] for node in order]
        labels_arr: list[int] = [-1] * n
        dirty = [True] * n
        next_label = 0

        rounds = 0
        updates_per_round: list[int] = []
        while True:
            updates = 0
            for i in order_idx:
                if not dirty[i]:
                    continue
                dirty[i] = False
                best_label = -1
                best_weight = 0.0
                for k in range(s_indptr[i], s_indptr[i + 1]):
                    candidate = labels_arr[s_indices[k]]
                    if candidate < 0:
                        continue
                    weight = s_weights[k]
                    if (
                        best_label < 0
                        or weight > best_weight
                        or (weight == best_weight and candidate < best_label)
                    ):
                        best_weight = weight
                        best_label = candidate
                if best_label < 0:
                    if labels_arr[i] < 0:
                        labels_arr[i] = next_label
                        next_label += 1
                        updates += 1
                        for k in range(s_indptr[i], s_indptr[i + 1]):
                            dirty[s_indices[k]] = True
                    continue
                if labels_arr[i] != best_label:
                    labels_arr[i] = best_label
                    updates += 1
                    for k in range(s_indptr[i], s_indptr[i + 1]):
                        dirty[s_indices[k]] = True
            rounds += 1
            updates_per_round.append(updates)
            if self.termination.should_stop(updates, n, rounds):
                break

        return PropagationReport(
            labels={node: labels_arr[i] for i, node in enumerate(csr.nodes)},
            rounds=rounds,
            updates_per_round=updates_per_round,
            threshold=threshold,
            starter=starter,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _visit_order(self, graph: WeightedGraph, starter: NodeId) -> list[NodeId]:
        """Full visitation order covering every node (all components)."""
        walker = bfs_order if self.policy is TraversalPolicy.BFS else dfs_order
        order = walker(graph, starter)
        visited = set(order)
        for node in graph.nodes():
            if node in visited:
                continue
            extra = walker(graph, node)
            order.extend(extra)
            visited.update(extra)
        return order

    @staticmethod
    def _propose_label(
        graph: WeightedGraph,
        node: NodeId,
        labels: dict[NodeId, int],
        threshold: float,
        label_birth: dict[int, int],
    ) -> int | None:
        """Label *node* should adopt, or ``None`` if no strong labeled neighbor.

        Among labeled neighbors across edges heavier than *threshold*, take
        the label over the heaviest edge; break weight ties toward the
        oldest label so repeated rounds converge instead of oscillating.
        """
        best_label: int | None = None
        best_key: tuple[float, float] | None = None
        for neighbor, weight in graph.neighbor_items(node):
            if weight <= threshold or neighbor not in labels:
                continue
            candidate = labels[neighbor]
            # Older labels (smaller birth index) win ties -> negate for max().
            key = (weight, -label_birth.get(candidate, 0))
            if best_key is None or key > best_key:
                best_key = key
                best_label = candidate
        return best_label
