"""Label rules: when does a label jump across an edge?

The paper's rule (Section III-A): "We set a weight threshold ``w``.  If the
weight of an edge associated with a labeled node is larger than ``w``, and
the other end of this edge is unlabeled, the unlabeled node will be given
the same label; otherwise, it will be given a different label."

The threshold itself must be chosen per sub-graph.  Three strategies are
provided; the paper does not fix one, so the default (median edge weight)
is the one that reproduces Table I's >90 % reduction on NETGEN-style
workloads and is scale-free with respect to weight units.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.graphs.weighted_graph import WeightedGraph


class ThresholdRule(abc.ABC):
    """Strategy object producing the coupling threshold ``w`` for a graph."""

    @abc.abstractmethod
    def threshold(self, graph: WeightedGraph) -> float:
        """Return the weight threshold for *graph*."""

    def is_strong(self, graph: WeightedGraph, weight: float) -> bool:
        """Whether an edge of the given *weight* counts as highly coupled."""
        return weight > self.threshold(graph)


@dataclass(frozen=True)
class AbsoluteThreshold(ThresholdRule):
    """A fixed, unit-bearing threshold ``w``."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ValueError(f"threshold must be >= 0, got {self.value!r}")

    def threshold(self, graph: WeightedGraph) -> float:
        return self.value


@dataclass(frozen=True)
class MeanScaledThreshold(ThresholdRule):
    """``w = factor * mean(edge weights)``.

    ``factor < 1`` merges aggressively, ``factor > 1`` conservatively.
    A graph without edges yields threshold 0 (nothing to merge anyway).
    """

    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError(f"factor must be >= 0, got {self.factor!r}")

    def threshold(self, graph: WeightedGraph) -> float:
        weights = [w for _, _, w in graph.edges()]
        if not weights:
            return 0.0
        return self.factor * (sum(weights) / len(weights))


@dataclass(frozen=True)
class QuantileThreshold(ThresholdRule):
    """``w`` = the given quantile of the edge-weight distribution.

    ``q = 0.5`` (the default rule) lets labels spread across the heavier
    half of the edges.
    """

    q: float = 0.5

    def __post_init__(self) -> None:
        if not 0.0 <= self.q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {self.q!r}")

    def threshold(self, graph: WeightedGraph) -> float:
        weights = sorted(w for _, _, w in graph.edges())
        if not weights:
            return 0.0
        # Nearest-rank quantile; q=0 -> smallest, q=1 -> largest.
        rank = min(len(weights) - 1, int(self.q * len(weights)))
        return weights[rank]
