"""Graph compression via label propagation (Algorithm 1 of the paper).

The pipeline: split the function data flow graph on component boundaries,
run a threshold-guided label propagation on each sub-graph (starting from
the max-degree node, terminating on the update-rate threshold ``alpha_t``
or the round cap ``beta_t``), then merge directly-connected nodes sharing
a label.  Highly coupled functions end up fused, guaranteeing they execute
on the same device.
"""

from repro.compression.compressor import (
    CompressionConfig,
    CompressionResult,
    GraphCompressor,
)
from repro.compression.labels import (
    AbsoluteThreshold,
    MeanScaledThreshold,
    QuantileThreshold,
    ThresholdRule,
)
from repro.compression.merge import CompressedGraph, merge_labeled_graph
from repro.compression.parallel import compress_components_parallel
from repro.compression.quality import (
    compression_quality,
    internalized_traffic_fraction,
    weighted_modularity,
)
from repro.compression.propagation import (
    LabelPropagation,
    PropagationReport,
    TraversalPolicy,
)
from repro.compression.termination import TerminationCriteria

__all__ = [
    "GraphCompressor",
    "CompressionConfig",
    "CompressionResult",
    "ThresholdRule",
    "AbsoluteThreshold",
    "MeanScaledThreshold",
    "QuantileThreshold",
    "LabelPropagation",
    "PropagationReport",
    "TraversalPolicy",
    "TerminationCriteria",
    "CompressedGraph",
    "merge_labeled_graph",
    "compress_components_parallel",
    "compression_quality",
    "internalized_traffic_fraction",
    "weighted_modularity",
]
