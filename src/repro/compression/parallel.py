"""Parallel per-component compression.

Algorithm 1 creates "one new process for each sub-graph" and runs all
propagation processes in parallel.  Here each connected component's
propagation runs on a thread pool; results are combined in component
order, so the outcome is bit-identical to the serial path regardless of
scheduling.  (Threads rather than processes: the per-component work is
pure-Python graph walking, and avoiding pickling keeps small components
cheap; the ``max_workers`` knob still exercises real concurrency for the
Fig. 9 timing comparison.)
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from collections.abc import Hashable
from typing import TYPE_CHECKING

from repro.compression.merge import merge_labeled_graph
from repro.compression.propagation import LabelPropagation, PropagationReport
from repro.graphs.components import connected_components
from repro.graphs.weighted_graph import WeightedGraph

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.compression.compressor import CompressionConfig, CompressionResult

NodeId = Hashable


def compress_components_parallel(
    graph: WeightedGraph,
    config: "CompressionConfig",
    max_workers: int | None = None,
) -> "CompressionResult":
    """Compress *graph* with one propagation task per connected component.

    Deterministic: tasks may finish in any order, but label namespaces are
    assigned by component index, so the merged result equals the serial
    result exactly.
    """
    from repro.compression.compressor import CompressionResult

    components = connected_components(graph)
    subgraphs = [graph.subgraph(component) for component in components]

    def run_one(subgraph: WeightedGraph) -> PropagationReport:
        propagation = LabelPropagation(
            threshold_rule=config.threshold_rule,
            termination=config.termination,
            policy=config.policy,
            kernel=config.kernel,
        )
        return propagation.run(subgraph)

    if not subgraphs:
        reports: list[PropagationReport] = []
    elif len(subgraphs) == 1:
        reports = [run_one(subgraphs[0])]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as executor:
            reports = list(executor.map(run_one, subgraphs))

    labels: dict[NodeId, int] = {}
    label_offset = 0
    for report in reports:
        for node, label in report.labels.items():
            labels[node] = label + label_offset
        label_offset += max(report.labels.values(), default=-1) + 1

    compressed = merge_labeled_graph(graph, labels)
    return CompressionResult(compressed=compressed, component_reports=reports)
