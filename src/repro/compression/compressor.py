"""The graph compression facade (Algorithm 1).

``GraphCompressor`` wires together the threshold rule, label propagation,
termination criteria and node merging, and adds the component split: the
input graph is divided on connected-component boundaries ("component
boundaries" in the paper — our workload generators emit one connected
piece per application component) and each piece is compressed
independently, optionally in parallel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Hashable

from repro.compression.labels import QuantileThreshold, ThresholdRule
from repro.compression.merge import CompressedGraph, merge_labeled_graph
from repro.compression.propagation import (
    PROPAGATION_KERNELS,
    LabelPropagation,
    PropagationReport,
    TraversalPolicy,
)
from repro.compression.termination import TerminationCriteria
from repro.graphs.components import connected_components
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


@dataclass(frozen=True)
class CompressionConfig:
    """All tunables of Algorithm 1 in one place.

    ``alpha_threshold`` and ``max_rounds`` are the paper's ``alpha_t`` and
    ``beta_t``; ``threshold_rule`` supplies the coupling threshold ``w``.
    ``kernel`` selects the propagation implementation (``"dict"``,
    ``"csr"``, ``"numpy"`` or ``"auto"``); all produce bit-identical
    labels.
    """

    threshold_rule: ThresholdRule = field(default_factory=QuantileThreshold)
    termination: TerminationCriteria = field(default_factory=TerminationCriteria)
    policy: TraversalPolicy = TraversalPolicy.BFS
    parallel: bool = False
    max_workers: int | None = None
    kernel: str = "auto"

    def __post_init__(self) -> None:
        if self.kernel not in PROPAGATION_KERNELS:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; expected one of {PROPAGATION_KERNELS}"
            )


@dataclass
class CompressionResult:
    """Outcome of compressing one (possibly multi-component) graph."""

    compressed: CompressedGraph
    component_reports: list[PropagationReport]

    @property
    def rounds_total(self) -> int:
        """Total propagation rounds across all components."""
        return sum(report.rounds for report in self.component_reports)


class GraphCompressor:
    """Compresses function data flow graphs per Algorithm 1.

    >>> from repro.graphs.generators import two_cluster_graph
    >>> compressor = GraphCompressor()
    >>> result = compressor.compress(two_cluster_graph(4))
    >>> result.compressed.graph.node_count <= 8
    True
    """

    def __init__(self, config: CompressionConfig | None = None) -> None:
        self.config = config or CompressionConfig()

    def compress(self, graph: WeightedGraph) -> CompressionResult:
        """Compress *graph*, splitting on component boundaries first."""
        if self.config.parallel:
            # Local import keeps the serial path free of executor machinery.
            from repro.compression.parallel import compress_components_parallel

            return compress_components_parallel(
                graph, self.config, max_workers=self.config.max_workers
            )
        return self.compress_serial(graph)

    def compress_serial(self, graph: WeightedGraph) -> CompressionResult:
        """Single-threaded compression (reference implementation)."""
        components = connected_components(graph)
        reports: list[PropagationReport] = []
        labels: dict[NodeId, int] = {}
        label_offset = 0
        for component in components:
            subgraph = graph.subgraph(component)
            report = self._propagate(subgraph)
            reports.append(report)
            for node, label in report.labels.items():
                labels[node] = label + label_offset
            label_offset += max(report.labels.values(), default=-1) + 1
        compressed = merge_labeled_graph(graph, labels)
        return CompressionResult(compressed=compressed, component_reports=reports)

    def _propagate(self, subgraph: WeightedGraph) -> PropagationReport:
        """Run one component's label propagation."""
        propagation = LabelPropagation(
            threshold_rule=self.config.threshold_rule,
            termination=self.config.termination,
            policy=self.config.policy,
            kernel=self.config.kernel,
        )
        return propagation.run(subgraph)
