"""Compression quality metrics.

Two questions decide whether a compression (any clustering that will be
cut along cluster boundaries) did its job:

* **internalised traffic** — what fraction of the total communication
  weight now lives *inside* super-nodes, where no cut can ever charge it?
  Algorithm 1's whole purpose is maximising this without destroying the
  cut structure.
* **weighted modularity** — the standard community-quality score
  ``Q = sum_c (w_in_c / W - (vol_c / 2W)^2)``: did the clustering follow
  the graph's actual coupling structure or just swallow everything?

Used by the compression ablation bench and the quality tests that pin
Algorithm 1's behaviour on clustered workloads.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.compression.merge import CompressedGraph
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def internalized_traffic_fraction(
    original: WeightedGraph, clusters: Iterable[Iterable[NodeId]]
) -> float:
    """Fraction of total edge weight internal to the given clusters.

    0.0 when the original graph has no edges (nothing to internalise).
    """
    membership: dict[NodeId, int] = {}
    for index, cluster in enumerate(clusters):
        for node in cluster:
            if node in membership:
                raise ValueError(f"node {node!r} appears in two clusters")
            membership[node] = index
    total = 0.0
    internal = 0.0
    for u, v, weight in original.edges():
        total += weight
        if membership.get(u) is not None and membership.get(u) == membership.get(v):
            internal += weight
    if total == 0.0:
        return 0.0
    return internal / total


def weighted_modularity(
    graph: WeightedGraph, clusters: Iterable[Iterable[NodeId]]
) -> float:
    """Newman's weighted modularity of a clustering.

    Ranges in [-0.5, 1); higher means the clustering tracks the graph's
    dense regions.  Edgeless graphs score 0.0.
    """
    total = graph.total_edge_weight()
    if total == 0.0:
        return 0.0
    membership: dict[NodeId, int] = {}
    for index, cluster in enumerate(clusters):
        for node in cluster:
            membership[node] = index

    internal: dict[int, float] = {}
    volume: dict[int, float] = {}
    for node in graph.nodes():
        cluster = membership.get(node)
        if cluster is None:
            continue
        volume[cluster] = volume.get(cluster, 0.0) + graph.weighted_degree(node)
    for u, v, weight in graph.edges():
        cu, cv = membership.get(u), membership.get(v)
        if cu is not None and cu == cv:
            internal[cu] = internal.get(cu, 0.0) + weight

    q = 0.0
    for cluster, vol in volume.items():
        q += internal.get(cluster, 0.0) / total - (vol / (2.0 * total)) ** 2
    return q


def compression_quality(
    original: WeightedGraph, compressed: CompressedGraph
) -> dict[str, float]:
    """Bundle of quality metrics for one compression outcome."""
    return {
        "node_reduction": compressed.node_reduction,
        "edge_reduction": compressed.edge_reduction,
        "internalized_traffic": internalized_traffic_fraction(
            original, compressed.clusters
        ),
        "modularity": weighted_modularity(original, compressed.clusters),
    }
