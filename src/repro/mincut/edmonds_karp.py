"""Edmonds-Karp maximum flow (BFS-augmenting Ford-Fulkerson).

The paper's description: "A specialized Ford-Fulkerson algorithm, also
called as Edmond-Karp algorithm guarantees to find maximum flow in limited
number of iterations."  BFS always augments along a shortest path, giving
the O(V * E^2) bound and — crucially for real-valued capacities — ensuring
termination, which plain Ford-Fulkerson does not (Zwick 1995, cited by the
paper).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.residual import ResidualNetwork

NodeId = Hashable


@dataclass
class MaxFlowResult:
    """Value and certificate of a max-flow run."""

    value: float
    """The maximum flow = minimum s-t cut weight (duality)."""

    source_side: set[NodeId]
    """Source side of a minimum cut (residual-reachable set)."""

    sink_side: set[NodeId]
    """Complement of :attr:`source_side`."""

    augmentations: int
    """Number of augmenting paths used."""

    residual: ResidualNetwork
    """Final residual network (exposes per-edge flow for inspection)."""


def edmonds_karp(graph: WeightedGraph, source: NodeId, sink: NodeId) -> MaxFlowResult:
    """Compute the max flow / min cut between *source* and *sink*.

    Works directly on the undirected weighted graph (each edge yields
    capacity in both directions).  Returns both the flow value and the
    minimum-cut bipartition.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} does not exist")
    if not graph.has_node(sink):
        raise KeyError(f"sink {sink!r} does not exist")
    if source == sink:
        raise ValueError("source and sink must differ")

    network = ResidualNetwork(graph)
    total_flow = 0.0
    augmentations = 0

    while True:
        parents = _bfs_augmenting_path(network, source, sink)
        if parents is None:
            break
        # Bottleneck along the path.
        bottleneck = float("inf")
        node = sink
        while node != source:
            parent = parents[node]
            bottleneck = min(bottleneck, network.residual(parent, node))
            node = parent
        # Apply the augmentation.
        node = sink
        while node != source:
            parent = parents[node]
            network.push(parent, node, bottleneck)
            node = parent
        total_flow += bottleneck
        augmentations += 1

    source_side = network.reachable_from(source)
    sink_side = set(graph.nodes()) - source_side
    return MaxFlowResult(
        value=total_flow,
        source_side=source_side,
        sink_side=sink_side,
        augmentations=augmentations,
        residual=network,
    )


def _bfs_augmenting_path(
    network: ResidualNetwork, source: NodeId, sink: NodeId
) -> dict[NodeId, NodeId] | None:
    """Shortest augmenting path as a child -> parent map, or ``None``."""
    parents: dict[NodeId, NodeId] = {}
    visited = {source}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, capacity in network.neighbors(node):
            if capacity <= 1e-12 or neighbor in visited:
                continue
            visited.add(neighbor)
            parents[neighbor] = node
            if neighbor == sink:
                return parents
            queue.append(neighbor)
    return None
