"""Source/sink selection for the max-flow baseline.

The paper applies "the maximum flow minimum cut algorithm" as a drop-in
replacement for the spectral split, but an s-t max flow needs endpoints.
The heuristic used here mirrors common practice in partitioning
literature: the source is the highest-weighted-degree node (the busiest
function), the sink is a node at maximum hop distance from it (the most
peripheral function) — maximising the chance that the s-t cut approximates
the global minimum cut on call-graph-shaped inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.graphs.traversal import farthest_node
from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.edmonds_karp import MaxFlowResult, edmonds_karp

NodeId = Hashable


def select_source_sink(
    graph: WeightedGraph, metric: str = "hops"
) -> tuple[NodeId, NodeId]:
    """Pick a deterministic (source, sink) pair for the baseline cut.

    *metric* is ``"hops"`` (the default: sink at maximum hop distance) or
    ``"weighted"`` (sink at maximum inverse-coupling distance — the most
    loosely coupled function, often yielding a better-separating cut).
    """
    if graph.node_count < 2:
        raise ValueError("need at least two nodes to pick a source/sink pair")
    source = max(
        graph.nodes(),
        key=lambda node: (graph.weighted_degree(node), graph.degree(node)),
    )
    if metric == "hops":
        sink = farthest_node(graph, source)
    elif metric == "weighted":
        from repro.graphs.paths import weighted_farthest_node

        sink = weighted_farthest_node(graph, source)
    else:
        raise ValueError(f"unknown metric {metric!r}; expected 'hops' or 'weighted'")
    if sink == source:
        # Isolated source in a disconnected graph: fall back to any other node.
        sink = next(node for node in graph.nodes() if node != source)
    return source, sink


@dataclass
class MinCutBisection:
    """Bipartition produced by the max-flow baseline."""

    part_one: set[NodeId]
    part_two: set[NodeId]
    cut_value: float
    flow: MaxFlowResult


def maxflow_bisect(graph: WeightedGraph) -> MinCutBisection:
    """Bisect *graph* with Edmonds-Karp between heuristic endpoints.

    A single-node graph returns that node alone with cut 0, matching the
    spectral bisection's degenerate behaviour.
    """
    if graph.node_count == 0:
        raise ValueError("cannot bisect an empty graph")
    if graph.node_count == 1:
        only = set(graph.nodes())
        return MinCutBisection(only, set(), 0.0, None)  # type: ignore[arg-type]
    source, sink = select_source_sink(graph)
    flow = edmonds_karp(graph, source, sink)
    return MinCutBisection(
        part_one=flow.source_side,
        part_two=flow.sink_side,
        cut_value=flow.value,
        flow=flow,
    )
