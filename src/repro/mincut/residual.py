"""Residual flow network over an undirected weighted graph.

An undirected edge of capacity ``c`` becomes a pair of directed arcs with
capacity ``c`` each (the standard reduction for undirected max-flow).
Flow pushed along ``u -> v`` raises the residual capacity of ``v -> u``,
so augmenting algorithms can cancel earlier flow.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterator

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


class ResidualNetwork:
    """Mutable residual capacities for max-flow computations."""

    def __init__(self, graph: WeightedGraph) -> None:
        self._capacity: dict[NodeId, dict[NodeId, float]] = {
            node: {} for node in graph.nodes()
        }
        for u, v, w in graph.edges():
            self._capacity[u][v] = self._capacity[u].get(v, 0.0) + w
            self._capacity[v][u] = self._capacity[v].get(u, 0.0) + w
        self._original = {
            u: dict(neighbors) for u, neighbors in self._capacity.items()
        }

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over network nodes."""
        return iter(self._capacity)

    def has_node(self, node: NodeId) -> bool:
        """Whether *node* exists in the network."""
        return node in self._capacity

    def residual(self, u: NodeId, v: NodeId) -> float:
        """Remaining capacity on arc ``u -> v`` (0 if absent)."""
        return self._capacity.get(u, {}).get(v, 0.0)

    def neighbors(self, node: NodeId) -> Iterator[tuple[NodeId, float]]:
        """Iterate over ``(neighbor, residual capacity)`` pairs."""
        return iter(self._capacity[node].items())

    def push(self, u: NodeId, v: NodeId, amount: float) -> None:
        """Send *amount* of flow along ``u -> v``.

        Decreases the forward residual, increases the reverse residual.
        Over-pushing (amount beyond the residual) is rejected.
        """
        if amount <= 0:
            raise ValueError(f"flow amount must be > 0, got {amount!r}")
        available = self.residual(u, v)
        if amount > available + 1e-9:
            raise ValueError(
                f"cannot push {amount!r} along ({u!r}, {v!r}); residual is {available!r}"
            )
        self._capacity[u][v] = available - amount
        self._capacity[v][u] = self.residual(v, u) + amount

    def reachable_from(self, source: NodeId, epsilon: float = 1e-12) -> set[NodeId]:
        """Nodes reachable from *source* through positive-residual arcs.

        After a max-flow terminates, this is the source side of a minimum
        cut (the max-flow/min-cut constructive proof).
        """
        if source not in self._capacity:
            raise KeyError(f"node {source!r} does not exist")
        seen = {source}
        queue: deque[NodeId] = deque([source])
        while queue:
            node = queue.popleft()
            for neighbor, capacity in self._capacity[node].items():
                if capacity > epsilon and neighbor not in seen:
                    seen.add(neighbor)
                    queue.append(neighbor)
        return seen

    def flow_on(self, u: NodeId, v: NodeId) -> float:
        """Net flow currently assigned to arc ``u -> v`` (>= 0)."""
        original = self._original.get(u, {}).get(v, 0.0)
        return max(0.0, original - self.residual(u, v))
