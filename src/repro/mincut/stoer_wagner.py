"""Stoer-Wagner global minimum cut (ablation comparator).

The paper's max-flow baseline needs a source/sink pair, chosen
heuristically; Stoer-Wagner finds the *global* minimum cut without one,
which the ablation bench uses as the gold standard for cut weight.  The
implementation is the classic maximum-adjacency-search contraction scheme,
O(V^3) with a simple priority structure — ample for compressed sub-graphs.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def stoer_wagner_min_cut(graph: WeightedGraph) -> tuple[float, set[NodeId]]:
    """Return ``(cut weight, one side of the cut)`` for the global min cut.

    Requires a connected graph with at least two nodes (a disconnected
    graph's minimum cut is trivially 0 across components; callers split on
    components first, as the pipeline always does).
    """
    n = graph.node_count
    if n < 2:
        raise ValueError(f"minimum cut needs >= 2 nodes, got {n}")

    # Working adjacency with contractable super-nodes.
    adjacency: dict[NodeId, dict[NodeId, float]] = {
        node: dict(graph.neighbor_items(node)) for node in graph.nodes()
    }
    members: dict[NodeId, set[NodeId]] = {node: {node} for node in graph.nodes()}

    best_cut = float("inf")
    best_side: set[NodeId] = set()

    while len(adjacency) > 1:
        cut_of_phase, last, second_last = _minimum_cut_phase(adjacency)
        if cut_of_phase < best_cut:
            best_cut = cut_of_phase
            best_side = set(members[last])
        _contract(adjacency, members, second_last, last)

    return best_cut, best_side


def _minimum_cut_phase(
    adjacency: dict[NodeId, dict[NodeId, float]],
) -> tuple[float, NodeId, NodeId]:
    """One maximum-adjacency search; returns (cut-of-phase, last, 2nd-last)."""
    start = next(iter(adjacency))
    added = {start}
    weights = {node: 0.0 for node in adjacency}
    heap: list[tuple[float, int, NodeId]] = []
    counter = 0
    for neighbor, weight in adjacency[start].items():
        weights[neighbor] = weight
        heapq.heappush(heap, (-weight, counter, neighbor))
        counter += 1

    order = [start]
    while len(added) < len(adjacency):
        while True:
            negative_weight, _, node = heapq.heappop(heap)
            if node not in added and -negative_weight == weights[node]:
                break
        added.add(node)
        order.append(node)
        for neighbor, weight in adjacency[node].items():
            if neighbor not in added:
                weights[neighbor] += weight
                heapq.heappush(heap, (-weights[neighbor], counter, neighbor))
                counter += 1

    last = order[-1]
    second_last = order[-2]
    cut_of_phase = sum(adjacency[last].values())
    return cut_of_phase, last, second_last


def _contract(
    adjacency: dict[NodeId, dict[NodeId, float]],
    members: dict[NodeId, set[NodeId]],
    survivor: NodeId,
    absorbed: NodeId,
) -> None:
    """Contract *absorbed* into *survivor* in the working adjacency."""
    for neighbor, weight in adjacency[absorbed].items():
        if neighbor == survivor:
            continue
        adjacency[survivor][neighbor] = adjacency[survivor].get(neighbor, 0.0) + weight
        adjacency[neighbor][survivor] = adjacency[survivor][neighbor]
        del adjacency[neighbor][absorbed]
    adjacency[survivor].pop(absorbed, None)
    del adjacency[absorbed]
    members[survivor] |= members[absorbed]
    del members[absorbed]
