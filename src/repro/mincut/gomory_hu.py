"""Gomory-Hu trees: all-pairs minimum cuts from n-1 max-flow calls.

The max-flow baseline's weak spot is endpoint selection (see
:mod:`repro.mincut.st_selection`).  A Gomory-Hu tree answers the question
"how bad can the heuristic be?" exactly: it encodes the minimum s-t cut
for *every* node pair — the minimum edge weight on the tree path between
them — after only ``n - 1`` max-flow computations (Gusfield's simplified
construction, which needs no graph contractions).

Used by the ablation tests to certify that the global minimum cut,
Stoer-Wagner's answer, and the lightest Gomory-Hu edge all agree.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.edmonds_karp import edmonds_karp

NodeId = Hashable


@dataclass
class GomoryHuTree:
    """The equivalent-flow tree of a connected weighted graph."""

    parent: dict[NodeId, NodeId | None]
    flow_to_parent: dict[NodeId, float]
    root: NodeId

    def edges(self) -> list[tuple[NodeId, NodeId, float]]:
        """Tree edges as ``(child, parent, min-cut value)``."""
        return [
            (child, parent, self.flow_to_parent[child])
            for child, parent in self.parent.items()
            if parent is not None
        ]

    def min_cut_value(self, u: NodeId, v: NodeId) -> float:
        """Minimum s-t cut between *u* and *v*: the lightest edge on the
        unique tree path connecting them."""
        if u == v:
            raise ValueError("min cut needs two distinct nodes")
        ancestors_u = self._path_to_root(u)
        depth_u = {node: i for i, node in enumerate(ancestors_u)}
        # Walk v upward until the paths meet.
        lightest = float("inf")
        node = v
        while node not in depth_u:
            lightest = min(lightest, self.flow_to_parent[node])
            parent = self.parent[node]
            assert parent is not None, "walk escaped the tree"
            node = parent
        meeting = node
        for ancestor in ancestors_u[: depth_u[meeting]]:
            lightest = min(lightest, self.flow_to_parent[ancestor])
        return lightest

    def global_min_cut(self) -> tuple[float, NodeId]:
        """Lightest tree edge = the global minimum cut of the graph."""
        best_child: NodeId | None = None
        best = float("inf")
        for child, parent in self.parent.items():
            if parent is None:
                continue
            if self.flow_to_parent[child] < best:
                best = self.flow_to_parent[child]
                best_child = child
        if best_child is None:
            raise ValueError("tree has no edges (single-node graph)")
        return best, best_child

    def side_of(self, child: NodeId) -> set[NodeId]:
        """Nodes on *child*'s side when its parent edge is removed."""
        children: dict[NodeId, list[NodeId]] = {}
        for node, parent in self.parent.items():
            if parent is not None:
                children.setdefault(parent, []).append(node)
        side = {child}
        queue = deque([child])
        while queue:
            node = queue.popleft()
            for grandchild in children.get(node, []):
                side.add(grandchild)
                queue.append(grandchild)
        return side

    def _path_to_root(self, node: NodeId) -> list[NodeId]:
        path = [node]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        return path


def gomory_hu_tree(graph: WeightedGraph) -> GomoryHuTree:
    """Build the Gomory-Hu tree via Gusfield's algorithm.

    Requires a connected graph with at least one node.  Exactly
    ``n - 1`` Edmonds-Karp computations are performed.
    """
    nodes = graph.node_list()
    if not nodes:
        raise ValueError("cannot build a Gomory-Hu tree of an empty graph")
    root = nodes[0]
    parent: dict[NodeId, NodeId | None] = {node: root for node in nodes}
    parent[root] = None
    flow_to_parent: dict[NodeId, float] = {}

    for node in nodes[1:]:
        target = parent[node]
        assert target is not None
        result = edmonds_karp(graph, node, target)
        flow_to_parent[node] = result.value
        # Gusfield re-hanging rule: siblings on `node`'s side of the cut
        # re-attach under `node`.
        for other in nodes[1:]:
            if other != node and parent[other] == target and other in result.source_side:
                parent[other] = node
        # If the grandparent is on node's side, swap positions with target.
        grandparent = parent[target]
        if grandparent is not None and grandparent in result.source_side:
            parent[node] = grandparent
            parent[target] = node
            flow_to_parent[node] = flow_to_parent.get(target, result.value)
            flow_to_parent[target] = result.value
    return GomoryHuTree(parent=parent, flow_to_parent=flow_to_parent, root=root)
