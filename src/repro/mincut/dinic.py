"""Dinic's maximum-flow algorithm (ablation comparator).

Strictly faster than Edmonds-Karp on the dense compressed graphs the
pipeline produces (O(V^2 E) vs O(V E^2)); the ablation bench
``bench_ablation_cut_algorithms`` measures whether the difference matters
at COPMECS scales.  Level graphs are rebuilt by BFS; blocking flows are
found by DFS with the standard current-arc optimisation.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.edmonds_karp import MaxFlowResult
from repro.mincut.residual import ResidualNetwork

NodeId = Hashable

_EPS = 1e-12


def dinic_max_flow(graph: WeightedGraph, source: NodeId, sink: NodeId) -> MaxFlowResult:
    """Compute the max flow / min cut between *source* and *sink* via Dinic.

    Returns the same :class:`MaxFlowResult` as
    :func:`~repro.mincut.edmonds_karp.edmonds_karp`; the ``augmentations``
    field counts blocking-flow phases instead of single paths.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} does not exist")
    if not graph.has_node(sink):
        raise KeyError(f"sink {sink!r} does not exist")
    if source == sink:
        raise ValueError("source and sink must differ")

    network = ResidualNetwork(graph)
    total_flow = 0.0
    phases = 0

    while True:
        levels = _build_levels(network, source, sink)
        if levels is None:
            break
        phases += 1
        # Current-arc pointers: skip arcs already saturated this phase.
        iterators = {node: list(network.neighbors(node)) for node in network.nodes()}
        pointers = {node: 0 for node in network.nodes()}
        while True:
            pushed = _dfs_blocking(
                network, source, sink, float("inf"), levels, iterators, pointers
            )
            if pushed <= _EPS:
                break
            total_flow += pushed

    source_side = network.reachable_from(source)
    sink_side = set(graph.nodes()) - source_side
    return MaxFlowResult(
        value=total_flow,
        source_side=source_side,
        sink_side=sink_side,
        augmentations=phases,
        residual=network,
    )


def _build_levels(
    network: ResidualNetwork, source: NodeId, sink: NodeId
) -> dict[NodeId, int] | None:
    """BFS level assignment; ``None`` when the sink is unreachable."""
    levels = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, capacity in network.neighbors(node):
            if capacity > _EPS and neighbor not in levels:
                levels[neighbor] = levels[node] + 1
                queue.append(neighbor)
    return levels if sink in levels else None


def _dfs_blocking(
    network: ResidualNetwork,
    node: NodeId,
    sink: NodeId,
    limit: float,
    levels: dict[NodeId, int],
    iterators: dict[NodeId, list[tuple[NodeId, float]]],
    pointers: dict[NodeId, int],
) -> float:
    """Push one augmenting unit of blocking flow; returns the amount."""
    if node == sink:
        return limit
    arcs = iterators[node]
    while pointers[node] < len(arcs):
        neighbor, _ = arcs[pointers[node]]
        capacity = network.residual(node, neighbor)
        if capacity > _EPS and levels.get(neighbor, -1) == levels[node] + 1:
            pushed = _dfs_blocking(
                network, neighbor, sink, min(limit, capacity), levels, iterators, pointers
            )
            if pushed > _EPS:
                network.push(node, neighbor, pushed)
                return pushed
        pointers[node] += 1
    return 0.0
