"""Maximum-flow / minimum-cut algorithms (the paper's first baseline).

The paper compares its spectral cut against "the maximum flow minimum cut
algorithm" (Ford-Fulkerson, specialised as Edmonds-Karp).  This package
implements that baseline from scratch on the undirected weighted graph
substrate, plus two extensions used by the ablation benches: Dinic's
algorithm and the Stoer-Wagner global minimum cut.
"""

from repro.mincut.dinic import dinic_max_flow
from repro.mincut.edmonds_karp import MaxFlowResult, edmonds_karp
from repro.mincut.gomory_hu import GomoryHuTree, gomory_hu_tree
from repro.mincut.karger import KargerResult, karger_min_cut
from repro.mincut.residual import ResidualNetwork
from repro.mincut.st_selection import maxflow_bisect, select_source_sink
from repro.mincut.stoer_wagner import stoer_wagner_min_cut

__all__ = [
    "ResidualNetwork",
    "edmonds_karp",
    "MaxFlowResult",
    "dinic_max_flow",
    "stoer_wagner_min_cut",
    "select_source_sink",
    "maxflow_bisect",
    "gomory_hu_tree",
    "GomoryHuTree",
    "karger_min_cut",
    "KargerResult",
]
