"""Karger's randomized contraction min cut (Monte Carlo comparator).

The randomized counterpoint to the deterministic cut algorithms: contract
uniformly-random edges (weight-proportional, the weighted variant) until
two super-nodes remain; the surviving edges form a cut that is the global
minimum with probability >= 2/n^2 per trial.  Repetition drives the
failure probability down geometrically.

Used by the ablation tests as an independent witness for Stoer-Wagner
(two completely different algorithms agreeing on the minimum cut is a
strong correctness signal) and as a study in how many trials randomized
contraction actually needs on call-graph-shaped inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph
from repro.utils.rng import RandomSource

NodeId = Hashable


@dataclass
class KargerResult:
    """Best cut found across all trials."""

    cut_value: float
    part_one: set[NodeId]
    trials: int
    best_trial: int


def _contract_once(graph: WeightedGraph, rng: RandomSource) -> tuple[float, set[NodeId]]:
    """One full contraction run; returns (cut value, one side)."""
    adjacency: dict[NodeId, dict[NodeId, float]] = {
        node: dict(graph.neighbor_items(node)) for node in graph.nodes()
    }
    members: dict[NodeId, set[NodeId]] = {node: {node} for node in graph.nodes()}

    while len(adjacency) > 2:
        # Weight-proportional random edge selection.
        total = 0.0
        edges: list[tuple[NodeId, NodeId, float]] = []
        for u, neighbors in adjacency.items():
            for v, w in neighbors.items():
                if str(u) < str(v) or (str(u) == str(v)):
                    edges.append((u, v, w))
                    total += w
        pick = rng.uniform(0.0, total)
        acc = 0.0
        chosen = edges[-1]
        for edge in edges:
            acc += edge[2]
            if pick <= acc:
                chosen = edge
                break
        survivor, absorbed, _ = chosen

        # Contract absorbed into survivor.
        for neighbor, weight in adjacency[absorbed].items():
            if neighbor == survivor:
                continue
            adjacency[survivor][neighbor] = adjacency[survivor].get(neighbor, 0.0) + weight
            adjacency[neighbor][survivor] = adjacency[survivor][neighbor]
            del adjacency[neighbor][absorbed]
        adjacency[survivor].pop(absorbed, None)
        del adjacency[absorbed]
        members[survivor] |= members[absorbed]
        del members[absorbed]

    (side_a, neighbors_a), (_side_b, _) = adjacency.items()
    cut = sum(neighbors_a.values())
    return cut, set(members[side_a])


def karger_min_cut(
    graph: WeightedGraph, trials: int | None = None, seed: int = 0
) -> KargerResult:
    """Run *trials* independent contractions; return the best cut found.

    The default trial count is the textbook ``n^2 ln n``-flavoured budget
    capped at 200 (plenty at the compressed-sub-graph sizes this library
    cuts).  Requires a connected graph with >= 2 nodes.
    """
    n = graph.node_count
    if n < 2:
        raise ValueError(f"minimum cut needs >= 2 nodes, got {n}")
    if trials is None:
        import math

        trials = min(200, max(10, int(n * n * math.log(max(n, 2)) / 10)))
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")

    rng = RandomSource(seed).spawn("karger", n, trials)
    best_value = float("inf")
    best_side: set[NodeId] = set()
    best_trial = 0
    for trial in range(trials):
        value, side = _contract_once(graph, rng)
        if value < best_value:
            best_value = value
            best_side = side
            best_trial = trial
    return KargerResult(
        cut_value=best_value, part_one=best_side, trials=trials, best_trial=best_trial
    )
