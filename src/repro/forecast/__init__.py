"""Forecast-driven proactive orchestration with SLA admission.

The planning stack (:mod:`repro.mec`) solves one admission instant; the
fleet layer (:mod:`repro.fleet`) reacts to imbalance after it is
observed.  This package adds the missing *temporal* dimension, in the
spirit of Wang et al.'s online multi-component placement:

* :mod:`repro.forecast.series` — bounded :class:`TimeSeries` histories,
  registered in the service :class:`~repro.service.metrics.MetricsRegistry`;
* :mod:`repro.forecast.forecaster` — naive / EWMA / least-squares AR(p)
  forecasters with rolling MAE, and ``make_forecaster("auto")`` that
  picks the best-scoring model per series;
* :mod:`repro.forecast.sla` — per-user :class:`UserSLA` deadlines that
  turn routing into constrained placement, and the :class:`SLAReport`
  scorecard whose violation *rate* is a first-class benchmark column;
* :mod:`repro.forecast.proactive` — :class:`FleetTelemetry`, the
  recorded histories + forecasts behind
  ``EdgeFleet.rebalance(proactive=True, horizon=h)``.

The package is a leaf: it never imports :mod:`repro.fleet`, so the fleet
can build on it without cycles.
"""

from repro.forecast.forecaster import (
    FORECASTERS,
    ARForecaster,
    AutoForecaster,
    EWMAForecaster,
    Forecaster,
    NaiveForecaster,
    make_forecaster,
)
from repro.forecast.proactive import (
    DEFAULT_UTILISATION_THRESHOLD,
    FleetTelemetry,
    HotspotForecast,
    link_series_name,
    utilisation_series_name,
)
from repro.forecast.series import TimeSeries
from repro.forecast.sla import (
    SLA_EPSILON,
    SLA_INFEASIBLE_ACTIONS,
    SLAReport,
    UserSLA,
)

__all__ = [
    "ARForecaster",
    "AutoForecaster",
    "DEFAULT_UTILISATION_THRESHOLD",
    "EWMAForecaster",
    "FORECASTERS",
    "FleetTelemetry",
    "Forecaster",
    "HotspotForecast",
    "NaiveForecaster",
    "SLAReport",
    "SLA_EPSILON",
    "SLA_INFEASIBLE_ACTIONS",
    "TimeSeries",
    "UserSLA",
    "link_series_name",
    "make_forecaster",
    "utilisation_series_name",
]
