"""Fleet telemetry: recorded histories + forecasts behind proactive moves.

The reactive rebalancer (:meth:`repro.fleet.fleet.EdgeFleet.rebalance`)
fires only after an imbalance is *observed*; by then the hotspot's users
have already been paying inflated waiting times.  Proactive
orchestration inverts that: the fleet records per-server utilisation and
per-(user, server) link RTT into bounded :class:`~repro.forecast.series.
TimeSeries` on every admission/rebalance tick, one
:class:`~repro.forecast.forecaster.Forecaster` per series scores itself
as the history grows, and ``rebalance(proactive=True, horizon=h)`` moves
users off servers whose *forecasted* utilisation (or link RTT) breaches
a threshold ``h`` ticks out — before the hotspot materialises, every
move still priced through the fleet's
:class:`~repro.fleet.migration.MigrationCostModel`.

:class:`FleetTelemetry` owns the series/forecaster bookkeeping and is
deliberately fleet-agnostic: it records what it is told and answers
predictions, so tests can drive it with synthetic traces.  Series are
registered in the fleet's :class:`~repro.service.metrics.MetricsRegistry`
so histories show up in the standard metrics report.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.forecast.forecaster import Forecaster, make_forecaster
from repro.forecast.series import TimeSeries
from repro.service.metrics import MetricsRegistry

DEFAULT_UTILISATION_THRESHOLD = 0.8
"""Forecasted utilisation above this marks a server as a predicted
hotspot (the proactive rebalancer's default trigger)."""


def utilisation_series_name(server_id: str) -> str:
    """Registry name of one server's utilisation history."""
    return f"fleet_util_{server_id}"


def link_series_name(user_id: str, server_id: str) -> str:
    """Registry name of one (user, server) link's RTT history."""
    return f"fleet_rtt_{user_id}@{server_id}"


@dataclass(frozen=True)
class HotspotForecast:
    """One server's predicted utilisation against the breach threshold."""

    server_id: str
    predicted: float
    threshold: float

    @property
    def breach(self) -> bool:
        return self.predicted > self.threshold


class FleetTelemetry:
    """Per-series histories and forecasters for one fleet.

    One :class:`TimeSeries` (in *metrics*) and one forecaster (built by
    :func:`~repro.forecast.forecaster.make_forecaster` from
    *forecaster*) per recorded signal.  ``"auto"`` picks the
    lowest-rolling-MAE model *per series*; the default ``"ewma"`` keeps
    per-tick recording O(1) per signal for fleets that never forecast.
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        forecaster: str = "ewma",
        window: int = 128,
    ) -> None:
        # Validate the forecaster name eagerly: a typo should fail at
        # fleet construction, not on the first recorded tick.
        make_forecaster(forecaster)
        self.metrics = metrics
        self.forecaster_name = forecaster
        self.window = window
        self._forecasters: dict[str, Forecaster] = {}

    def _forecaster_for(self, series_name: str) -> Forecaster:
        forecaster = self._forecasters.get(series_name)
        if forecaster is None:
            forecaster = make_forecaster(self.forecaster_name)
            self._forecasters[series_name] = forecaster
        return forecaster

    def _record(self, series_name: str, value: float) -> TimeSeries:
        series = self.metrics.series(series_name, window=self.window)
        series.record(value)
        self._forecaster_for(series_name).observe(value)
        return series

    def _predict(self, series_name: str, horizon: int) -> float | None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        series = self.metrics.series(series_name, window=self.window)
        if len(series) == 0:
            return None
        return self._forecaster_for(series_name).predict(horizon)

    # ------------------------------------------------------------------
    # Recording (one call per signal per tick)
    # ------------------------------------------------------------------
    def record_server(self, server_id: str, utilisation: float) -> None:
        """Record one server's utilisation sample for this tick."""
        self._record(utilisation_series_name(server_id), utilisation)

    def record_link(self, user_id: str, server_id: str, rtt: float) -> None:
        """Record one (user, server) link RTT sample for this tick."""
        self._record(link_series_name(user_id, server_id), rtt)

    # ------------------------------------------------------------------
    # Forecasting
    # ------------------------------------------------------------------
    def predict_utilisation(self, server_id: str, horizon: int = 1) -> float | None:
        """Forecasted utilisation *horizon* ticks out (None = no history)."""
        return self._predict(utilisation_series_name(server_id), horizon)

    def predict_rtt(
        self, user_id: str, server_id: str, horizon: int = 1
    ) -> float | None:
        """Forecasted link RTT *horizon* ticks out (None = no history)."""
        return self._predict(link_series_name(user_id, server_id), horizon)

    def mae(self, series_name: str) -> float:
        """Rolling one-step MAE of the series' forecaster (inf = unscored)."""
        forecaster = self._forecasters.get(series_name)
        if forecaster is None:
            return float("inf")
        return forecaster.mae

    def hotspots(
        self,
        server_utilisations: dict[str, float],
        horizon: int,
        threshold: float = DEFAULT_UTILISATION_THRESHOLD,
    ) -> list[HotspotForecast]:
        """Forecast every server against *threshold*, breaches first.

        *server_utilisations* supplies each server's *current*
        utilisation as the fallback when a series has no history yet
        (a cold fleet degrades gracefully to reactive behaviour).
        Sorted hottest-first, ties by server id, so callers relieve the
        worst predicted hotspot first and deterministically.
        """
        forecasts = []
        for server_id in sorted(server_utilisations):
            predicted = self.predict_utilisation(server_id, horizon)
            if predicted is None:
                predicted = server_utilisations[server_id]
            forecasts.append(
                HotspotForecast(server_id, max(predicted, 0.0), threshold)
            )
        return sorted(forecasts, key=lambda f: (-f.predicted, f.server_id))
