"""Bounded time-series primitive for fleet telemetry.

The fleet's proactive orchestration (see :mod:`repro.forecast.proactive`)
plans from *histories*, not snapshots: per-server utilisation and
per-(user, server) link RTT sampled on every admission/rebalance tick.
:class:`TimeSeries` is the storage primitive — a bounded ring buffer of
float samples with the same thread-safety and boundedness conventions as
the service metrics (:mod:`repro.service.metrics`): a long-lived fleet
can never grow a series without bound, and readers get consistent
snapshots under the lock.

Series are created through :meth:`repro.service.metrics.MetricsRegistry.series`
(get-or-create by name, like counters and histograms), so telemetry
shows up in the same metrics report as everything else.
"""

from __future__ import annotations

import threading
from collections import deque


class TimeSeries:
    """Bounded ring buffer of float samples (most recent ``window`` kept).

    The tick index is implicit: sample ``k`` of :meth:`values` is the
    ``k``-th oldest retained observation.  :attr:`count` tracks the total
    ever recorded, so callers can tell a short history from a wrapped
    one.
    """

    def __init__(self, name: str, window: int = 512) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        self.name = name
        self.window = window
        self._values: deque[float] = deque(maxlen=window)
        self._count = 0
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        """Append one observation (evicting the oldest past the window)."""
        with self._lock:
            self._values.append(float(value))
            self._count += 1

    def values(self) -> list[float]:
        """Snapshot of the retained window, oldest first."""
        with self._lock:
            return list(self._values)

    @property
    def last(self) -> float | None:
        """The most recent observation, or ``None`` if empty."""
        with self._lock:
            return self._values[-1] if self._values else None

    @property
    def count(self) -> int:
        """Total observations ever recorded (not just the window)."""
        return self._count

    def __len__(self) -> int:
        with self._lock:
            return len(self._values)
