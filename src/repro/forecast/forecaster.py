"""Lightweight time-series forecasters with rolling accuracy scores.

The proactive fleet (see :mod:`repro.forecast.proactive`) needs horizon-
``h`` predictions of per-server utilisation and per-link RTT.  Three
models cover the traces edge telemetry actually produces, in the spirit
of the ced-yxos orchestrator's latency predictor:

* :class:`NaiveForecaster` — last value carried forward; the baseline
  every other model must beat to earn its keep;
* :class:`EWMAForecaster` — exponentially weighted moving average;
  smooths white noise around a level, lags trends;
* :class:`ARForecaster` — least-squares AR(p) with intercept, iterated
  ``h`` steps ahead; extrapolates drift exactly and tracks short
  periodic structure when ``p`` spans the period.

Every forecaster keeps a *rolling mean absolute error* of its one-step
predictions (:attr:`Forecaster.mae`): on each :meth:`observe` the model
first predicts the incoming value from what it has seen, then scores
itself against the truth.  :func:`make_forecaster` with ``"auto"``
builds an :class:`AutoForecaster` that feeds all three candidates and
delegates to whichever currently has the lowest MAE — per series, so a
drifting utilisation curve gets AR while a noisy RTT gets EWMA.

All models are deterministic functions of the observation sequence: no
RNG, no clocks (the package is covered by the determinism lint rules,
like the planning packages).
"""

from __future__ import annotations

import abc
import math
from collections import deque
from typing import Protocol, runtime_checkable

import numpy as np

FORECASTERS = ("naive", "ewma", "ar", "auto")
"""Registered forecaster names, for CLIs and experiment sweeps."""

_DEFAULT_WINDOW = 64
_DEFAULT_SCORE_WINDOW = 32


@runtime_checkable
class Forecaster(Protocol):
    """One model bound to one series: observe values, predict ahead."""

    name: str

    def observe(self, value: float) -> None:
        """Record one observation (scoring the previous prediction)."""
        ...  # pragma: no cover - protocol

    def predict(self, horizon: int = 1) -> float:
        """Predict the value *horizon* ticks ahead of the last observation."""
        ...  # pragma: no cover - protocol

    @property
    def mae(self) -> float:
        """Rolling one-step mean absolute error (``inf`` until scored)."""
        ...  # pragma: no cover - protocol


class _ScoredForecaster(abc.ABC):
    """History ring + rolling one-step-MAE bookkeeping shared by models."""

    name = "base"

    def __init__(
        self, window: int = _DEFAULT_WINDOW, score_window: int = _DEFAULT_SCORE_WINDOW
    ) -> None:
        if window < 2:
            raise ValueError(f"window must be >= 2, got {window}")
        if score_window < 1:
            raise ValueError(f"score_window must be >= 1, got {score_window}")
        self._history: deque[float] = deque(maxlen=window)
        self._errors: deque[float] = deque(maxlen=score_window)

    def observe(self, value: float) -> None:
        value = float(value)
        if self._history:
            self._errors.append(abs(self.predict(1) - value))
        self._history.append(value)
        self._update(value)

    def _update(self, value: float) -> None:
        """Model-state hook, called after *value* joins the history."""

    @property
    def mae(self) -> float:
        if not self._errors:
            return math.inf
        return sum(self._errors) / len(self._errors)

    @property
    def observations(self) -> int:
        return len(self._history)

    @staticmethod
    def _check_horizon(horizon: int) -> int:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        return horizon

    @abc.abstractmethod
    def predict(self, horizon: int = 1) -> float:
        """Predict *horizon* ticks ahead (0.0 before any observation)."""


class NaiveForecaster(_ScoredForecaster):
    """Last value carried forward — the persistence baseline."""

    name = "naive"

    def predict(self, horizon: int = 1) -> float:
        self._check_horizon(horizon)
        return self._history[-1] if self._history else 0.0


class EWMAForecaster(_ScoredForecaster):
    """Exponentially weighted moving average (flat across the horizon)."""

    name = "ewma"

    def __init__(
        self,
        alpha: float = 0.3,
        window: int = _DEFAULT_WINDOW,
        score_window: int = _DEFAULT_SCORE_WINDOW,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        super().__init__(window=window, score_window=score_window)
        self.alpha = alpha
        self._level: float | None = None

    def _update(self, value: float) -> None:
        if self._level is None:
            self._level = value
        else:
            self._level = self.alpha * value + (1.0 - self.alpha) * self._level

    def predict(self, horizon: int = 1) -> float:
        self._check_horizon(horizon)
        return self._level if self._level is not None else 0.0


class ARForecaster(_ScoredForecaster):
    """Least-squares AR(p) with intercept, iterated *horizon* steps.

    The model ``x_t = c + a_1 x_{t-p} + ... + a_p x_{t-1}`` is refit on
    the retained window at every prediction (the windows are tiny, so a
    dense least-squares solve is cheaper than incremental updates would
    be to maintain correctly).  A linear drift is fit *exactly* by
    AR(1)+intercept, which is what makes this model beat EWMA on
    trending utilisation; until ``order + 2`` observations exist the
    forecast falls back to persistence.
    """

    name = "ar"

    def __init__(
        self,
        order: int = 2,
        window: int = _DEFAULT_WINDOW,
        score_window: int = _DEFAULT_SCORE_WINDOW,
    ) -> None:
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        if window < order + 2:
            raise ValueError(
                f"window must be >= order + 2 ({order + 2}), got {window}"
            )
        super().__init__(window=window, score_window=score_window)
        self.order = order

    def predict(self, horizon: int = 1) -> float:
        self._check_horizon(horizon)
        history = list(self._history)
        if len(history) < self.order + 2:
            return history[-1] if history else 0.0
        p = self.order
        design = np.asarray(
            [[1.0, *history[t - p : t]] for t in range(p, len(history))],
            dtype=float,
        )
        targets = np.asarray(history[p:], dtype=float)
        coef, _, _, _ = np.linalg.lstsq(design, targets, rcond=None)
        lags = history[-p:]
        prediction = history[-1]
        for _ in range(horizon):
            prediction = float(
                coef[0] + sum(c * v for c, v in zip(coef[1:], lags, strict=True))
            )
            if not math.isfinite(prediction):
                return history[-1]
            lags = [*lags[1:], prediction]
        return prediction


class AutoForecaster:
    """Score naive/EWMA/AR on the live series; delegate to the best.

    Every observation feeds all three candidates (each scores its own
    one-step prediction first), and :meth:`predict` delegates to the
    candidate with the lowest rolling MAE.  Ties — including the cold
    start, when every MAE is still ``inf`` — resolve in candidate order
    (naive, ewma, ar), so the persistence baseline answers until a model
    earns the job with evidence.
    """

    name = "auto"

    def __init__(
        self,
        alpha: float = 0.3,
        order: int = 2,
        window: int = _DEFAULT_WINDOW,
        score_window: int = _DEFAULT_SCORE_WINDOW,
    ) -> None:
        self.candidates: tuple[_ScoredForecaster, ...] = (
            NaiveForecaster(window=window, score_window=score_window),
            EWMAForecaster(alpha=alpha, window=window, score_window=score_window),
            ARForecaster(order=order, window=window, score_window=score_window),
        )

    @property
    def best(self) -> _ScoredForecaster:
        """The currently lowest-MAE candidate (ties by candidate order)."""
        return min(
            enumerate(self.candidates), key=lambda pair: (pair[1].mae, pair[0])
        )[1]

    def observe(self, value: float) -> None:
        for candidate in self.candidates:
            candidate.observe(value)

    def predict(self, horizon: int = 1) -> float:
        return self.best.predict(horizon)

    @property
    def mae(self) -> float:
        return self.best.mae


def make_forecaster(
    name: str,
    *,
    alpha: float = 0.3,
    order: int = 2,
    window: int = _DEFAULT_WINDOW,
    score_window: int = _DEFAULT_SCORE_WINDOW,
) -> Forecaster:
    """Build a forecaster by registered name.

    Options irrelevant to the chosen model are ignored, so sweeps can
    pass one option set to every name.

    >>> make_forecaster("naive").name
    'naive'
    """
    if name == "naive":
        return NaiveForecaster(window=window, score_window=score_window)
    if name == "ewma":
        return EWMAForecaster(alpha=alpha, window=window, score_window=score_window)
    if name == "ar":
        return ARForecaster(order=order, window=window, score_window=score_window)
    if name == "auto":
        return AutoForecaster(
            alpha=alpha, order=order, window=window, score_window=score_window
        )
    raise ValueError(
        f"unknown forecaster {name!r}; expected one of {list(FORECASTERS)}"
    )
