"""Per-user service-level agreements for constrained fleet placement.

The paper minimises the *aggregate* ``E + T``; nothing stops one user's
completion time from being arbitrarily bad as long as the sum is small.
A :class:`UserSLA` attaches a hard per-user budget at admission
(:meth:`repro.fleet.fleet.EdgeFleet.admit`), turning routing into
constrained placement: candidate servers whose modelled per-user cost —
the user's hypothetical ``E + T`` on that server's deployment plus the
link RTT, evaluated through the same shared helper cost-aware
rebalancing uses (:mod:`repro.fleet.modelled`) — would exceed the
deadline are filtered out before the routing policy chooses.  When *no*
server is feasible the user degrades to all-local execution (still
queued for :meth:`~repro.fleet.fleet.EdgeFleet.retry_degraded`) or is
rejected outright, per :attr:`UserSLA.on_infeasible`.

:class:`SLAReport` is the point-in-time scorecard: violations are
recomputed from the fleet's *current* ledger (including link RTT and
accumulated migration debt), so a rebalance pass can genuinely lower —
or raise — the violation rate, which is exactly what the proactive-vs-
reactive benchmark measures.
"""

from __future__ import annotations

from dataclasses import dataclass

SLA_EPSILON = 1e-9
"""Slack for deadline comparisons: a deadline *exactly equal* to the
modelled cost admits (the constraint is ``cost <= deadline``, and float
evaluation noise must not flip an exact-boundary admission)."""

SLA_INFEASIBLE_ACTIONS = ("degrade", "reject")
"""Valid ``on_infeasible`` values for :class:`UserSLA`."""


@dataclass(frozen=True)
class UserSLA:
    """One user's admission-time service-level agreement.

    *deadline* budgets the user's modelled cost in the planner's
    scalarised ``E + T`` currency (:class:`~repro.mec.objective.
    ObjectiveWeights`), with the link RTT folded into the time term the
    same way fleet accounting folds it — so the admission check, the
    violation report, and ``total_consumption()`` all speak one unit.
    """

    deadline: float
    on_infeasible: str = "degrade"

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        if self.on_infeasible not in SLA_INFEASIBLE_ACTIONS:
            raise ValueError(
                f"unknown on_infeasible action {self.on_infeasible!r}; "
                f"expected one of {list(SLA_INFEASIBLE_ACTIONS)}"
            )

    def satisfied_by(self, modelled_cost: float) -> bool:
        """Whether *modelled_cost* meets the deadline (boundary admits)."""
        return modelled_cost <= self.deadline + SLA_EPSILON

    def violated_by(self, modelled_cost: float) -> bool:
        """Whether *modelled_cost* breaches the deadline."""
        return not self.satisfied_by(modelled_cost)


@dataclass(frozen=True)
class SLAReport:
    """Point-in-time SLA scorecard for one fleet.

    *users* counts every user currently carrying an SLA (admitted or
    degraded); *violations* counts those whose current modelled cost in
    the fleet ledger breaches their deadline; *rejections* counts users
    turned away at admission under ``on_infeasible="reject"`` (they are
    not in *users* — they never entered the fleet).
    """

    users: int
    violations: int
    rejections: int
    degraded: int
    worst_excess: float = 0.0
    """Largest ``cost - deadline`` among violators (0.0 when none)."""

    @property
    def violation_rate(self) -> float:
        """``violations / users`` — the first-class benchmark column."""
        if self.users == 0:
            return 0.0
        return self.violations / self.users
