"""Lightweight wall-clock timing used by the Fig. 9 runtime experiment."""

from __future__ import annotations

import time
from collections.abc import Callable
from typing import Any, TypeVar

T = TypeVar("T")


class Stopwatch:
    """Accumulating stopwatch.

    Supports both context-manager usage and explicit start/stop, and keeps
    a count of laps so the experiment harness can report mean lap times.

    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(100))
    >>> watch.laps
    1
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self.laps = 0
        self._started_at: float | None = None

    def start(self) -> None:
        """Start a lap; raises if the watch is already running."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch is already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """Stop the current lap and return its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        lap = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += lap
        self.laps += 1
        return lap

    @property
    def running(self) -> bool:
        """Whether a lap is currently being timed."""
        return self._started_at is not None

    @property
    def mean_lap(self) -> float:
        """Mean lap duration in seconds (0.0 when no lap has finished)."""
        if self.laps == 0:
            return 0.0
        return self.elapsed / self.laps

    def reset(self) -> None:
        """Clear all accumulated state."""
        self.elapsed = 0.0
        self.laps = 0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def time_call(func: Callable[..., T], *args: Any, **kwargs: Any) -> tuple[T, float]:
    """Call *func* and return ``(result, seconds)``."""
    started = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - started
