"""Deterministic randomness helpers.

Every stochastic component in the library (workload generators, label
propagation tie-breaking, baseline heuristics) draws randomness through a
:class:`RandomSource` so that experiments are exactly reproducible from a
single integer seed.
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")

_DEFAULT_SEED = 0x5EED


def derive_seed(base_seed: int, *labels: object) -> int:
    """Derive a child seed from *base_seed* and a sequence of labels.

    The derivation is stable across processes and Python versions (it uses
    SHA-256 rather than ``hash``), so parallel sub-tasks can be given
    independent yet reproducible streams.

    >>> derive_seed(7, "netgen", 250) == derive_seed(7, "netgen", 250)
    True
    >>> derive_seed(7, "netgen", 250) != derive_seed(7, "netgen", 500)
    True
    """
    digest = hashlib.sha256()
    digest.update(str(base_seed).encode("utf-8"))
    for label in labels:
        digest.update(b"\x1f")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest()[:8], "big")


class RandomSource:
    """A seeded pseudo-random stream with convenience helpers.

    Wraps :class:`random.Random` so that callers never touch the global
    random state. ``spawn`` creates an independent child stream, which is
    how per-component parallel label propagation stays deterministic
    regardless of scheduling order.
    """

    def __init__(self, seed: int | None = None) -> None:
        self.seed = _DEFAULT_SEED if seed is None else int(seed)
        self._rng = random.Random(self.seed)

    def spawn(self, *labels: object) -> "RandomSource":
        """Return an independent child stream keyed by *labels*."""
        return RandomSource(derive_seed(self.seed, *labels))

    def randint(self, low: int, high: int) -> int:
        """Return a uniform integer in the inclusive range [low, high]."""
        return self._rng.randint(low, high)

    def uniform(self, low: float, high: float) -> float:
        """Return a uniform float in [low, high]."""
        return self._rng.uniform(low, high)

    def random(self) -> float:
        """Return a uniform float in [0, 1)."""
        return self._rng.random()

    def choice(self, items: Sequence[T]) -> T:
        """Return a uniformly chosen element of *items*."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list[T]:
        """Return *count* distinct elements sampled from *items*."""
        return self._rng.sample(items, count)

    def shuffle(self, items: list[T]) -> list[T]:
        """Shuffle *items* in place and return it for chaining."""
        self._rng.shuffle(items)
        return items

    def shuffled(self, items: Iterable[T]) -> list[T]:
        """Return a new shuffled list built from *items*."""
        copied = list(items)
        self._rng.shuffle(copied)
        return copied

    def expovariate(self, rate: float) -> float:
        """Return an exponentially distributed sample with the given rate."""
        return self._rng.expovariate(rate)

    def gauss(self, mean: float, sigma: float) -> float:
        """Return a normally distributed sample."""
        return self._rng.gauss(mean, sigma)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomSource(seed={self.seed})"
