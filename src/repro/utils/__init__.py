"""Shared utilities: seeded randomness, timing, validation helpers."""

from repro.utils.rng import RandomSource, derive_seed
from repro.utils.timer import Stopwatch, time_call
from repro.utils.validation import (
    ensure_in_range,
    ensure_non_negative,
    ensure_positive,
)

__all__ = [
    "RandomSource",
    "derive_seed",
    "Stopwatch",
    "time_call",
    "ensure_in_range",
    "ensure_non_negative",
    "ensure_positive",
]
