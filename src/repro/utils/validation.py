"""Argument validation helpers shared across the library."""

from __future__ import annotations


def ensure_positive(value: float, name: str) -> float:
    """Return *value* if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Return *value* if >= 0, else raise ``ValueError``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def ensure_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return *value* if within [low, high], else raise ``ValueError``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value
