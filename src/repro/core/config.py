"""Planner configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compression.compressor import CompressionConfig
from repro.mec.objective import ObjectiveWeights


@dataclass(frozen=True)
class PlannerConfig:
    """Everything tunable about the offloading pipeline.

    The defaults reproduce the paper's algorithm: compression on (with the
    median-quantile coupling threshold), spectral cut, unweighted E + T
    objective, no post-cut refinement.
    """

    compression: CompressionConfig = field(default_factory=CompressionConfig)
    objective: ObjectiveWeights = field(default_factory=ObjectiveWeights)

    skip_compression: bool = False
    """Ablation switch: cut the raw offloadable graph directly (every
    function its own part).  Expensive on large graphs — exactly the
    cost the paper's compression stage exists to avoid."""

    refine_cuts: bool = False
    """Polish each bisection with an FM refinement pass (extension)."""

    min_cut_size: int = 2
    """Sub-graphs smaller than this are kept whole (nothing to split)."""

    multiway_parts: int = 2
    """Maximum parts per compressed sub-graph.  2 is the paper's single
    bisection; larger values switch to recursive spectral partitioning
    (extension — see :mod:`repro.spectral.recursive`), giving Algorithm 2
    finer placement granularity at the cost of more candidate moves."""

    multiway_max_cut_ratio: float = 0.5
    """Recursive splitting stops when a split's cut would exceed this
    fraction of the part's computation weight (multiway mode only)."""

    initial_placement_mode: str = "anchored"
    """Which reading of Algorithm 2's ``V_2'`` seeds the greedy — see
    :func:`repro.mec.greedy.initial_placement`.  ``"anchored"`` is the
    reproduction default; ``"dominated"``/``"all-remote"`` explore more
    schemes at the cost of the cut-quality/transmission link."""

    greedy_kernel: str = "auto"
    """Candidate-scan implementation for Algorithm 2 — see
    :data:`repro.mec.greedy.GREEDY_KERNELS`.  ``"numpy"``/``"auto"``
    batch full scans through vectorised device/server folds;
    ``"python"`` keeps the scalar reference loop.  Move sequences are
    bit-identical across kernels."""
