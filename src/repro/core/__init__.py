"""Public API: the offloading planners.

``OffloadingPlanner`` is the paper's full pipeline — graph compression
(Algorithm 1), per-sub-graph minimum cut, greedy scheme generation
(Algorithm 2) — with the cut stage pluggable so the paper's two baselines
(max-flow min-cut and Kernighan-Lin) run through the identical pipeline,
exactly as in the evaluation ("we change the minimum cut calculation
process by the above mentioned three algorithms").

Typical use::

    from repro.core import make_planner
    planner = make_planner("spectral")
    result = planner.plan_system(system, call_graphs)
    print(result.consumption.energy, result.consumption.time)
"""

from repro.core.baselines import (
    kl_cut_strategy,
    make_planner,
    maxflow_cut_strategy,
    spectral_cut_strategy,
)
from repro.core.config import PlannerConfig
from repro.core.planner import OffloadingPlanner
from repro.core.results import CutOutcome, PlanResult, UserPlan

__all__ = [
    "OffloadingPlanner",
    "PlannerConfig",
    "PlanResult",
    "UserPlan",
    "CutOutcome",
    "make_planner",
    "spectral_cut_strategy",
    "maxflow_cut_strategy",
    "kl_cut_strategy",
]
