"""The offloading planner: compress, cut, generate (the full pipeline).

Per application: drop unoffloadable functions, compress the remainder
with Algorithm 1, bisect each compressed connected sub-graph with the
configured cut strategy, and expand the two sides back to function sets
(the *parts*).  Per system: partition every user's application into those
parts and run Algorithm 2's greedy to place them.

Identical applications are planned once: ``plan_system`` caches per
*content fingerprint* (see :mod:`repro.service.fingerprint`), so
structurally identical graphs share plans even when they arrive as
distinct objects — the realistic multi-user case.  Configs that cannot
be fingerprinted (custom objects without a canonical encoding) are
planned without caching; identity-keyed caching is deliberately absent
because object ids are recycled after garbage collection.
"""

from __future__ import annotations

import time
from collections.abc import Hashable, Mapping

from repro.callgraph.model import FunctionCallGraph
from repro.compression.compressor import GraphCompressor
from repro.core.config import PlannerConfig
from repro.core.results import CutOutcome, CutStrategy, PlanResult, UserPlan
from repro.graphs.components import connected_components
from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.greedy import generate_offloading_scheme
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem
from repro.partition.refinement import fm_refine
from repro.utils.timer import Stopwatch


class OffloadingPlanner:
    """Plans offloading schemes for single apps and multi-user systems."""

    def __init__(
        self,
        cut_strategy: CutStrategy,
        config: PlannerConfig | None = None,
        strategy_name: str = "custom",
    ) -> None:
        self.cut_strategy = cut_strategy
        self.config = config or PlannerConfig()
        self.strategy_name = strategy_name
        self._compressor = GraphCompressor(self.config.compression)

    # ------------------------------------------------------------------
    # Per-application planning
    # ------------------------------------------------------------------
    def plan_user(self, call_graph: FunctionCallGraph) -> UserPlan:
        """Compress and cut one application into placement parts."""
        offloadable = call_graph.offloadable_subgraph()
        original_nodes = offloadable.node_count
        original_edges = offloadable.edge_count

        if original_nodes == 0:
            return UserPlan(
                app_name=call_graph.app_name,
                parts=[],
                bisections=[],
                compressed_nodes=0,
                compressed_edges=0,
                original_nodes=0,
                original_edges=0,
                stage_seconds={"compress": 0.0, "cut": 0.0},
            )

        compress_watch = Stopwatch()
        cut_watch = Stopwatch()

        if self.config.skip_compression:
            working = offloadable
            expand = lambda ids: set(ids)  # noqa: E731 - trivial identity
            rounds = 0
        else:
            with compress_watch:
                result = self._compressor.compress(offloadable)
            working = result.compressed.graph
            compressed = result.compressed
            expand = lambda ids: compressed.expand(ids)  # noqa: E731
            rounds = result.rounds_total

        parts: list[frozenset[str]] = []
        bisections: list[tuple[set[int], set[int]]] = []
        cut_values: list[float] = []

        for component in connected_components(working):
            subgraph = working.subgraph(component)
            if subgraph.node_count < self.config.min_cut_size:
                index = self._add_part(parts, expand(component))
                bisections.append(({index}, set()))
                cut_values.append(0.0)
                continue
            if self.config.multiway_parts > 2:
                with cut_watch:
                    self._plan_multiway(subgraph, expand, parts, bisections, cut_values)
                continue
            with cut_watch:
                outcome = self.cut_strategy(subgraph)
                if self.config.refine_cuts and outcome.part_one and outcome.part_two:
                    one, two, value = fm_refine(subgraph, outcome.part_one)
                    outcome = CutOutcome(one, two, value)
            index_one = self._add_part(parts, expand(outcome.part_one))
            side_one = {index_one} if index_one is not None else set()
            index_two = self._add_part(parts, expand(outcome.part_two))
            side_two = {index_two} if index_two is not None else set()
            bisections.append((side_one, side_two))
            cut_values.append(outcome.cut_value)

        return UserPlan(
            app_name=call_graph.app_name,
            parts=parts,
            bisections=bisections,
            compressed_nodes=working.node_count,
            compressed_edges=working.edge_count,
            original_nodes=original_nodes,
            original_edges=original_edges,
            cut_values=cut_values,
            propagation_rounds=rounds,
            stage_seconds={
                "compress": compress_watch.elapsed,
                "cut": cut_watch.elapsed,
            },
        )

    def _plan_multiway(
        self,
        subgraph: WeightedGraph,
        expand,
        parts: list[frozenset[str]],
        bisections: list[tuple[set[int], set[int]]],
        cut_values: list[float],
    ) -> None:
        """Extension path: recursive spectral partitioning of one component.

        All resulting parts are registered as one placement group that
        starts fully remote (Algorithm 2's "insert into V_2"); the greedy
        loop then pulls individual parts back with its finer granularity.
        """
        from repro.spectral.recursive import recursive_spectral_partition

        partition = recursive_spectral_partition(
            subgraph,
            max_parts=self.config.multiway_parts,
            max_cut_ratio=self.config.multiway_max_cut_ratio,
        )
        indices: set[int] = set()
        for piece in partition.parts:
            index = self._add_part(parts, expand(piece))
            if index is not None:
                indices.add(index)
        bisections.append((set(), indices))
        cut_values.append(partition.cut_total)

    @staticmethod
    def _add_part(parts: list[frozenset[str]], functions: set) -> int | None:
        """Append a part; empty sides produce no part (returns ``None``)."""
        named = frozenset(str(f) for f in functions)
        if not named:
            return None
        parts.append(named)
        return len(parts) - 1

    # ------------------------------------------------------------------
    # System planning
    # ------------------------------------------------------------------
    def plan_system(
        self,
        system: MECSystem,
        call_graphs: Mapping[str, FunctionCallGraph],
    ) -> PlanResult:
        """Plan every user's application and run Algorithm 2's greedy.

        *call_graphs* maps user id to the application; structurally
        identical graphs (same content fingerprint — not merely
        ``is``-identical objects) are planned once and their parts
        reused.  When the planner config cannot be fingerprinted the
        graph is planned without caching: no identity-derived key ever
        enters the cache, so a recycled object id can never alias two
        different graphs onto one plan.
        """
        started = time.perf_counter()

        plan_cache: dict[Hashable, UserPlan] = {}
        user_plans: dict[str, UserPlan] = {}
        apps: dict[str, PartitionedApplication] = {}
        bisections: dict[str, list[tuple[set[int], set[int]]]] = {}

        for user in system.users:
            call_graph = call_graphs.get(user.user_id)
            if call_graph is None:
                raise KeyError(f"no call graph supplied for user {user.user_id!r}")
            cache_key = self._plan_key(call_graph)
            if cache_key is None:
                plan = self.plan_user(call_graph)
            elif cache_key in plan_cache:
                plan = plan_cache[cache_key]
            else:
                plan = plan_cache[cache_key] = self.plan_user(call_graph)
            user_plans[user.user_id] = plan
            apps[user.user_id] = PartitionedApplication(
                user_id=user.user_id,
                call_graph=call_graph,
                part_sets=plan.parts,
            )
            bisections[user.user_id] = plan.bisections

        greedy_watch = Stopwatch()
        with greedy_watch:
            greedy = generate_offloading_scheme(
                system,
                apps,
                bisections,
                weights=self.config.objective,
                placement_mode=self.config.initial_placement_mode,
                kernel=self.config.greedy_kernel,
            )
        for plan in user_plans.values():
            plan.stage_seconds["greedy"] = greedy_watch.elapsed
        elapsed = time.perf_counter() - started
        return PlanResult(
            scheme=greedy.scheme,
            consumption=greedy.consumption,
            user_plans=user_plans,
            greedy=greedy,
            planning_seconds=elapsed,
            strategy_name=self.strategy_name,
        )

    def _plan_key(self, call_graph: FunctionCallGraph) -> Hashable | None:
        """Content-fingerprint cache key, or ``None`` if unfingerprintable.

        The service layer shares the exact same keying (see
        :func:`repro.service.fingerprint.request_fingerprint`), so plans
        cached here and plans cached there never disagree about what
        counts as "the same request".  ``None`` means "do not cache":
        there is deliberately no identity fallback, because ``id()``
        values are recycled after garbage collection and an id-keyed
        entry can serve one graph's plan for a different graph.
        """
        # Local import: repro.service sits above repro.core in the layer
        # order; only this helper reaches up, and only lazily.
        from repro.service.fingerprint import FingerprintError, request_fingerprint

        try:
            return request_fingerprint(call_graph, self.config, self.strategy_name)
        except FingerprintError:
            return None

    def cut_graph(self, graph: WeightedGraph) -> CutOutcome:
        """Expose the configured cut strategy (used by ablation benches)."""
        return self.cut_strategy(graph)
