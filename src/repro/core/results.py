"""Result types produced by the planners."""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Hashable

from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.greedy import GreedyResult
from repro.mec.scheme import OffloadingScheme
from repro.mec.system import SystemConsumption

NodeId = Hashable


@dataclass(frozen=True)
class CutOutcome:
    """One sub-graph's bisection as produced by a cut strategy."""

    part_one: set[NodeId]
    part_two: set[NodeId]
    cut_value: float


CutStrategy = Callable[[WeightedGraph], CutOutcome]
"""A cut strategy bisects a compressed sub-graph.  Strategies for the
paper's three algorithms live in :mod:`repro.core.baselines`."""


@dataclass
class UserPlan:
    """Per-application planning artifacts (compression + cuts).

    ``parts[i]`` is a frozenset of function names placed as a unit;
    ``bisections`` pairs up part indices per compressed sub-graph, ready
    for Algorithm 2's initial placement.
    """

    app_name: str
    parts: list[frozenset[str]]
    bisections: list[tuple[set[int], set[int]]]
    compressed_nodes: int
    compressed_edges: int
    original_nodes: int
    original_edges: int
    cut_values: list[float] = field(default_factory=list)
    propagation_rounds: int = 0
    stage_seconds: dict[str, float] = field(default_factory=dict)
    """Wall-clock per pipeline stage: ``compress`` and ``cut`` are filled
    by ``plan_user``; ``plan_system`` adds its ``greedy`` time to every
    plan of the batch (shared plans see the shared greedy cost).  The
    plan service histograms attribute request cost from these."""

    @property
    def compression_ratio(self) -> float:
        """original/compressed node count (>= 1; higher = more compression)."""
        if self.compressed_nodes == 0:
            return 1.0
        return self.original_nodes / self.compressed_nodes

    @property
    def total_cut_value(self) -> float:
        """Sum of per-sub-graph minimum cut values."""
        return sum(self.cut_values)


@dataclass
class PlanResult:
    """Complete outcome of planning a multi-user system."""

    scheme: OffloadingScheme
    consumption: SystemConsumption
    user_plans: dict[str, UserPlan]
    greedy: GreedyResult
    planning_seconds: float = 0.0
    strategy_name: str = "spectral"

    @property
    def energy(self) -> float:
        """System energy ``E`` under the generated scheme."""
        return self.consumption.energy

    @property
    def time(self) -> float:
        """System time ``T`` under the generated scheme."""
        return self.consumption.time

    def summary(self) -> str:
        """One-paragraph human-readable description."""
        c = self.consumption
        return (
            f"[{self.strategy_name}] E={c.energy:.3f} (local {c.local_energy:.3f} + "
            f"tx {c.transmission_energy:.3f}), T={c.time:.3f}, "
            f"offloaded {self.scheme.total_offloaded} functions across "
            f"{len(self.user_plans)} planned app(s) in {self.planning_seconds:.3f}s"
        )
