"""Cut strategies for the paper's three algorithms (plus the Spark one).

Each strategy bisects one compressed sub-graph; the surrounding pipeline
(compression, greedy generation) is shared, mirroring the paper's
evaluation protocol: "We change the minimum cut calculation process by
the above mentioned three algorithms and compare their results."
"""

from __future__ import annotations

from repro.core.config import PlannerConfig
from repro.core.planner import OffloadingPlanner
from repro.core.results import CutOutcome, CutStrategy
from repro.distributed.cluster import LocalCluster
from repro.distributed.spark_spectral import DistributedFiedlerSolver
from repro.graphs.weighted_graph import WeightedGraph
from repro.mincut.st_selection import maxflow_bisect
from repro.partition.kernighan_lin import kernighan_lin_bisect
from repro.spectral.bisection import spectral_bisect
from repro.spectral.fiedler import FiedlerSolver


def spectral_cut_strategy(solver: FiedlerSolver | None = None) -> CutStrategy:
    """The paper's algorithm: bisect by the Fiedler vector's sign."""
    solver = solver or FiedlerSolver()

    def cut(graph: WeightedGraph) -> CutOutcome:
        result = spectral_bisect(graph, solver)
        return CutOutcome(result.part_one, result.part_two, result.cut_value)

    # Expose the solver on the strategy so callers holding only the
    # closure (the planner, the process-pool initializer) can reach the
    # warm-start cache for export/priming.
    cut.fiedler_solver = solver  # type: ignore[attr-defined]
    return cut


def distributed_spectral_cut_strategy(cluster: LocalCluster) -> CutStrategy:
    """Spectral cut with cluster-distributed mat-vecs (Fig. 9, "with Spark")."""
    solver = DistributedFiedlerSolver(cluster)

    def cut(graph: WeightedGraph) -> CutOutcome:
        result = spectral_bisect(graph, solver)  # duck-typed solver
        return CutOutcome(result.part_one, result.part_two, result.cut_value)

    return cut


def maxflow_cut_strategy() -> CutStrategy:
    """Baseline 1: Edmonds-Karp min cut between heuristic endpoints."""

    def cut(graph: WeightedGraph) -> CutOutcome:
        result = maxflow_bisect(graph)
        return CutOutcome(result.part_one, result.part_two, result.cut_value)

    return cut


def kl_cut_strategy(max_passes: int = 10) -> CutStrategy:
    """Baseline 2: Kernighan-Lin balanced bisection."""

    def cut(graph: WeightedGraph) -> CutOutcome:
        result = kernighan_lin_bisect(graph, max_passes=max_passes)
        return CutOutcome(result.part_one, result.part_two, result.cut_value)

    return cut


def sweep_cut_strategy() -> CutStrategy:
    """Extension: the Cheeger sweep cut (certified conductance bound).

    Bisects at the best-conductance prefix of the normalized-Laplacian
    spectral order — the split with the ``sqrt(2 lambda_2)`` guarantee.
    """
    from repro.spectral.cheeger import sweep_cut

    def cut(graph: WeightedGraph) -> CutOutcome:
        if graph.node_count < 2:
            return CutOutcome(set(graph.nodes()), set(), 0.0)
        _, side = sweep_cut(graph)
        other = set(graph.nodes()) - side
        return CutOutcome(side, other, graph.cut_weight(side))

    return cut


def multilevel_kl_cut_strategy(target_nodes: int = 32, seed: int = 7) -> CutStrategy:
    """Extension baseline: multilevel KL (coarsen -> KL -> refine)."""
    from repro.partition.multilevel import multilevel_kl_bisect

    def cut(graph: WeightedGraph) -> CutOutcome:
        result = multilevel_kl_bisect(graph, target_nodes=target_nodes, seed=seed)
        return CutOutcome(result.part_one, result.part_two, result.cut_value)

    return cut


_STRATEGY_BUILDERS = {
    "spectral": lambda: spectral_cut_strategy(),
    "maxflow": lambda: maxflow_cut_strategy(),
    "kl": lambda: kl_cut_strategy(),
    "multilevel-kl": lambda: multilevel_kl_cut_strategy(),
    "sweep": lambda: sweep_cut_strategy(),
}


def make_planner(
    strategy: str = "spectral",
    config: PlannerConfig | None = None,
    cluster: LocalCluster | None = None,
) -> OffloadingPlanner:
    """Build a planner for one of the paper's algorithms.

    *strategy* is ``"spectral"`` (the paper's), ``"maxflow"``, ``"kl"``,
    or ``"spectral-spark"`` (requires *cluster*).
    """
    if strategy == "spectral-spark":
        if cluster is None:
            raise ValueError("strategy 'spectral-spark' requires a cluster")
        return OffloadingPlanner(
            distributed_spectral_cut_strategy(cluster),
            config=config,
            strategy_name=strategy,
        )
    if strategy not in _STRATEGY_BUILDERS:
        raise ValueError(
            f"unknown strategy {strategy!r}; expected one of "
            f"{sorted(_STRATEGY_BUILDERS)} or 'spectral-spark'"
        )
    return OffloadingPlanner(
        _STRATEGY_BUILDERS[strategy](), config=config, strategy_name=strategy
    )
