"""Figures 3-8: energy consumption, single-user and multi-user.

Single-user sweep (Figs. 3-5): one user, graph sizes swept, the three cut
algorithms compared on local energy (Fig. 3), transmission energy
(Fig. 4) and total energy (Fig. 5).

Multi-user sweep (Figs. 6-8): graph size fixed (paper: 1000 functions),
user count swept, same three quantities (Figs. 6, 7, 8).

Each data point averages *repetitions* independently generated networks —
single random graphs are noisy enough to flip algorithm orderings, and
the paper's bars report the aggregate trend.  Values are reported raw;
the benches normalise them with
:func:`repro.experiments.reporting.normalize_rows`, matching the paper's
normalized y-axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import make_planner
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, SystemConsumption, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.multiuser import build_mec_system
from repro.workloads.netgen import NetgenConfig, netgen_graph
from repro.workloads.profiles import ExperimentProfile, quick_profile

ALGORITHMS = ("spectral", "maxflow", "kl")
"""The paper's three series: ours, max-flow min-cut, Kernighan-Lin."""

_SEED_STRIDE = 37
"""Seed spacing between repetitions (arbitrary, fixed for determinism)."""


@dataclass(frozen=True)
class EnergyRow:
    """One (algorithm, scale) data point of Figs. 3-8 (mean over reps)."""

    algorithm: str
    scale: int
    """Graph size (single-user sweep) or user count (multi-user sweep)."""

    local_energy: float
    transmission_energy: float
    total_energy: float
    total_time: float
    offloaded_functions: float
    repetitions: int = 1


class _Averager:
    """Accumulates per-(algorithm, scale) consumption means."""

    def __init__(self) -> None:
        self._sums: dict[tuple[str, int], list[float]] = {}
        self._counts: dict[tuple[str, int], int] = {}

    def add(
        self, algorithm: str, scale: int, consumption: SystemConsumption, offloaded: int
    ) -> None:
        key = (algorithm, scale)
        entry = self._sums.setdefault(key, [0.0, 0.0, 0.0, 0.0, 0.0])
        entry[0] += consumption.local_energy
        entry[1] += consumption.transmission_energy
        entry[2] += consumption.energy
        entry[3] += consumption.time
        entry[4] += offloaded
        self._counts[key] = self._counts.get(key, 0) + 1

    def rows(self, algorithms: tuple[str, ...], scales: tuple[int, ...]) -> list[EnergyRow]:
        rows: list[EnergyRow] = []
        for scale in scales:
            for algorithm in algorithms:
                key = (algorithm, scale)
                if key not in self._sums:
                    continue
                n = self._counts[key]
                sums = self._sums[key]
                rows.append(
                    EnergyRow(
                        algorithm=algorithm,
                        scale=scale,
                        local_energy=sums[0] / n,
                        transmission_energy=sums[1] / n,
                        total_energy=sums[2] / n,
                        total_time=sums[3] / n,
                        offloaded_functions=sums[4] / n,
                        repetitions=n,
                    )
                )
        return rows


def run_single_user_energy_experiment(
    profile: ExperimentProfile | None = None,
    algorithms: tuple[str, ...] = ALGORITHMS,
    repetitions: int = 5,
) -> list[EnergyRow]:
    """Figs. 3-5: one user, sweep graph sizes, compare algorithms."""
    profile = profile or quick_profile()
    averager = _Averager()
    for size in profile.graph_sizes:
        for rep in range(max(1, repetitions)):
            config = NetgenConfig(
                n_nodes=size,
                n_edges=profile.edges_for(size),
                seed=profile.seed + _SEED_STRIDE * rep,
            )
            graph = netgen_graph(config)
            call_graph = call_graph_from_weighted_graph(
                graph,
                app_name=f"app-{size}-{rep}",
                unoffloadable_fraction=profile.unoffloadable_fraction,
                seed=profile.seed + rep,
            )
            device = MobileDevice(device_id="user00000", profile=profile.device)
            server = EdgeServer(total_capacity=profile.server_capacity_per_user)
            system = MECSystem(server, [UserContext(device, call_graph)])

            for algorithm in algorithms:
                planner = make_planner(algorithm)
                result = planner.plan_system(system, {"user00000": call_graph})
                averager.add(
                    algorithm, size, result.consumption, result.scheme.total_offloaded
                )
    return averager.rows(algorithms, profile.graph_sizes)


def run_multiuser_energy_experiment(
    profile: ExperimentProfile | None = None,
    algorithms: tuple[str, ...] = ALGORITHMS,
    repetitions: int = 2,
) -> list[EnergyRow]:
    """Figs. 6-8: fixed graph size, sweep user counts, compare algorithms."""
    profile = profile or quick_profile()
    averager = _Averager()
    for n_users in profile.user_counts:
        for rep in range(max(1, repetitions)):
            rep_profile = ExperimentProfile(
                name=profile.name,
                graph_sizes=profile.graph_sizes,
                user_counts=profile.user_counts,
                multiuser_graph_size=profile.multiuser_graph_size,
                edges_per_node=profile.edges_per_node,
                device=profile.device,
                server_capacity_per_user=profile.server_capacity_per_user,
                unoffloadable_fraction=profile.unoffloadable_fraction,
                seed=profile.seed + _SEED_STRIDE * rep,
                distinct_graphs=profile.distinct_graphs,
            )
            workload = build_mec_system(n_users, rep_profile)
            for algorithm in algorithms:
                planner = make_planner(algorithm)
                result = planner.plan_system(workload.system, workload.call_graphs)
                averager.add(
                    algorithm, n_users, result.consumption, result.scheme.total_offloaded
                )
    return averager.rows(algorithms, profile.user_counts)
