"""Figure 9: running time of the four series.

"The running time of our algorithm without using Spark framework is
significantly greater than that of the other two algorithms when the
scale of the graph keep increasing.  Most of the running time is wasted
on lots of matrix multiplications about the graph spectrum calculation.
When we use Spark to do the matrix multiplications, the running time is
close to the other two algorithms."

Our four series mirror that setup:

* ``spectral-power``  — the paper's algorithm with the *from-scratch
  dense power-iteration* eigensolver (the "without Spark" series: naive
  repeated matrix multiplication);
* ``maxflow``         — Edmonds-Karp pipeline;
* ``kl``              — Kernighan-Lin pipeline;
* ``spectral-spark``  — the mini-Spark cluster distributing the Lanczos
  mat-vecs (the "with Spark" series).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import (
    distributed_spectral_cut_strategy,
    kl_cut_strategy,
    maxflow_cut_strategy,
    spectral_cut_strategy,
)
from repro.core.planner import OffloadingPlanner
from repro.core.results import CutStrategy
from repro.distributed.cluster import LocalCluster
from repro.spectral.fiedler import FiedlerMethod, FiedlerSolver
from repro.utils.timer import Stopwatch
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph
from repro.workloads.profiles import ExperimentProfile, quick_profile

TIMING_SERIES = ("spectral-power", "maxflow", "kl", "spectral-spark")


@dataclass(frozen=True)
class TimingRow:
    """One (series, graph size) running-time sample of Fig. 9."""

    algorithm: str
    graph_size: int
    seconds: float
    repeats: int


def _strategies(cluster: LocalCluster) -> dict[str, CutStrategy]:
    power_solver = FiedlerSolver(method=FiedlerMethod.POWER)
    return {
        "spectral-power": spectral_cut_strategy(power_solver),
        "maxflow": maxflow_cut_strategy(),
        "kl": kl_cut_strategy(),
        "spectral-spark": distributed_spectral_cut_strategy(cluster),
    }


def run_timing_experiment(
    profile: ExperimentProfile | None = None,
    series: tuple[str, ...] = TIMING_SERIES,
    repeats: int = 3,
    cluster_workers: int = 2,
) -> list[TimingRow]:
    """Time the per-application pipeline for each series and graph size.

    Each measurement plans one application end-to-end (compression + cut)
    *repeats* times and reports the mean; the workload graph is generated
    once per size so all series cut the identical graph.
    """
    profile = profile or quick_profile()
    rows: list[TimingRow] = []
    with LocalCluster(workers=cluster_workers) as cluster:
        strategies = _strategies(cluster)
        unknown = set(series) - set(strategies)
        if unknown:
            raise ValueError(f"unknown timing series: {sorted(unknown)}")
        for size in profile.graph_sizes:
            config = NetgenConfig(
                n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed
            )
            graph = netgen_graph(config)
            call_graph = call_graph_from_weighted_graph(
                graph,
                app_name=f"timing-{size}",
                unoffloadable_fraction=profile.unoffloadable_fraction,
                seed=profile.seed,
            )
            for name in series:
                planner = OffloadingPlanner(strategies[name], strategy_name=name)
                watch = Stopwatch()
                for _ in range(max(1, repeats)):
                    with watch:
                        planner.plan_user(call_graph)
                rows.append(
                    TimingRow(
                        algorithm=name,
                        graph_size=size,
                        seconds=watch.mean_lap,
                        repeats=watch.laps,
                    )
                )
    return rows
