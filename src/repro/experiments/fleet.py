"""Fleet routing-policy comparison (extension beyond the paper).

Replays one arrival trace through an :class:`~repro.fleet.EdgeFleet`
once per routing policy and once through a *single* server of equal
total capacity, and reports what the fleet layer is supposed to deliver:
load balance (max/mean admitted users and max/mean utilisation),
aggregate plan-cache hit rate, and fleet-wide ``E + T`` relative to the
monolithic baseline.  The single-server row is the control: sharding
cannot beat one big server under the paper's capacity-sharing model, so
the interesting question is how little each policy gives up — and
fingerprint-affinity routing should give up (nearly) nothing on cache
hit rate.

Beyond the homogeneous comparison, the experiment sweeps the fleet
layer's geo/heterogeneity knobs: per-server *capacities* (routing on
utilisation rather than raw user counts — the resource-aware allocation
argument of arXiv:1604.02519), a *latency* map weighing proximity into
routing and waiting-time accounting, and a post-replay *rebalance* pass
(``"free"`` flattens unconditionally, ``"cost-aware"`` only moves when
the modelled gain beats the migration price, after arXiv:1605.08023's
state-movement costs; both charge every move into the fleet ledger).

With the :mod:`repro.forecast` subsystem the sweep also covers the
temporal knobs: a per-user SLA *deadline* (admission becomes constrained
placement and the report gains violation/rejection columns, with the
violation *rate* first-class), a *forecaster* feeding the fleet's
telemetry, and ``rebalance="proactive"`` draining servers whose
*forecasted* utilisation breaches a threshold instead of reacting to
observed spread.

:func:`run_fleet_mobility_experiment` adds the *spatial*-temporal axis
from :mod:`repro.mobility`: users move (random waypoint or vehicular
corridor), every link's RTT varies tick by tick, and a handover policy
decides when a worsening link is worth a priced migration.  The sweep
is speed × handover policy, and the headline column is the tick-mean
fleet ``E + T`` with migration debt folded in — ``never`` pays for
decaying links, naive ``nearest`` pays for churn, and the damped
policies (hysteresis / predictive) should undercut both.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Sequence

from repro.fleet.fleet import EdgeFleet
from repro.fleet.latency import GeoLatencyMap, LatencyMap
from repro.fleet.migration import MigrationCostModel
from repro.fleet.routing import (
    ROUTING_POLICIES,
    FingerprintAffinityRouting,
    make_routing_policy,
)
from repro.forecast.proactive import DEFAULT_UTILISATION_THRESHOLD
from repro.forecast.sla import UserSLA
from repro.mec.devices import MobileDevice
from repro.mobility import (
    HANDOVER_POLICIES,
    MobileLatencyMap,
    MobilityField,
    evenly_spaced_stations,
    make_handover_policy,
    make_mobility_model,
)
from repro.service.executor import PlanningBackend
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import ExperimentProfile, quick_profile
from repro.workloads.traces import replay_arrivals

REBALANCE_MODES = ("off", "free", "cost-aware", "proactive")
"""Valid *rebalance* arguments for the experiment and the CLI."""


@dataclass(frozen=True)
class FleetPolicyRow:
    """One policy's outcome on the shared arrival trace."""

    policy: str
    servers: int
    users: int
    degraded: int
    imbalance: float
    """max/mean admitted users across servers (1.0 = perfectly even)."""

    hit_rate: float
    """Aggregate plan-cache hit rate across every server's cache."""

    energy: float
    time: float
    combined: float
    vs_single: float
    """``combined / single-server combined`` (1.0 = no sharding cost)."""

    utilisation_imbalance: float = 1.0
    """max/mean server utilisation — the balance metric that matters on
    heterogeneous pools."""

    moves: int = 0
    """Rebalance moves performed after the replay (0 when disabled)."""

    migration_cost: float = 0.0
    """Total ``E + T`` charged for those moves (and failover replays)."""

    sla_users: int = 0
    """Users admitted with an SLA deadline attached (0 = no SLA sweep)."""

    sla_violations: int = 0
    """SLA users whose final ledger cost breaches their deadline."""

    sla_rejections: int = 0
    """Users turned away at admission under ``on_infeasible="reject"``."""

    sla_violation_rate: float = 0.0
    """``violations / sla_users`` — the first-class SLA benchmark column."""


@dataclass(frozen=True)
class FleetRoutingComparison:
    """All policy rows plus the single-big-server control row."""

    rows: list[FleetPolicyRow]
    single: FleetPolicyRow


def _replay(
    fleet: EdgeFleet,
    arrivals: Sequence[tuple[str, object]],
    profile: ExperimentProfile,
    sla: UserSLA | None = None,
) -> None:
    # Batch admission is sequential-equivalent (same routing, caching and
    # planner state as an admit() loop); with a planning backend attached
    # to the fleet, the batch's distinct plans compute in parallel.
    devices = [
        (MobileDevice(user_id, profile=profile.device), graph)
        for user_id, graph in arrivals
    ]
    slas = (
        {device.device_id: sla for device, _ in devices} if sla is not None else None
    )
    fleet.admit_many(devices, slas=slas)


def run_fleet_routing_experiment(
    n_users: int = 48,
    n_servers: int = 4,
    profile: ExperimentProfile | None = None,
    policies: Sequence[str] = ROUTING_POLICIES,
    strategy: str = "spectral",
    rate: float = 200.0,
    seed: int = 0,
    max_users_per_server: int | None = None,
    executor: str = "thread",
    *,
    capacities: Sequence[float] | None = None,
    balance_on: str = "users",
    latency: LatencyMap | None = None,
    latency_weight: float = 0.0,
    migration: MigrationCostModel | None = None,
    rebalance: str = "off",
    sla_deadline: float | None = None,
    sla_action: str = "degrade",
    forecaster: str = "ewma",
    horizon: int = 3,
    utilisation_threshold: float = DEFAULT_UTILISATION_THRESHOLD,
) -> FleetRoutingComparison:
    """Compare routing policies on one trace; include the 1-server control.

    The fleet's total capacity always equals the single server's —
    ``profile.server_capacity_per_user * n_users`` split evenly over
    *n_servers*, or ``sum(capacities)`` for a heterogeneous pool — so
    the comparison isolates the *sharding* cost from any provisioning
    difference.  *balance_on* selects the load metric of the load-aware
    policies (``"utilisation"`` is the heterogeneous-pool setting);
    *latency*/*latency_weight* thread a geo RTT model through routing
    and accounting; *rebalance* runs a post-replay rebalancing pass
    (``"free"`` unconditional, ``"cost-aware"`` migration-priced).
    *executor* selects where planning runs (``"thread"`` inline or
    ``"process"`` on a multiprocessing pool); planning is deterministic,
    so the rows are identical either way.

    *sla_deadline* attaches a :class:`~repro.forecast.sla.UserSLA` (in
    scalarised ``E + T``) to every arrival, *sla_action* picking what
    happens when no server is feasible; *forecaster* feeds each fleet's
    telemetry and ``rebalance="proactive"`` runs the forecast-driven
    rebalancer with *horizon*/*utilisation_threshold* instead of the
    reactive pass.
    """
    if rebalance not in REBALANCE_MODES:
        raise ValueError(
            f"unknown rebalance mode {rebalance!r}; "
            f"expected one of {list(REBALANCE_MODES)}"
        )
    profile = profile or quick_profile()
    workload = build_mec_system(n_users, profile)
    arrivals = replay_arrivals(workload, rate=rate, seed=seed)
    sla = (
        UserSLA(sla_deadline, on_infeasible=sla_action)
        if sla_deadline is not None
        else None
    )
    if capacities is not None:
        capacities = list(capacities)
        total_capacity = sum(capacities)
    else:
        total_capacity = profile.server_capacity_per_user * n_users

    backend = (
        PlanningBackend(executor="process", strategy_name=strategy)
        if executor == "process"
        else None
    )

    def run(policy_name: str, servers: int, server_capacities: Sequence[float] | None) -> FleetPolicyRow:
        if server_capacities is not None:
            servers = len(server_capacities)
        fleet = EdgeFleet(
            servers,
            total_capacity / servers,
            capacities=server_capacities,
            strategy=strategy,
            routing=make_routing_policy(
                policy_name,
                seed=seed,
                balance_on=balance_on,
                latency_weight=latency_weight,
            ),
            max_users_per_server=max_users_per_server,
            backend=backend,
            latency=latency,
            migration=migration,
            forecaster=forecaster,
        )
        _replay(fleet, arrivals, profile, sla=sla)
        moves = 0
        if rebalance == "proactive":
            moves = fleet.rebalance(
                proactive=True,
                horizon=horizon,
                utilisation_threshold=utilisation_threshold,
            )
        elif rebalance != "off":
            moves = fleet.rebalance(cost_aware=rebalance == "cost-aware")
        consumption = fleet.total_consumption()
        stats = fleet.stats()
        sla_report = fleet.sla_report()
        migration_hist = fleet.metrics.histogram("fleet_migration_cost")
        return FleetPolicyRow(
            policy=policy_name,
            servers=servers,
            users=stats.users,
            degraded=stats.degraded_users,
            imbalance=stats.imbalance,
            hit_rate=stats.cache_hit_rate,
            energy=consumption.energy,
            time=consumption.time,
            combined=consumption.combined(),
            vs_single=0.0,
            utilisation_imbalance=stats.utilisation_imbalance,
            moves=moves,
            migration_cost=migration_hist.mean * migration_hist.count,
            sla_users=sla_report.users,
            sla_violations=sla_report.violations,
            sla_rejections=sla_report.rejections,
            sla_violation_rate=sla_report.violation_rate,
        )

    try:
        if backend is not None:
            backend.start()
        single = run("round-robin", 1, None)
        single = dataclasses.replace(single, policy="single", vs_single=1.0)
        rows = [
            dataclasses.replace(
                row, vs_single=row.combined / single.combined if single.combined else 0.0
            )
            for row in (run(name, n_servers, capacities) for name in policies)
        ]
    finally:
        if backend is not None:
            backend.close()
    return FleetRoutingComparison(rows=rows, single=single)


STATION_LAYOUTS = ("road", "geo")
"""Where the mobility sweep plants its server sites: ``"road"`` spaces
them evenly along the corridor (roadside units), ``"geo"`` reuses a
seeded :class:`~repro.fleet.latency.GeoLatencyMap` placement via
:meth:`~repro.mobility.field.MobilityField.from_geo`."""


@dataclass(frozen=True)
class FleetMobilityRow:
    """One (speed, handover policy) cell of the mobility sweep."""

    handover: str
    speed: float
    users: int
    handovers: int
    """Total handovers executed across the tick loop."""

    mean_rtt: float
    """Tick-mean of the mean owned-link RTT (the link-quality column)."""

    migration_cost: float
    """Total ``E + T`` charged into migration debt (churn column)."""

    energy: float
    time: float
    combined: float
    """Final-ledger fleet ``E + T`` (RTT and migration debt folded in)."""

    mean_combined: float
    """Tick-mean of the fleet ledger's combined ``E + T`` — the headline:
    a decaying link hurts it every tick, migration debt hurts it from
    the moment it is charged, so both failure modes show up here."""

    handover_sequence: tuple[tuple[int, str, str, str], ...] = ()
    """Every executed handover as ``(tick, user, source, target)`` — the
    determinism witness: same seed, same sequence."""


@dataclass(frozen=True)
class FleetMobilityComparison:
    """All (speed × handover policy) rows of one mobility sweep."""

    rows: list[FleetMobilityRow]
    speeds: tuple[float, ...]
    handovers: tuple[str, ...]

    def row(self, speed: float, handover: str) -> FleetMobilityRow:
        for row in self.rows:
            if row.speed == speed and row.handover == handover:
                return row
        raise KeyError(f"no row for speed={speed}, handover={handover!r}")


def run_fleet_mobility_experiment(
    n_users: int = 12,
    n_servers: int = 4,
    profile: ExperimentProfile | None = None,
    *,
    mobility: str = "corridor",
    speeds: Sequence[float] = (0.02, 0.08),
    handovers: Sequence[str] = HANDOVER_POLICIES,
    ticks: int = 24,
    dt: float = 1.0,
    hysteresis: float = 0.1,
    threshold: float | None = None,
    horizon: int = 3,
    base_rtt: float = 0.0,
    rtt_scale: float = 2.0,
    lanes: int = 1,
    pause_time: float = 0.0,
    stations: str = "road",
    strategy: str = "spectral",
    rate: float = 200.0,
    seed: int = 0,
    latency_slack: float | None = 0.05,
    migration: MigrationCostModel | None = None,
    forecaster: str = "ewma",
    capacity_per_server: float | None = None,
) -> FleetMobilityComparison:
    """Sweep ``E + T`` and migration debt over speed × handover policy.

    Each cell replays the same arrival trace into a fresh fleet —
    affinity routing with *latency_slack* (cache stickiness now
    genuinely trades against a worsening link), a
    :class:`~repro.mobility.latency.MobileLatencyMap` over the chosen
    mobility model, and one handover policy — then runs *ticks* calls
    of :meth:`~repro.fleet.fleet.EdgeFleet.tick` with step *dt*.  The
    fleet ledger is sampled after every tick; the row reports the final
    and tick-mean combined ``E + T`` (migration debt included), total
    handovers and the charged migration cost, plus the full handover
    sequence so callers can assert seed-determinism.

    Entries in *handovers* are policy names with an optional per-row
    hysteresis override — ``"nearest:0"`` is the naive
    chase-the-nearest baseline, ``"nearest:0.15"`` a damped variant —
    so one sweep can hold naive and damped arms side by side; a bare
    name uses the sweep-wide *hysteresis*.

    *threshold* (predictive policy) defaults to 1.5× the worst
    nearest-station RTT on the road layout — a link predicted to get
    meaningfully worse than "you are between two stations" triggers the
    proactive switch.  *lanes* defaults to 1 so corridor vehicles drive
    on the station line; the sweep's geometry then has full RTT swing.
    *capacity_per_server* defaults to room for the whole population on
    every server: mobility is a *link* experiment, and an overfull
    server would re-couple it to the capacity axis.
    """
    if mobility not in ("corridor", "waypoint"):
        raise ValueError(f"unknown mobility model {mobility!r}")
    if stations not in STATION_LAYOUTS:
        raise ValueError(
            f"unknown station layout {stations!r}; "
            f"expected one of {list(STATION_LAYOUTS)}"
        )
    if ticks < 1:
        raise ValueError(f"ticks must be >= 1, got {ticks}")
    profile = profile or quick_profile()
    workload = build_mec_system(n_users, profile)
    arrivals = replay_arrivals(workload, rate=rate, seed=seed)
    server_ids = [f"edge-{index:02d}" for index in range(n_servers)]
    if threshold is None:
        threshold = base_rtt + 1.5 * rtt_scale / (2 * n_servers)
    if capacity_per_server is None:
        capacity_per_server = profile.server_capacity_per_user * n_users

    def run_cell(speed: float, handover_spec: str) -> FleetMobilityRow:
        handover_name, _, override = handover_spec.partition(":")
        cell_hysteresis = float(override) if override else hysteresis
        model = make_mobility_model(
            mobility, speed=speed, pause_time=pause_time, lanes=lanes, seed=seed
        )
        if stations == "geo":
            field = MobilityField.from_geo(
                model, GeoLatencyMap(seed=seed), server_ids
            )
        else:
            field = MobilityField(model, evenly_spaced_stations(server_ids))
        fleet = EdgeFleet(
            n_servers,
            capacity_per_server,
            strategy=strategy,
            routing=FingerprintAffinityRouting(latency_slack=latency_slack),
            latency=MobileLatencyMap(
                field, base_rtt=base_rtt, seconds_per_unit=rtt_scale
            ),
            migration=migration,
            forecaster=forecaster,
            handover=make_handover_policy(
                handover_name,
                hysteresis=cell_hysteresis,
                threshold=threshold,
                horizon=horizon,
            ),
        )
        _replay(fleet, arrivals, profile)
        sequence: list[tuple[int, str, str, str]] = []
        combined_samples: list[float] = []
        rtt_samples: list[float] = []
        for _ in range(ticks):
            report = fleet.tick(dt)
            sequence.extend(
                (d.tick, d.user_id, d.source, d.target) for d in report.handovers
            )
            combined_samples.append(fleet.total_consumption().combined())
            owned = [
                fleet.latency.rtt(user_id, server_id)
                for server_id, server in sorted(fleet.servers.items())
                for user_id in server.admitted
            ]
            if owned:
                rtt_samples.append(sum(owned) / len(owned))
        consumption = fleet.total_consumption()
        migration_hist = fleet.metrics.histogram("fleet_migration_cost")
        return FleetMobilityRow(
            handover=handover_spec,
            speed=speed,
            users=fleet.stats().users,
            handovers=fleet.metrics.counter("fleet_handovers").value,
            mean_rtt=sum(rtt_samples) / len(rtt_samples) if rtt_samples else 0.0,
            migration_cost=migration_hist.mean * migration_hist.count,
            energy=consumption.energy,
            time=consumption.time,
            combined=consumption.combined(),
            mean_combined=sum(combined_samples) / len(combined_samples),
            handover_sequence=tuple(sequence),
        )

    rows = [
        run_cell(speed, handover_name)
        for speed in speeds
        for handover_name in handovers
    ]
    return FleetMobilityComparison(
        rows=rows, speeds=tuple(speeds), handovers=tuple(handovers)
    )
