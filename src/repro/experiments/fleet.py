"""Fleet routing-policy comparison (extension beyond the paper).

Replays one arrival trace through an :class:`~repro.fleet.EdgeFleet`
once per routing policy and once through a *single* server of equal
total capacity, and reports what the fleet layer is supposed to deliver:
load balance (max/mean admitted users), aggregate plan-cache hit rate,
and fleet-wide ``E + T`` relative to the monolithic baseline.  The
single-server row is the control: sharding cannot beat one big server
under the paper's capacity-sharing model, so the interesting question
is how little each policy gives up — and fingerprint-affinity routing
should give up (nearly) nothing on cache hit rate.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Sequence

from repro.fleet.fleet import EdgeFleet
from repro.fleet.routing import ROUTING_POLICIES, make_routing_policy
from repro.mec.devices import MobileDevice
from repro.service.executor import PlanningBackend
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import ExperimentProfile, quick_profile
from repro.workloads.traces import replay_arrivals


@dataclass(frozen=True)
class FleetPolicyRow:
    """One policy's outcome on the shared arrival trace."""

    policy: str
    servers: int
    users: int
    degraded: int
    imbalance: float
    """max/mean admitted users across servers (1.0 = perfectly even)."""

    hit_rate: float
    """Aggregate plan-cache hit rate across every server's cache."""

    energy: float
    time: float
    combined: float
    vs_single: float
    """``combined / single-server combined`` (1.0 = no sharding cost)."""


@dataclass(frozen=True)
class FleetRoutingComparison:
    """All policy rows plus the single-big-server control row."""

    rows: list[FleetPolicyRow]
    single: FleetPolicyRow


def _replay(
    fleet: EdgeFleet,
    arrivals: Sequence[tuple[str, object]],
    profile: ExperimentProfile,
) -> tuple[float, float, float]:
    # Batch admission is sequential-equivalent (same routing, caching and
    # planner state as an admit() loop); with a planning backend attached
    # to the fleet, the batch's distinct plans compute in parallel.
    fleet.admit_many(
        [(MobileDevice(user_id, profile=profile.device), graph) for user_id, graph in arrivals]
    )
    consumption = fleet.total_consumption()
    return consumption.energy, consumption.time, consumption.combined()


def run_fleet_routing_experiment(
    n_users: int = 48,
    n_servers: int = 4,
    profile: ExperimentProfile | None = None,
    policies: Sequence[str] = ROUTING_POLICIES,
    strategy: str = "spectral",
    rate: float = 200.0,
    seed: int = 0,
    max_users_per_server: int | None = None,
    executor: str = "thread",
) -> FleetRoutingComparison:
    """Compare routing policies on one trace; include the 1-server control.

    The fleet's total capacity always equals the single server's
    (``profile.server_capacity_per_user * n_users``), split evenly over
    *n_servers*, so the comparison isolates the *sharding* cost from any
    provisioning difference.  *executor* selects where planning runs
    (``"thread"`` inline or ``"process"`` on a multiprocessing pool);
    planning is deterministic, so the rows are identical either way.
    """
    profile = profile or quick_profile()
    workload = build_mec_system(n_users, profile)
    arrivals = replay_arrivals(workload, rate=rate, seed=seed)
    total_capacity = profile.server_capacity_per_user * n_users

    backend = (
        PlanningBackend(executor="process", strategy_name=strategy)
        if executor == "process"
        else None
    )

    def run(policy_name: str, servers: int) -> FleetPolicyRow:
        fleet = EdgeFleet(
            servers,
            total_capacity / servers,
            strategy=strategy,
            routing=make_routing_policy(policy_name, seed=seed),
            max_users_per_server=max_users_per_server,
            backend=backend,
        )
        energy, time, combined = _replay(fleet, arrivals, profile)
        stats = fleet.stats()
        return FleetPolicyRow(
            policy=policy_name,
            servers=servers,
            users=stats.users,
            degraded=stats.degraded_users,
            imbalance=stats.imbalance,
            hit_rate=stats.cache_hit_rate,
            energy=energy,
            time=time,
            combined=combined,
            vs_single=0.0,
        )

    try:
        if backend is not None:
            backend.start()
        single = run("round-robin", 1)
        single = dataclasses.replace(single, policy="single", vs_single=1.0)
        rows = [
            dataclasses.replace(
                row, vs_single=row.combined / single.combined if single.combined else 0.0
            )
            for row in (run(name, n_servers) for name in policies)
        ]
    finally:
        if backend is not None:
            backend.close()
    return FleetRoutingComparison(rows=rows, single=single)
