"""The claims ledger: every qualitative claim of the paper, checked by code.

EXPERIMENTS.md narrates the reproduction; this module *executes* it.
Each :class:`Claim` names one sentence of the paper's evaluation and a
predicate over measured experiment rows; :func:`verify_claims` runs the
experiments once and returns a pass/fail ledger — the artifact a
reproducibility reviewer actually wants.

Available from the CLI as ``python -m repro verify``.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.experiments.figures import (
    EnergyRow,
    run_multiuser_energy_experiment,
    run_single_user_energy_experiment,
)
from repro.experiments.table1 import CompressionRow, run_table1
from repro.experiments.timing import TimingRow, run_timing_experiment
from repro.workloads.netgen import NetgenConfig
from repro.workloads.profiles import ExperimentProfile, quick_profile


@dataclass
class ClaimResult:
    """One verified (or falsified) claim."""

    claim_id: str
    statement: str
    passed: bool
    detail: str = ""


@dataclass
class Measurements:
    """The experiment outputs the claim predicates consume."""

    table1: list[CompressionRow]
    single_user: list[EnergyRow]
    multi_user: list[EnergyRow]
    timing: list[TimingRow]


# Backwards-compatible private alias (predicates were written against it).
_Measurements = Measurements


def _by_scale(rows: Sequence[EnergyRow], value) -> dict[int, dict[str, float]]:
    out: dict[int, dict[str, float]] = {}
    for row in rows:
        out.setdefault(row.scale, {})[row.algorithm] = value(row)
    return out


def _claim_compression_heavy(m: _Measurements) -> tuple[bool, str]:
    reductions = [r.node_reduction for r in m.table1]
    worst = min(reductions)
    return worst > 0.5, f"node reductions {['%.0f%%' % (100 * r) for r in reductions]}"


def _claim_compression_ratio_grows(m: _Measurements) -> tuple[bool, str]:
    ratios = [r.function_number / r.function_number_after for r in m.table1]
    return ratios[-1] > ratios[0], f"ratios {['%.1f' % r for r in ratios]}"


def _claim_energy_grows_with_size(m: _Measurements) -> tuple[bool, str]:
    per_alg: dict[str, list[float]] = {}
    for row in m.single_user:
        per_alg.setdefault(row.algorithm, []).append(row.total_energy)
    growing = all(series[-1] > series[0] for series in per_alg.values())
    return growing, f"{len(per_alg)} algorithms over {len(m.table1)} sizes"


def _claim_ours_best_total_single(m: _Measurements) -> tuple[bool, str]:
    by_scale = _by_scale(m.single_user, lambda r: r.total_energy)
    wins = sum(
        1
        for algs in by_scale.values()
        if algs["spectral"] <= min(algs["maxflow"], algs["kl"]) + 1e-9
    )
    largest = by_scale[max(by_scale)]
    headline = largest["spectral"] <= min(largest["maxflow"], largest["kl"]) + 1e-9
    return (
        headline and wins >= (len(by_scale) + 1) // 2,
        f"spectral wins {wins}/{len(by_scale)} sizes incl. the largest",
    )


def _claim_ours_lighter_tx_than_kl(m: _Measurements) -> tuple[bool, str]:
    for rows, label in ((m.single_user, "single"), (m.multi_user, "multi")):
        by_scale = _by_scale(rows, lambda r: r.transmission_energy)
        for scale, algs in by_scale.items():
            if algs["spectral"] > algs["kl"] + 1e-9:
                return False, f"KL transmitted less at {label}-user scale {scale}"
    return True, "at every scale, both sweeps"


def _claim_multi_consistent(m: _Measurements) -> tuple[bool, str]:
    by_scale = _by_scale(m.multi_user, lambda r: r.total_energy)
    losses = [
        scale
        for scale, algs in by_scale.items()
        if algs["spectral"] > min(algs["maxflow"], algs["kl"]) + 1e-9
    ]
    return not losses, (
        "spectral lowest total at every user count"
        if not losses
        else f"lost at user counts {losses}"
    )


def _claim_naive_spectral_slowest(m: _Measurements) -> tuple[bool, str]:
    largest = max(r.graph_size for r in m.timing)
    at_largest = {r.algorithm: r.seconds for r in m.timing if r.graph_size == largest}
    naive = at_largest["spectral-power"]
    others = [at_largest["maxflow"], at_largest["kl"]]
    return naive > max(others), (
        f"{naive:.2f}s vs baselines max {max(others):.2f}s at size {largest}"
    )


def _claim_spark_closes_gap(m: _Measurements) -> tuple[bool, str]:
    largest = max(r.graph_size for r in m.timing)
    at_largest = {r.algorithm: r.seconds for r in m.timing if r.graph_size == largest}
    naive = at_largest["spectral-power"]
    spark = at_largest["spectral-spark"]
    baseline = max(at_largest["maxflow"], at_largest["kl"])
    closes = spark < naive and spark <= 3.0 * baseline
    return closes, f"{naive:.2f}s -> {spark:.2f}s (baselines ~{baseline:.2f}s)"


CLAIMS: list[tuple[str, str, Callable[[_Measurements], tuple[bool, str]]]] = [
    (
        "table1-reduction",
        "The scale of the original graphs is reduced a lot (Table I)",
        _claim_compression_heavy,
    ),
    (
        "table1-ratio-grows",
        "With the increase of graph size, the compression ratio also increases",
        _claim_compression_ratio_grows,
    ),
    (
        "fig3-5-growth",
        "With the increase of the scale, consumption is also increasing",
        _claim_energy_grows_with_size,
    ),
    (
        "fig5-ours-least",
        "Our algorithm's total energy consumption is the least (single user)",
        _claim_ours_best_total_single,
    ),
    (
        "fig4-7-tx-vs-kl",
        "Our algorithm transmits less than Kernighan-Lin",
        _claim_ours_lighter_tx_than_kl,
    ),
    (
        "fig6-8-consistent",
        "Multi-user results are consistent with the single user situation",
        _claim_multi_consistent,
    ),
    (
        "fig9-naive-slow",
        "Without Spark, our algorithm's running time exceeds the baselines",
        _claim_naive_spectral_slowest,
    ),
    (
        "fig9-spark-close",
        "With Spark, the running time is close to the other two algorithms",
        _claim_spark_closes_gap,
    ),
]


def verify_claims(
    profile: ExperimentProfile | None = None,
    single_user_repetitions: int = 5,
    multiuser_repetitions: int = 2,
    timing_repeats: int = 2,
) -> list[ClaimResult]:
    """Run the evaluation and check every claim; returns the ledger."""
    profile = profile or quick_profile()
    configs = [
        NetgenConfig(n_nodes=s, n_edges=profile.edges_for(s), seed=profile.seed)
        for s in profile.graph_sizes
    ]
    measurements = Measurements(
        table1=run_table1(configs),
        single_user=run_single_user_energy_experiment(
            profile, repetitions=single_user_repetitions
        ),
        multi_user=run_multiuser_energy_experiment(
            profile, repetitions=multiuser_repetitions
        ),
        timing=run_timing_experiment(profile, repeats=timing_repeats),
    )
    return check_claims(measurements)


def check_claims(measurements: Measurements) -> list[ClaimResult]:
    """Evaluate every claim against pre-computed *measurements*."""
    ledger: list[ClaimResult] = []
    for claim_id, statement, check in CLAIMS:
        passed, detail = check(measurements)
        ledger.append(
            ClaimResult(claim_id=claim_id, statement=statement, passed=passed, detail=detail)
        )
    return ledger
