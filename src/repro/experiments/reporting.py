"""Result normalisation and plain-text rendering.

The paper's figures report *normalized* consumption: every bar is divided
by the maximum across all algorithms and sizes (the Kernighan-Lin bar at
the largest scale reads 1.00 in Figs. 3-8).  ``normalize_rows`` applies
the same convention.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TypeVar

Row = TypeVar("Row")


def normalize_rows(
    rows: Sequence[Row], value: Callable[[Row], float]
) -> dict[int, float]:
    """Normalise ``value(row)`` by the maximum over *rows*.

    Returns ``{index in rows: normalized value}``; an all-zero series
    normalises to zeros rather than dividing by zero.
    """
    values = [value(row) for row in rows]
    peak = max(values) if values else 0.0
    if peak <= 0:
        return {i: 0.0 for i in range(len(values))}
    return {i: v / peak for i, v in enumerate(values)}


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (the harness's report format)."""
    table = [list(map(str, headers))] + [[_fmt(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    lines = []
    for row_index, row in enumerate(table):
        line = "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        lines.append(line.rstrip())
        if row_index == 0:
            lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)
