"""One-shot markdown report over the full evaluation.

``generate_markdown_report`` runs every reproduction experiment (Table I,
the two energy sweeps, the timing comparison) at the given profile and
renders a single self-contained markdown document — the artifact a
nightly job would archive.  Available from the CLI as
``python -m repro report``.
"""

from __future__ import annotations

from repro.experiments.figures import (
    EnergyRow,
    run_multiuser_energy_experiment,
    run_single_user_energy_experiment,
)
from repro.experiments.reporting import normalize_rows
from repro.experiments.table1 import run_table1
from repro.experiments.timing import run_timing_experiment
from repro.workloads.netgen import NetgenConfig
from repro.workloads.profiles import ExperimentProfile, quick_profile


def _markdown_table(headers: list[str], rows: list[list[object]]) -> str:
    def fmt(cell: object) -> str:
        return f"{cell:.3f}" if isinstance(cell, float) else str(cell)

    lines = [
        "| " + " | ".join(headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    lines.extend("| " + " | ".join(fmt(c) for c in row) + " |" for row in rows)
    return "\n".join(lines)


def _energy_section(title: str, rows: list[EnergyRow], scale_name: str) -> str:
    normalized_total = normalize_rows(rows, lambda r: r.total_energy)
    body = _markdown_table(
        [
            "algorithm",
            scale_name,
            "local E",
            "tx E",
            "total E",
            "total E (norm)",
            "total T",
        ],
        [
            [
                r.algorithm,
                r.scale,
                r.local_energy,
                r.transmission_energy,
                r.total_energy,
                normalized_total[i],
                r.total_time,
            ]
            for i, r in enumerate(rows)
        ],
    )
    return f"## {title}\n\n{body}\n"


def generate_markdown_report(
    profile: ExperimentProfile | None = None,
    include_timing: bool = True,
    single_user_repetitions: int = 5,
    multiuser_repetitions: int = 2,
) -> str:
    """Run the evaluation and return the full markdown document."""
    profile = profile or quick_profile()
    sections: list[str] = [
        "# COPMECS reproduction report",
        "",
        f"Profile: **{profile.name}** — graph sizes {list(profile.graph_sizes)}, "
        f"user counts {list(profile.user_counts)}, seed {profile.seed}.",
        "",
    ]

    # Table I.
    configs = [
        NetgenConfig(n_nodes=s, n_edges=profile.edges_for(s), seed=profile.seed)
        for s in profile.graph_sizes
    ]
    table1 = run_table1(configs)
    sections.append("## Table I — graph compression\n")
    sections.append(
        _markdown_table(
            ["network", "functions", "edges", "functions after", "edges after", "reduction"],
            [
                [
                    r.network,
                    r.function_number,
                    r.edge_number,
                    r.function_number_after,
                    r.edge_number_after,
                    f"{100 * r.node_reduction:.1f}%",
                ]
                for r in table1
            ],
        )
        + "\n"
    )

    single = run_single_user_energy_experiment(
        profile, repetitions=single_user_repetitions
    )
    sections.append(
        _energy_section("Figures 3-5 — single user energies", single, "graph size")
    )

    multi = run_multiuser_energy_experiment(profile, repetitions=multiuser_repetitions)
    sections.append(
        _energy_section("Figures 6-8 — multi-user energies", multi, "users")
    )

    if include_timing:
        timing = run_timing_experiment(profile, repeats=2)
        sections.append("## Figure 9 — running time\n")
        sections.append(
            _markdown_table(
                ["algorithm", "graph size", "seconds"],
                [[r.algorithm, r.graph_size, r.seconds] for r in timing],
            )
            + "\n"
        )

    return "\n".join(sections)
