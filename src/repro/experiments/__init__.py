"""Experiment harness regenerating every table and figure of the paper.

Each module maps to evaluation artifacts:

* :mod:`repro.experiments.table1`  — Table I (compression results);
* :mod:`repro.experiments.figures` — Figs. 3-5 (single-user energies)
  and Figs. 6-8 (multi-user energies);
* :mod:`repro.experiments.timing`  — Fig. 9 (running time, 4 series);
* :mod:`repro.experiments.reporting` — normalisation and ASCII rendering.

Every experiment takes an :class:`~repro.workloads.profiles.ExperimentProfile`
so the same code runs the paper's scales and the laptop-bench scales.
"""

from repro.experiments.claims import CLAIMS, ClaimResult, verify_claims
from repro.experiments.contention import (
    ContentionCurvePoint,
    ContentionRow,
    contention_curve,
    run_contention_experiment,
)
from repro.experiments.figures import (
    EnergyRow,
    run_multiuser_energy_experiment,
    run_single_user_energy_experiment,
)
from repro.experiments.report import generate_markdown_report
from repro.experiments.reporting import normalize_rows, render_table
from repro.experiments.sensitivity import (
    SensitivityRow,
    find_crossover,
    run_sensitivity_experiment,
)
from repro.experiments.table1 import CompressionRow, run_table1
from repro.experiments.topologies import (
    TopologyRow,
    run_topology_experiment,
    winners_by_topology,
)
from repro.experiments.timing import TimingRow, run_timing_experiment

__all__ = [
    "run_table1",
    "CompressionRow",
    "run_single_user_energy_experiment",
    "run_multiuser_energy_experiment",
    "EnergyRow",
    "run_timing_experiment",
    "TimingRow",
    "normalize_rows",
    "render_table",
    "generate_markdown_report",
    "run_sensitivity_experiment",
    "SensitivityRow",
    "find_crossover",
    "run_topology_experiment",
    "TopologyRow",
    "winners_by_topology",
    "verify_claims",
    "ClaimResult",
    "CLAIMS",
    "run_contention_experiment",
    "contention_curve",
    "ContentionRow",
    "ContentionCurvePoint",
]
