"""Topology robustness: the three-algorithm comparison off NETGEN.

The reproduction experiments all use NETGEN-shaped workloads (clustered,
multi-component); this experiment re-runs the comparison on three classic
random models to separate the paper's structural assumptions from its
algorithmic claims.  The robustness bench and the CLI both drive it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.callgraph.model import FunctionCallGraph
from repro.core.baselines import make_planner
from repro.graphs.random_models import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
)
from repro.graphs.weighted_graph import WeightedGraph
from repro.mec.devices import EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph
from repro.workloads.profiles import ExperimentProfile, quick_profile

TOPOLOGIES = ("netgen", "erdos-renyi", "barabasi-albert", "watts-strogatz")


@dataclass(frozen=True)
class TopologyRow:
    """One (topology, algorithm) outcome."""

    topology: str
    algorithm: str
    local_energy: float
    transmission_energy: float
    total_energy: float
    combined: float
    offloaded_functions: int


def build_topology_graph(
    topology: str, size: int, edges: int, seed: int
) -> WeightedGraph:
    """One graph of the named *topology* with roughly matched density."""
    if topology == "netgen":
        return netgen_graph(NetgenConfig(n_nodes=size, n_edges=edges, seed=seed))
    if topology == "erdos-renyi":
        probability = min(1.0, 2.0 * edges / (size * (size - 1)))
        return erdos_renyi_graph(size, probability, seed=seed)
    if topology == "barabasi-albert":
        return barabasi_albert_graph(size, attachments=max(1, edges // size), seed=seed)
    if topology == "watts-strogatz":
        return watts_strogatz_graph(
            size, ring_neighbors=2 * max(1, edges // size // 2), seed=seed
        )
    raise ValueError(f"unknown topology {topology!r}; expected one of {TOPOLOGIES}")


def run_topology_experiment(
    profile: ExperimentProfile | None = None,
    size: int | None = None,
    topologies: tuple[str, ...] = TOPOLOGIES,
    algorithms: tuple[str, ...] = ("spectral", "maxflow", "kl"),
) -> list[TopologyRow]:
    """Run every algorithm on every topology (single-user systems)."""
    profile = profile or quick_profile()
    chosen_size = size if size is not None else profile.graph_sizes[0]
    edges = profile.edges_for(chosen_size)

    rows: list[TopologyRow] = []
    for topology in topologies:
        graph = build_topology_graph(topology, chosen_size, edges, profile.seed)
        app: FunctionCallGraph = call_graph_from_weighted_graph(
            graph,
            app_name=topology,
            unoffloadable_fraction=profile.unoffloadable_fraction,
            seed=profile.seed,
        )
        device = MobileDevice("user00000", profile=profile.device)
        system = MECSystem(
            EdgeServer(profile.server_capacity_per_user), [UserContext(device, app)]
        )
        for algorithm in algorithms:
            result = make_planner(algorithm).plan_system(system, {"user00000": app})
            consumption = result.consumption
            rows.append(
                TopologyRow(
                    topology=topology,
                    algorithm=algorithm,
                    local_energy=consumption.local_energy,
                    transmission_energy=consumption.transmission_energy,
                    total_energy=consumption.energy,
                    combined=consumption.combined(),
                    offloaded_functions=result.scheme.total_offloaded,
                )
            )
    return rows


def winners_by_topology(rows: list[TopologyRow]) -> dict[str, str]:
    """Lowest combined objective per topology."""
    best: dict[str, TopologyRow] = {}
    for row in rows:
        current = best.get(row.topology)
        if current is None or row.combined < current.combined:
            best[row.topology] = row
    return {topology: row.algorithm for topology, row in best.items()}
