"""Parameter sensitivity: where does offloading stop paying?

The paper fixes one parameter regime; a deployment engineer needs to
know how the conclusion moves with the physical constants.  This
experiment sweeps one parameter at a time around the profile's defaults
— transmission power ``p_t``, uplink bandwidth ``b``, device capacity
``I_c``, server capacity per user — re-plans at every point, and reports
the offloaded fraction and consumption, exposing the crossover where the
scheme collapses to all-local.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.baselines import make_planner
from repro.mec.devices import DeviceProfile, EdgeServer, MobileDevice
from repro.mec.system import MECSystem, UserContext
from repro.workloads.applications import call_graph_from_weighted_graph
from repro.workloads.netgen import NetgenConfig, netgen_graph
from repro.workloads.profiles import ExperimentProfile, quick_profile

SWEEPABLE = ("power_transmit", "bandwidth", "compute_capacity", "server_capacity")
"""Parameters the sensitivity experiment can sweep."""

DEFAULT_MULTIPLIERS: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0)


@dataclass(frozen=True)
class SensitivityRow:
    """One (parameter, multiplier) sample."""

    parameter: str
    multiplier: float
    value: float
    offloaded_fraction: float
    local_energy: float
    transmission_energy: float
    total_energy: float
    total_time: float


def run_sensitivity_experiment(
    parameter: str,
    profile: ExperimentProfile | None = None,
    multipliers: Sequence[float] = DEFAULT_MULTIPLIERS,
    graph_size: int | None = None,
    algorithm: str = "spectral",
) -> list[SensitivityRow]:
    """Sweep *parameter* over ``default * multiplier`` and re-plan.

    One user, one fixed workload graph (so the only thing changing is
    the parameter), the configured cut *algorithm*.
    """
    if parameter not in SWEEPABLE:
        raise ValueError(f"unknown parameter {parameter!r}; expected one of {SWEEPABLE}")
    profile = profile or quick_profile()
    size = graph_size if graph_size is not None else profile.graph_sizes[0]

    graph = netgen_graph(
        NetgenConfig(n_nodes=size, n_edges=profile.edges_for(size), seed=profile.seed)
    )
    call_graph = call_graph_from_weighted_graph(
        graph, unoffloadable_fraction=profile.unoffloadable_fraction, seed=profile.seed
    )
    offloadable_count = len(call_graph.offloadable_functions())
    planner = make_planner(algorithm)

    rows: list[SensitivityRow] = []
    for multiplier in multipliers:
        if multiplier <= 0:
            raise ValueError(f"multipliers must be > 0, got {multiplier}")
        device_profile = profile.device
        server_capacity = profile.server_capacity_per_user
        if parameter == "server_capacity":
            value = server_capacity * multiplier
            server_capacity = value
        else:
            value = getattr(device_profile, parameter) * multiplier
            device_profile = dataclasses.replace(device_profile, **{parameter: value})

        device = MobileDevice("user00000", profile=device_profile)
        system = MECSystem(
            EdgeServer(server_capacity), [UserContext(device, call_graph)]
        )
        result = planner.plan_system(system, {"user00000": call_graph})
        consumption = result.consumption
        rows.append(
            SensitivityRow(
                parameter=parameter,
                multiplier=multiplier,
                value=value,
                offloaded_fraction=(
                    result.scheme.offload_count("user00000") / offloadable_count
                    if offloadable_count
                    else 0.0
                ),
                local_energy=consumption.local_energy,
                transmission_energy=consumption.transmission_energy,
                total_energy=consumption.energy,
                total_time=consumption.time,
            )
        )
    return rows


def find_crossover(rows: Sequence[SensitivityRow]) -> float | None:
    """First multiplier at which offloading dies (fraction hits ~0).

    Returns ``None`` when offloading survives the whole sweep.  Rows must
    come from one sweep (monotone multipliers).
    """
    for row in rows:
        if row.offloaded_fraction < 1e-9:
            return row.multiplier
    return None
