"""Shared-channel contention sweep: blind vs. aware vs. best-response.

The paper's multi-user experiments price every upload at the private
device bandwidth ``b``.  This sweep puts the same workloads on a shared
wireless channel (:class:`~repro.mec.channel.SharedChannel`) and compares
three planning arms head-to-head as the co-offloading population grows:

* ``blind``  — the paper's greedy, planned at constant ``b``, then
  *executed* under the shared channel (what deploying the paper's
  planner on contended spectrum would actually cost);
* ``aware``  — the same greedy with the contention fixed point and
  withdrawal sweep (:func:`repro.mec.greedy.generate_offloading_scheme`
  with a channel-carrying system);
* ``game``   — the decentralized best-response equilibrium
  (:func:`repro.mec.game.best_response_equilibrium`), Chen et al.'s
  baseline: selfish users, no coordinator.

The referee is the discrete-event simulator in fair-share mode
(``shared_uplink_capacity``) — plans are judged by measured energy and
completion, not by their own cost model.

A separate *contention curve* isolates the physics from the planning:
one fixed solo placement, replicated across ``n`` co-offloading users,
evaluated under the channel — per-user ``e_t``/``t_t`` must rise
strictly with ``n`` (the claim BENCH_contention.json asserts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.baselines import make_planner
from repro.mec.channel import SharedChannel, make_quality_profile
from repro.mec.game import best_response_equilibrium
from repro.mec.scheme import PartitionedApplication
from repro.mec.system import MECSystem
from repro.simulation.engine import simulate_scheme
from repro.workloads.multiuser import build_mec_system
from repro.workloads.profiles import ExperimentProfile, quick_profile

ARMS = ("blind", "aware", "game")
"""The three planning arms compared by the sweep."""


@dataclass(frozen=True)
class ContentionRow:
    """One (arm, user count) data point of the contention sweep."""

    arm: str
    n_users: int

    planned_combined: float
    """The arm's own modelled ``E + T`` for its placement (the blind
    arm's model ignores contention — that is the point)."""

    evaluated_combined: float
    """``E + T`` of the arm's placement re-evaluated under the shared
    channel (the contention-consistent planner model)."""

    simulated_energy: float
    """Measured device energy when the simulator executes the placement
    on the fair-share channel."""

    simulated_completion: float
    """Measured Σ per-user completion under the same execution."""

    offloaders: int
    """Users transmitting a non-empty cut in the arm's placement."""

    contention_rounds: int = 0
    """Fixed-point rounds the aware arm ran (0 for other arms)."""

    game_rounds: int = 0
    game_converged: bool = True
    """Best-response rounds and convergence (game arm only)."""


@dataclass(frozen=True)
class ContentionCurvePoint:
    """Per-user ``e_t``/``t_t`` of one fixed placement at ``n`` co-offloaders."""

    n_users: int
    effective_rate: float
    transmission_energy: float
    transmission_time: float


def contention_curve(
    profile: ExperimentProfile,
    channel: SharedChannel,
    user_counts: tuple[int, ...],
    algorithm: str = "spectral",
) -> list[ContentionCurvePoint]:
    """The physics in isolation: one solo-optimal placement, replicated.

    Plans a single user contention-blind, then reprices that user's
    transmission at ``b_i(n)`` for each ``n`` in *user_counts* as if
    ``n`` identical users co-offloaded.  Pure formula (4)/(5) at the
    load-dependent rate — no re-planning, so the per-user ``e_t`` and
    ``t_t`` must rise strictly with ``n`` whenever the shared capacity
    binds below the private link.
    """
    workload = build_mec_system(1, profile)
    planner = make_planner(algorithm)
    result = planner.plan_system(workload.system, workload.call_graphs)
    user_id = workload.system.users[0].user_id
    device = workload.system.users[0].device
    app = PartitionedApplication(
        user_id, workload.call_graphs[user_id], result.user_plans[user_id].parts
    )
    cut = app.cut_weight(result.greedy.remote_parts.get(user_id, set()))
    if cut <= 0:
        # The optimiser kept this app local (small apps often are) — the
        # curve is about the channel physics, not the decision, so fall
        # back to the everything-offloadable-remote placement, whose cut
        # to the pinned-local anchor is positive.
        cut = app.cut_weight({part.part_id for part in app.parts})
    points: list[ContentionCurvePoint] = []
    for n in user_counts:
        rate = channel.rate_for(user_id, n, device.bandwidth)
        points.append(
            ContentionCurvePoint(
                n_users=n,
                effective_rate=rate,
                transmission_energy=cut * device.power_transmit / rate,
                transmission_time=cut / rate,
            )
        )
    return points


def run_contention_experiment(
    profile: ExperimentProfile | None = None,
    user_counts: tuple[int, ...] = (1, 2, 4, 6, 8),
    algorithm: str = "spectral",
    channel_capacity: float | None = None,
    quality_spread: float = 0.0,
    seed: int = 0,
) -> tuple[list[ContentionRow], list[ContentionCurvePoint]]:
    """Run the three-arm contention sweep plus the fixed-placement curve.

    *channel_capacity* defaults to the profile's device bandwidth — the
    regime where a lone offloader keeps their full link (constant-``b``
    parity) but any second offloader halves it.  *quality_spread*
    widens per-user channel gains via :func:`make_quality_profile`;
    *seed* keys both the quality draw and the game's visit order.
    """
    profile = profile or quick_profile()
    capacity = (
        channel_capacity if channel_capacity is not None else profile.device.bandwidth
    )

    rows: list[ContentionRow] = []
    for n_users in user_counts:
        blind_workload = build_mec_system(n_users, profile)
        user_ids = [u.user_id for u in blind_workload.system.users]
        channel = SharedChannel(
            capacity=capacity,
            quality=make_quality_profile(user_ids, spread=quality_spread, seed=seed),
        )
        aware_system = MECSystem(
            server=blind_workload.system.server,
            users=blind_workload.system.users,
            allocation=blind_workload.system.allocation,
            channel=channel,
        )
        planner = make_planner(algorithm)
        blind_result = planner.plan_system(blind_workload.system, blind_workload.call_graphs)
        apps = {
            uid: PartitionedApplication(
                uid, blind_workload.call_graphs[uid], blind_result.user_plans[uid].parts
            )
            for uid in user_ids
        }
        bisections = {
            uid: blind_result.user_plans[uid].bisections for uid in user_ids
        }

        aware_result = make_planner(algorithm).plan_system(
            aware_system, blind_workload.call_graphs
        )
        game_result = best_response_equilibrium(
            aware_system, apps, bisections, seed=seed
        )

        placements = {
            "blind": blind_result.greedy.remote_parts,
            "aware": aware_result.greedy.remote_parts,
            "game": game_result.remote_parts,
        }
        planned = {
            "blind": blind_result.consumption.combined(),
            "aware": aware_result.consumption.combined(),
            "game": game_result.consumption.combined(),
        }
        for arm in ARMS:
            placement = placements[arm]
            evaluated = aware_system.evaluate_placement(apps, placement)
            report = simulate_scheme(
                aware_system,
                apps,
                placement,
                shared_uplink_capacity=channel.capacity,
            )
            rows.append(
                ContentionRow(
                    arm=arm,
                    n_users=n_users,
                    planned_combined=planned[arm],
                    evaluated_combined=evaluated.combined(),
                    simulated_energy=report.total_energy,
                    simulated_completion=report.total_completion_time,
                    offloaders=sum(1 for parts in placement.values() if parts),
                    contention_rounds=(
                        aware_result.greedy.contention_rounds if arm == "aware" else 0
                    ),
                    game_rounds=game_result.rounds if arm == "game" else 0,
                    game_converged=game_result.converged if arm == "game" else True,
                )
            )

    curve_channel = SharedChannel(capacity=capacity)
    curve = contention_curve(profile, curve_channel, user_counts, algorithm)
    return rows, curve
