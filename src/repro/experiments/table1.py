"""Table I: graph compression results.

"Table I reflects the result of our graph compression algorithm.  The
scale of the original graphs is reduced a lot.  With the increase of
graph size, the compression ratio also increases.  When the graph node
number is 5000, the number of nodes can be reduced is more than 90%."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compression import CompressionConfig, GraphCompressor
from repro.workloads.netgen import NetgenConfig, netgen_graph, paper_network_configs


@dataclass(frozen=True)
class CompressionRow:
    """One network's before/after line of Table I."""

    network: str
    function_number: int
    edge_number: int
    function_number_after: int
    edge_number_after: int

    @property
    def node_reduction(self) -> float:
        """Fraction of nodes eliminated by compression."""
        if self.function_number == 0:
            return 0.0
        return 1.0 - self.function_number_after / self.function_number


def run_table1(
    configs: list[NetgenConfig] | None = None,
    compression: CompressionConfig | None = None,
) -> list[CompressionRow]:
    """Regenerate Table I over *configs* (paper's five networks by default)."""
    configs = configs if configs is not None else paper_network_configs()
    compressor = GraphCompressor(compression)
    rows: list[CompressionRow] = []
    for index, config in enumerate(configs, start=1):
        graph = netgen_graph(config)
        result = compressor.compress(graph)
        compressed = result.compressed.graph
        rows.append(
            CompressionRow(
                network=f"Network{index}",
                function_number=graph.node_count,
                edge_number=graph.edge_count,
                function_number_after=compressed.node_count,
                edge_number_after=compressed.edge_count,
            )
        )
    return rows
