"""Classic random graph models (topology-robustness workloads).

NETGEN-style graphs (:mod:`repro.workloads.netgen`) are the paper's
workload; these three classics answer the follow-up question every
reviewer asks: *does the pipeline depend on that exact shape?*  The
robustness bench runs all planners across every model.

All generators emit :class:`~repro.graphs.weighted_graph.WeightedGraph`
with seeded weights in configurable ranges, like the rest of the library.
"""

from __future__ import annotations

from repro.graphs.weighted_graph import WeightedGraph
from repro.utils.rng import RandomSource

_WEIGHT_RANGE = (1.0, 10.0)


def erdos_renyi_graph(
    n_nodes: int,
    edge_probability: float,
    seed: int = 0,
    node_weight_range: tuple[float, float] = _WEIGHT_RANGE,
    edge_weight_range: tuple[float, float] = _WEIGHT_RANGE,
) -> WeightedGraph:
    """G(n, p): every pair connected independently with probability p.

    The structureless extreme — no clusters for compression to find.
    """
    if n_nodes < 1:
        raise ValueError(f"n_nodes must be >= 1, got {n_nodes}")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError(f"edge_probability must be in [0, 1], got {edge_probability}")
    rng = RandomSource(seed).spawn("er", n_nodes, edge_probability)
    graph = WeightedGraph()
    for i in range(n_nodes):
        graph.add_node(i, weight=rng.uniform(*node_weight_range))
    for i in range(n_nodes):
        for j in range(i + 1, n_nodes):
            if rng.random() < edge_probability:
                graph.add_edge(i, j, weight=rng.uniform(*edge_weight_range))
    return graph


def barabasi_albert_graph(
    n_nodes: int,
    attachments: int = 2,
    seed: int = 0,
    node_weight_range: tuple[float, float] = _WEIGHT_RANGE,
    edge_weight_range: tuple[float, float] = _WEIGHT_RANGE,
) -> WeightedGraph:
    """Preferential attachment: each new node links to ``attachments``
    existing nodes chosen proportionally to degree.

    Produces the hub-dominated shape of real call graphs' utility
    functions (log, alloc) — the hardest case for balanced partitioners.
    """
    if n_nodes < 2:
        raise ValueError(f"n_nodes must be >= 2, got {n_nodes}")
    if not 1 <= attachments < n_nodes:
        raise ValueError(
            f"attachments must be in [1, n_nodes), got {attachments}"
        )
    rng = RandomSource(seed).spawn("ba", n_nodes, attachments)
    graph = WeightedGraph()
    # Seed clique of `attachments + 1` nodes.
    seed_size = attachments + 1
    for i in range(seed_size):
        graph.add_node(i, weight=rng.uniform(*node_weight_range))
    for i in range(seed_size):
        for j in range(i + 1, seed_size):
            graph.add_edge(i, j, weight=rng.uniform(*edge_weight_range))

    # Repeated-endpoint list implements degree-proportional sampling.
    endpoints: list[int] = []
    for u, v, _ in graph.edges():
        endpoints.extend((u, v))

    for new in range(seed_size, n_nodes):
        graph.add_node(new, weight=rng.uniform(*node_weight_range))
        targets: set[int] = set()
        guard = 0
        while len(targets) < attachments and guard < 100 * attachments:
            guard += 1
            targets.add(rng.choice(endpoints))
        for target in targets:
            graph.add_edge(new, target, weight=rng.uniform(*edge_weight_range))
            endpoints.extend((new, target))
    return graph


def watts_strogatz_graph(
    n_nodes: int,
    ring_neighbors: int = 4,
    rewire_probability: float = 0.1,
    seed: int = 0,
    node_weight_range: tuple[float, float] = _WEIGHT_RANGE,
    edge_weight_range: tuple[float, float] = _WEIGHT_RANGE,
) -> WeightedGraph:
    """Small world: a ring lattice with random rewiring.

    High clustering with short paths — locally clustered like NETGEN but
    without its clean component boundaries.
    """
    if n_nodes < 3:
        raise ValueError(f"n_nodes must be >= 3, got {n_nodes}")
    if ring_neighbors % 2 != 0 or not 2 <= ring_neighbors < n_nodes:
        raise ValueError(
            f"ring_neighbors must be even and in [2, n_nodes), got {ring_neighbors}"
        )
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError(
            f"rewire_probability must be in [0, 1], got {rewire_probability}"
        )
    rng = RandomSource(seed).spawn("ws", n_nodes, ring_neighbors, rewire_probability)
    graph = WeightedGraph()
    for i in range(n_nodes):
        graph.add_node(i, weight=rng.uniform(*node_weight_range))
    half = ring_neighbors // 2
    for i in range(n_nodes):
        for offset in range(1, half + 1):
            j = (i + offset) % n_nodes
            if rng.random() < rewire_probability:
                # Rewire to a uniform non-duplicate target.
                guard = 0
                while guard < 100:
                    guard += 1
                    k = rng.randint(0, n_nodes - 1)
                    if k != i and not graph.has_edge(i, k):
                        j = k
                        break
            if not graph.has_edge(i, j) and i != j:
                graph.add_edge(i, j, weight=rng.uniform(*edge_weight_range))
    return graph
