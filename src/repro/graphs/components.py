"""Connected-component utilities.

Algorithm 1 splits the function data flow graph "based on component
boundaries" before compressing each piece independently; these helpers
provide that split.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.traversal import bfs_order
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def connected_components(graph: WeightedGraph) -> list[set[NodeId]]:
    """Return the connected components as a list of node sets.

    Components are ordered by the insertion order of their first node, so
    the result is deterministic for a deterministically built graph.
    """
    remaining = set(graph.nodes())
    components: list[set[NodeId]] = []
    for node in graph.nodes():
        if node not in remaining:
            continue
        component = set(bfs_order(graph, node))
        remaining -= component
        components.append(component)
    return components


def component_subgraphs(graph: WeightedGraph) -> list[WeightedGraph]:
    """Return each connected component as an induced subgraph."""
    return [graph.subgraph(component) for component in connected_components(graph)]


def is_connected(graph: WeightedGraph) -> bool:
    """Whether the graph has at most one connected component.

    The empty graph is considered connected (there is nothing to separate).
    """
    if graph.node_count == 0:
        return True
    first = next(iter(graph.nodes()))
    return len(bfs_order(graph, first)) == graph.node_count


def largest_component(graph: WeightedGraph) -> set[NodeId]:
    """Return the node set of the largest connected component."""
    components = connected_components(graph)
    if not components:
        return set()
    return max(components, key=len)
