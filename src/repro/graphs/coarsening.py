"""Heavy-edge-matching coarsening (the METIS-style alternative).

The paper compresses with label propagation (Algorithm 1).  The classic
alternative from the multilevel partitioning literature is *heavy edge
matching*: visit nodes in random order, match each unmatched node with
its unmatched neighbor across the heaviest edge, contract all matches at
once, repeat.  Each level roughly halves the graph.

Provided as (a) the coarsening stage of
:mod:`repro.partition.multilevel`, and (b) an ablation comparator for
Algorithm 1 — same interface as the LPA compressor's output
(:class:`~repro.compression.merge.CompressedGraph`), so the planner and
the benches can swap them freely.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.compression.merge import CompressedGraph
from repro.graphs.weighted_graph import WeightedGraph
from repro.utils.rng import RandomSource

NodeId = Hashable


@dataclass
class CoarseningLevel:
    """One matching/contraction level."""

    graph: WeightedGraph
    parent: dict[NodeId, int]
    """Finer-level node -> coarser super-node id."""


def heavy_edge_matching(
    graph: WeightedGraph, rng: RandomSource
) -> dict[NodeId, NodeId]:
    """One round of heavy-edge matching.

    Returns ``{node: partner}`` containing both directions of every
    matched pair; unmatched nodes are absent.  Visit order is seeded
    random (the standard trick to avoid pathological orders).
    """
    matched: dict[NodeId, NodeId] = {}
    for node in rng.shuffled(graph.node_list()):
        if node in matched:
            continue
        best_partner: NodeId | None = None
        best_weight = 0.0
        for neighbor, weight in graph.neighbor_items(node):
            if neighbor in matched:
                continue
            if weight > best_weight:
                best_weight = weight
                best_partner = neighbor
        if best_partner is not None:
            matched[node] = best_partner
            matched[best_partner] = node
    return matched


def coarsen_once(graph: WeightedGraph, rng: RandomSource) -> CoarseningLevel:
    """Contract one round of heavy-edge matches into super-nodes."""
    matching = heavy_edge_matching(graph, rng)
    parent: dict[NodeId, int] = {}
    coarse = WeightedGraph()
    next_id = 0
    for node in graph.nodes():
        if node in parent:
            continue
        partner = matching.get(node)
        members = [node] if partner is None else [node, partner]
        weight = sum(graph.node_weight(m) for m in members)
        coarse.add_node(next_id, weight=weight, size=len(members))
        for member in members:
            parent[member] = next_id
        next_id += 1
    for u, v, weight in graph.edges():
        cu, cv = parent[u], parent[v]
        if cu != cv:
            coarse.add_edge(cu, cv, weight=weight)  # parallels accumulate
    return CoarseningLevel(graph=coarse, parent=parent)


def coarsen_graph(
    graph: WeightedGraph,
    target_nodes: int = 32,
    max_levels: int = 20,
    seed: int = 7,
) -> list[CoarseningLevel]:
    """Coarsen until *target_nodes* or the matching stalls.

    Returns the level list, finest first.  A level shrinking the graph by
    less than 10 % terminates the loop (matching has stalled — typical on
    star-like remainders).
    """
    if target_nodes < 1:
        raise ValueError(f"target_nodes must be >= 1, got {target_nodes}")
    rng = RandomSource(seed).spawn("coarsen", graph.node_count)
    levels: list[CoarseningLevel] = []
    current = graph
    for _ in range(max_levels):
        if current.node_count <= target_nodes:
            break
        level = coarsen_once(current, rng)
        if level.graph.node_count > 0.9 * current.node_count:
            break
        levels.append(level)
        current = level.graph
    return levels


def coarsening_as_compression(
    graph: WeightedGraph, target_nodes: int = 32, seed: int = 7
) -> CompressedGraph:
    """Package multilevel coarsening as a :class:`CompressedGraph`.

    Gives heavy-edge matching the same output type as Algorithm 1's
    compressor, so ``GraphCompressor`` consumers (the planner, Table I's
    harness) can ablate LPA against it directly.
    """
    levels = coarsen_graph(graph, target_nodes=target_nodes, seed=seed)
    # Compose parent maps down to the coarsest level.
    clusters_of: dict[NodeId, set[NodeId]] = {n: {n} for n in graph.nodes()}
    mapping: dict[NodeId, NodeId] = {n: n for n in graph.nodes()}
    for level in levels:
        new_clusters: dict[NodeId, set[NodeId]] = {}
        for original, current in mapping.items():
            coarse = level.parent[current]
            new_clusters.setdefault(coarse, set()).add(original)
            mapping[original] = coarse
        clusters_of = new_clusters

    final = levels[-1].graph if levels else graph.copy()
    ordered_ids = final.node_list()
    id_index = {cid: i for i, cid in enumerate(ordered_ids)}

    compressed = WeightedGraph()
    clusters: list[set[NodeId]] = [set() for _ in ordered_ids]
    for cid in ordered_ids:
        compressed.add_node(
            id_index[cid], weight=final.node_weight(cid), size=len(clusters_of.get(cid, {cid}))
        )
        clusters[id_index[cid]] = set(clusters_of.get(cid, {cid}))
    for u, v, weight in final.edges():
        compressed.add_edge(id_index[u], id_index[v], weight=weight)

    return CompressedGraph(
        graph=compressed,
        clusters=clusters,
        original_node_count=graph.node_count,
        original_edge_count=graph.edge_count,
    )
