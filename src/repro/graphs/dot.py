"""Graphviz DOT export for graphs, clusterings and cuts.

No drawing dependencies: these helpers emit DOT text anyone can feed to
``dot -Tsvg``.  Partitions render as colored node groups, so a cut or a
compression clustering is visually inspectable in seconds.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable

_PALETTE = (
    "#a6cee3",
    "#b2df8a",
    "#fb9a99",
    "#fdbf6f",
    "#cab2d6",
    "#ffff99",
    "#1f78b4",
    "#33a02c",
)


def _quote(value: object) -> str:
    text = str(value).replace('"', '\\"')
    return f'"{text}"'


def graph_to_dot(
    graph: WeightedGraph,
    name: str = "G",
    groups: Mapping[NodeId, int] | None = None,
    max_label_weight_digits: int = 1,
) -> str:
    """Render *graph* as undirected DOT.

    *groups* (node -> group index) colors nodes by group — pass a cut's
    membership or a compression's cluster assignment.  Node labels show
    the computation weight, edge labels the communication weight.
    """
    lines = [f"graph {_quote(name)} {{", "  node [style=filled];"]
    for node in graph.nodes():
        attributes = [
            f"label={_quote(f'{node} ({graph.node_weight(node):.{max_label_weight_digits}f})')}"
        ]
        if groups is not None and node in groups:
            color = _PALETTE[groups[node] % len(_PALETTE)]
            attributes.append(f'fillcolor="{color}"')
        else:
            attributes.append('fillcolor="#eeeeee"')
        lines.append(f"  {_quote(node)} [{', '.join(attributes)}];")
    for u, v, weight in graph.edges():
        style = ""
        if groups is not None and groups.get(u) != groups.get(v):
            style = ", color=red, penwidth=2.0"
        lines.append(
            f"  {_quote(u)} -- {_quote(v)} "
            f"[label={_quote(f'{weight:.{max_label_weight_digits}f}')}{style}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def cut_to_dot(
    graph: WeightedGraph, part_one: Iterable[NodeId], name: str = "cut"
) -> str:
    """Render a bipartition: part one colored, crossing edges red."""
    inside = set(part_one)
    groups = {node: (0 if node in inside else 1) for node in graph.nodes()}
    return graph_to_dot(graph, name=name, groups=groups)


def clustering_to_dot(
    graph: WeightedGraph,
    clusters: Iterable[Iterable[NodeId]],
    name: str = "clusters",
) -> str:
    """Render a clustering (e.g. a compression's clusters) by color."""
    groups: dict[NodeId, int] = {}
    for index, cluster in enumerate(clusters):
        for node in cluster:
            groups[node] = index
    return graph_to_dot(graph, name=name, groups=groups)
