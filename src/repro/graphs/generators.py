"""Deterministic small-graph generators.

These are structural building blocks used by tests, examples and the
higher-level workload generators in :mod:`repro.workloads`.  Every
generator takes an explicit seed (where randomness is involved) and
returns a fresh :class:`~repro.graphs.weighted_graph.WeightedGraph`.
"""

from __future__ import annotations

from repro.graphs.weighted_graph import WeightedGraph
from repro.utils.rng import RandomSource


def path_graph(n: int, node_weight: float = 1.0, edge_weight: float = 1.0) -> WeightedGraph:
    """Return a path ``0 - 1 - ... - (n-1)``."""
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    graph = WeightedGraph()
    for i in range(n):
        graph.add_node(i, weight=node_weight)
    for i in range(n - 1):
        graph.add_edge(i, i + 1, weight=edge_weight)
    return graph


def star_graph(n_leaves: int, node_weight: float = 1.0, edge_weight: float = 1.0) -> WeightedGraph:
    """Return a star with center ``0`` and leaves ``1..n_leaves``."""
    if n_leaves < 1:
        raise ValueError(f"n_leaves must be >= 1, got {n_leaves}")
    graph = WeightedGraph()
    graph.add_node(0, weight=node_weight)
    for i in range(1, n_leaves + 1):
        graph.add_node(i, weight=node_weight)
        graph.add_edge(0, i, weight=edge_weight)
    return graph


def grid_graph(rows: int, cols: int, node_weight: float = 1.0, edge_weight: float = 1.0) -> WeightedGraph:
    """Return a rows x cols grid; node ids are ``(row, col)`` tuples."""
    if rows <= 0 or cols <= 0:
        raise ValueError(f"rows and cols must be > 0, got {rows}x{cols}")
    graph = WeightedGraph()
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c), weight=node_weight)
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1), weight=edge_weight)
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c), weight=edge_weight)
    return graph


def two_cluster_graph(
    cluster_size: int,
    intra_weight: float = 10.0,
    bridge_weight: float = 1.0,
    node_weight: float = 1.0,
) -> WeightedGraph:
    """Return two dense clusters joined by a single light bridge edge.

    The minimum cut is unambiguously the bridge, which makes this graph
    the canonical fixture for cut-algorithm tests: every correct bisection
    method must separate the clusters.
    """
    if cluster_size < 2:
        raise ValueError(f"cluster_size must be >= 2, got {cluster_size}")
    graph = WeightedGraph()
    total = 2 * cluster_size
    for i in range(total):
        graph.add_node(i, weight=node_weight)
    for base in (0, cluster_size):
        members = range(base, base + cluster_size)
        for i in members:
            for j in members:
                if i < j:
                    graph.add_edge(i, j, weight=intra_weight)
    graph.add_edge(cluster_size - 1, cluster_size, weight=bridge_weight)
    return graph


def random_connected_graph(
    n_nodes: int,
    n_edges: int,
    seed: int = 0,
    node_weight_range: tuple[float, float] = (1.0, 10.0),
    edge_weight_range: tuple[float, float] = (1.0, 10.0),
) -> WeightedGraph:
    """Return a random connected graph with exact node and edge counts.

    A random spanning tree guarantees connectivity; remaining edges are
    sampled uniformly from the non-edges.  ``n_edges`` must lie between
    ``n_nodes - 1`` and ``n_nodes * (n_nodes - 1) / 2``.
    """
    if n_nodes <= 0:
        raise ValueError(f"n_nodes must be > 0, got {n_nodes}")
    min_edges = max(0, n_nodes - 1)
    max_edges = n_nodes * (n_nodes - 1) // 2
    if not min_edges <= n_edges <= max_edges:
        raise ValueError(
            f"n_edges must be in [{min_edges}, {max_edges}] for {n_nodes} nodes, got {n_edges}"
        )
    rng = RandomSource(seed)
    graph = WeightedGraph()
    for i in range(n_nodes):
        graph.add_node(i, weight=rng.uniform(*node_weight_range))

    # Random spanning tree: attach each new node to a random existing one.
    order = rng.shuffled(range(n_nodes))
    for position in range(1, n_nodes):
        u = order[position]
        v = order[rng.randint(0, position - 1)]
        graph.add_edge(u, v, weight=rng.uniform(*edge_weight_range))

    # Top up with random extra edges until the requested count is reached.
    attempts_left = 50 * max(1, n_edges)
    while graph.edge_count < n_edges and attempts_left > 0:
        attempts_left -= 1
        u = rng.randint(0, n_nodes - 1)
        v = rng.randint(0, n_nodes - 1)
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v, weight=rng.uniform(*edge_weight_range))
    if graph.edge_count < n_edges:
        # Dense regime: fall back to a deterministic scan of the non-edges.
        for u in range(n_nodes):
            for v in range(u + 1, n_nodes):
                if graph.edge_count >= n_edges:
                    break
                if not graph.has_edge(u, v):
                    graph.add_edge(u, v, weight=rng.uniform(*edge_weight_range))
            if graph.edge_count >= n_edges:
                break
    return graph
