"""Weighted undirected graph substrate.

This package implements the function-data-flow-graph substrate that every
other part of the library builds on: the paper (Section II) models a mobile
application as a weighted undirected graph whose node weights are amounts of
computation and whose edge weights are amounts of communication.
"""

from repro.graphs.csr import CSRGraph, as_csr
from repro.graphs.dot import clustering_to_dot, cut_to_dot, graph_to_dot
from repro.graphs.components import (
    component_subgraphs,
    connected_components,
    is_connected,
    largest_component,
)
from repro.graphs.generators import (
    grid_graph,
    path_graph,
    random_connected_graph,
    star_graph,
    two_cluster_graph,
)
from repro.graphs.coarsening import (
    CoarseningLevel,
    coarsen_graph,
    coarsen_once,
    coarsening_as_compression,
    heavy_edge_matching,
)
from repro.graphs.io import (
    graph_from_dict,
    graph_from_edge_list,
    graph_to_dict,
    load_graph_json,
    save_graph_json,
)
from repro.graphs.laplacian import (
    adjacency_matrix,
    degree_vector,
    laplacian_matrix,
    normalized_laplacian_matrix,
    sparse_laplacian,
)
from repro.graphs.metrics import (
    WeightSummary,
    average_clustering,
    average_degree,
    clustering_coefficient,
    conductance,
    degree_histogram,
    density,
    edge_weight_summary,
    node_weight_summary,
    volume,
)
from repro.graphs.spanning import (
    SpanningForest,
    backbone_fraction,
    maximum_spanning_forest,
    minimum_spanning_forest,
)
from repro.graphs.random_models import (
    barabasi_albert_graph,
    erdos_renyi_graph,
    watts_strogatz_graph,
)
from repro.graphs.paths import (
    dijkstra_distances,
    shortest_path,
    weighted_farthest_node,
)
from repro.graphs.traversal import bfs_order, bfs_tree, dfs_order, eccentricity, farthest_node
from repro.graphs.validation import check_graph_invariants
from repro.graphs.weighted_graph import WeightedGraph

__all__ = [
    "WeightedGraph",
    "CSRGraph",
    "as_csr",
    "connected_components",
    "component_subgraphs",
    "is_connected",
    "largest_component",
    "bfs_order",
    "bfs_tree",
    "dfs_order",
    "eccentricity",
    "farthest_node",
    "adjacency_matrix",
    "degree_vector",
    "laplacian_matrix",
    "normalized_laplacian_matrix",
    "sparse_laplacian",
    "graph_to_dict",
    "graph_from_dict",
    "graph_from_edge_list",
    "save_graph_json",
    "load_graph_json",
    "check_graph_invariants",
    "random_connected_graph",
    "path_graph",
    "star_graph",
    "grid_graph",
    "two_cluster_graph",
    "coarsen_graph",
    "coarsen_once",
    "coarsening_as_compression",
    "heavy_edge_matching",
    "CoarseningLevel",
    "density",
    "average_degree",
    "degree_histogram",
    "WeightSummary",
    "edge_weight_summary",
    "node_weight_summary",
    "clustering_coefficient",
    "average_clustering",
    "volume",
    "conductance",
    "dijkstra_distances",
    "shortest_path",
    "weighted_farthest_node",
    "graph_to_dot",
    "cut_to_dot",
    "clustering_to_dot",
    "erdos_renyi_graph",
    "barabasi_albert_graph",
    "watts_strogatz_graph",
    "maximum_spanning_forest",
    "minimum_spanning_forest",
    "backbone_fraction",
    "SpanningForest",
]
