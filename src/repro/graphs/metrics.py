"""Structural metrics of weighted graphs.

Used by the workload generators' calibration tests (does a NETGEN graph
actually look like a function data flow graph?), by the CLI's verbose
output, and by the conductance/Cheeger machinery in
:mod:`repro.spectral.cheeger`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable, Iterable

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def density(graph: WeightedGraph) -> float:
    """Edges present / edges possible (0 for graphs with < 2 nodes)."""
    n = graph.node_count
    if n < 2:
        return 0.0
    return graph.edge_count / (n * (n - 1) / 2)


def average_degree(graph: WeightedGraph) -> float:
    """Mean number of incident edges per node."""
    if graph.node_count == 0:
        return 0.0
    return 2.0 * graph.edge_count / graph.node_count


def degree_histogram(graph: WeightedGraph) -> dict[int, int]:
    """``{degree: node count}`` over all nodes."""
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        degree = graph.degree(node)
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


@dataclass(frozen=True)
class WeightSummary:
    """Five-number-ish summary of a weight population."""

    count: int
    total: float
    minimum: float
    maximum: float
    mean: float
    median: float

    @staticmethod
    def of(values: Iterable[float]) -> "WeightSummary":
        """Summarise *values* (empty input gives an all-zero summary)."""
        ordered = sorted(values)
        if not ordered:
            return WeightSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        n = len(ordered)
        middle = ordered[n // 2] if n % 2 else (ordered[n // 2 - 1] + ordered[n // 2]) / 2
        return WeightSummary(
            count=n,
            total=sum(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            mean=sum(ordered) / n,
            median=middle,
        )


def edge_weight_summary(graph: WeightedGraph) -> WeightSummary:
    """Summary of the communication-weight distribution."""
    return WeightSummary.of(w for _, _, w in graph.edges())


def node_weight_summary(graph: WeightedGraph) -> WeightSummary:
    """Summary of the computation-weight distribution."""
    return WeightSummary.of(graph.node_weight(n) for n in graph.nodes())


def clustering_coefficient(graph: WeightedGraph, node: NodeId) -> float:
    """Unweighted local clustering coefficient of *node*.

    Fraction of the node's neighbor pairs that are themselves connected;
    0 for degree < 2.
    """
    neighbors = list(graph.neighbors(node))
    k = len(neighbors)
    if k < 2:
        return 0.0
    links = 0
    for i in range(k):
        for j in range(i + 1, k):
            if graph.has_edge(neighbors[i], neighbors[j]):
                links += 1
    return 2.0 * links / (k * (k - 1))


def average_clustering(graph: WeightedGraph) -> float:
    """Mean local clustering coefficient over all nodes."""
    if graph.node_count == 0:
        return 0.0
    return sum(clustering_coefficient(graph, n) for n in graph.nodes()) / graph.node_count


def volume(graph: WeightedGraph, nodes: Iterable[NodeId]) -> float:
    """Sum of weighted degrees over *nodes* (the conductance denominator)."""
    return sum(graph.weighted_degree(n) for n in nodes)


def conductance(graph: WeightedGraph, part: Iterable[NodeId]) -> float:
    """``phi(S) = cut(S) / min(vol(S), vol(V-S))``.

    Raises ``ValueError`` for an empty side (conductance is undefined);
    returns 0.0 when both sides have zero volume (edgeless graphs).
    """
    inside = set(part)
    outside = set(graph.nodes()) - inside
    if not inside or not outside:
        raise ValueError("conductance needs a proper bipartition")
    cut = graph.cut_weight(inside)
    denominator = min(volume(graph, inside), volume(graph, outside))
    if denominator == 0:
        return 0.0
    return cut / denominator
