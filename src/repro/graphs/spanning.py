"""Spanning trees: the coupling backbone of a function graph.

The *maximum* spanning tree of a communication graph keeps, for every
pair of functions, the strongest chain of couplings connecting them — the
skeleton an analyst inspects to understand an application's data-flow
structure (and a useful preprocessing view: every edge off the backbone
is dominated by a stronger path).  Kruskal's algorithm with union-find;
the minimum variant comes free by negation.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


class _UnionFind:
    def __init__(self, items) -> None:
        self._parent = {item: item for item in items}
        self._size = {item: 1 for item in self._parent}

    def find(self, item: NodeId) -> NodeId:
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: NodeId, b: NodeId) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        return True


@dataclass
class SpanningForest:
    """A maximum (or minimum) spanning forest."""

    edges: list[tuple[NodeId, NodeId, float]]
    total_weight: float
    tree_count: int

    def as_graph(self, original: WeightedGraph) -> WeightedGraph:
        """The forest as a graph (node weights copied from *original*)."""
        forest = WeightedGraph()
        for node in original.nodes():
            forest.add_node(node, weight=original.node_weight(node))
        for u, v, w in self.edges:
            forest.add_edge(u, v, weight=w)
        return forest


def maximum_spanning_forest(graph: WeightedGraph) -> SpanningForest:
    """Kruskal's maximum spanning forest (one tree per component).

    Deterministic: ties in weight break by edge insertion order.
    """
    uf = _UnionFind(graph.nodes())
    chosen: list[tuple[NodeId, NodeId, float]] = []
    for u, v, w in sorted(
        graph.edges(), key=lambda edge: -edge[2]
    ):
        if uf.union(u, v):
            chosen.append((u, v, w))
    roots = {uf.find(node) for node in graph.nodes()}
    return SpanningForest(
        edges=chosen,
        total_weight=sum(w for _, _, w in chosen),
        tree_count=len(roots),
    )


def minimum_spanning_forest(graph: WeightedGraph) -> SpanningForest:
    """Kruskal's minimum spanning forest."""
    uf = _UnionFind(graph.nodes())
    chosen: list[tuple[NodeId, NodeId, float]] = []
    for u, v, w in sorted(graph.edges(), key=lambda edge: edge[2]):
        if uf.union(u, v):
            chosen.append((u, v, w))
    roots = {uf.find(node) for node in graph.nodes()}
    return SpanningForest(
        edges=chosen,
        total_weight=sum(w for _, _, w in chosen),
        tree_count=len(roots),
    )


def backbone_fraction(graph: WeightedGraph) -> float:
    """Share of total communication living on the coupling backbone.

    High values (NETGEN workloads sit around 0.5-0.7) mean the traffic is
    tree-like — few strong chains carry most of the data — which is the
    regime where compression and cheap cuts both work; values near
    ``(n-1)/m`` mean traffic is spread evenly and no cut is cheap.
    """
    total = graph.total_edge_weight()
    if total == 0.0:
        return 0.0
    return maximum_spanning_forest(graph).total_weight / total
