"""Structural invariant checks used by tests and the workload generators."""

from __future__ import annotations

from repro.graphs.weighted_graph import WeightedGraph


def check_graph_invariants(graph: WeightedGraph) -> None:
    """Raise ``AssertionError`` if *graph* violates a structural invariant.

    Checks symmetry of the adjacency, absence of self-loops, strictly
    positive edge weights and non-negative node weights.  Intended for
    test suites and generator post-conditions, hence assertions rather
    than ``ValueError``.
    """
    for node in graph.nodes():
        assert graph.node_weight(node) >= 0, f"negative node weight at {node!r}"
        for neighbor, weight in graph.neighbor_items(node):
            assert neighbor != node, f"self-loop at {node!r}"
            assert weight > 0, f"non-positive edge weight on ({node!r}, {neighbor!r})"
            assert graph.has_edge(neighbor, node), (
                f"asymmetric adjacency: ({node!r}, {neighbor!r}) present, "
                f"({neighbor!r}, {node!r}) missing"
            )
            assert graph.edge_weight(neighbor, node) == weight, (
                f"asymmetric weight on ({node!r}, {neighbor!r})"
            )
