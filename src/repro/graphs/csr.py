"""Immutable array-graph (CSR) fast path over :class:`WeightedGraph`.

The dict-of-dict :class:`~repro.graphs.weighted_graph.WeightedGraph` is
the right structure for *building* and *mutating* graphs (compression
merges, workload generation), but every hot read path — Laplacian
assembly, label propagation's neighbor scans, cut evaluation — pays
Python-level hashing per edge visit.  :class:`CSRGraph` freezes a
weighted graph into four numpy arrays in compressed-sparse-row layout:

* ``indptr``  — ``int64[n + 1]``; node ``i``'s incident edges occupy the
  half-open slice ``indptr[i]:indptr[i + 1]``;
* ``indices`` — ``int64[2m]``; the neighbor *index* of each incidence,
  in the adjacency-dict insertion order of the source graph (so array
  traversals visit neighbors in exactly the order dict traversals do);
* ``edge_weight`` — ``float64[2m]``; the communication weight aligned
  with ``indices``;
* ``node_weight`` — ``float64[n]``; the computation weight per node.

The node *order* (index -> original node id) defaults to the graph's
insertion order, matching ``WeightedGraph.node_list()`` — eigenvector
entries, label arrays and part indices all line up without translation.

A ``CSRGraph`` is a snapshot: mutating the source graph afterwards does
not invalidate it (nothing is shared), and it deliberately exposes a
read-only subset of the ``WeightedGraph`` API (``node_count``,
``node_list``, ``has_node``, ``cut_weight``, ...) so the spectral stack
can accept either representation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence

import numpy as np
from scipy import sparse

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


class CSRGraph:
    """Immutable int-indexed array view of a weighted undirected graph.

    >>> g = WeightedGraph()
    >>> g.add_node("a", weight=2.0); g.add_node("b"); g.add_node("c")
    >>> g.add_edge("a", "b", weight=3.0); g.add_edge("b", "c", weight=1.0)
    >>> csr = CSRGraph.from_graph(g)
    >>> csr.node_count, csr.edge_count
    (3, 2)
    >>> csr.weighted_degrees().tolist()
    [3.0, 4.0, 1.0]
    """

    __slots__ = (
        "nodes",
        "index",
        "indptr",
        "indices",
        "edge_weight",
        "node_weight",
        "_signature",
    )

    def __init__(
        self,
        nodes: list[NodeId],
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_weight: np.ndarray,
        node_weight: np.ndarray,
    ) -> None:
        self.nodes: list[NodeId] = nodes
        self.index: dict[NodeId, int] = {node: i for i, node in enumerate(nodes)}
        self.indptr = indptr
        self.indices = indices
        self.edge_weight = edge_weight
        self.node_weight = node_weight
        self._signature: str | None = None
        for array in (indptr, indices, edge_weight, node_weight):
            array.setflags(write=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(
        cls, graph: WeightedGraph, order: Sequence[NodeId] | None = None
    ) -> "CSRGraph":
        """Freeze *graph* into CSR arrays under the given node *order*.

        The default order is the graph's insertion order; an explicit
        order must cover every node exactly once.  Per-node incidence
        lists preserve the adjacency-dict insertion order, so any
        traversal over the arrays is bit-for-bit reproducible against
        the dict path.
        """
        nodes = list(order) if order is not None else graph.node_list()
        if len(set(nodes)) != len(nodes):
            raise ValueError("node order contains duplicates")
        if len(nodes) != graph.node_count:
            raise ValueError("node order must cover every node exactly once")
        index: dict[NodeId, int] = {}
        for position, node in enumerate(nodes):
            if not graph.has_node(node):
                raise KeyError(f"node {node!r} does not exist")
            index[node] = position

        n = len(nodes)
        indptr = np.zeros(n + 1, dtype=np.int64)
        neighbor_ids: list[int] = []
        weights: list[float] = []
        for position, node in enumerate(nodes):
            for neighbor, weight in graph.neighbor_items(node):
                neighbor_ids.append(index[neighbor])
                weights.append(weight)
            indptr[position + 1] = len(neighbor_ids)
        return cls(
            nodes=nodes,
            indptr=indptr,
            indices=np.asarray(neighbor_ids, dtype=np.int64),
            edge_weight=np.asarray(weights, dtype=np.float64),
            node_weight=np.array(
                [graph.node_weight(node) for node in nodes], dtype=np.float64
            ),
        )

    # ------------------------------------------------------------------
    # WeightedGraph-compatible read API
    # ------------------------------------------------------------------
    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges (each incidence stored twice)."""
        return int(self.indices.shape[0]) // 2

    def node_list(self) -> list[NodeId]:
        return list(self.nodes)

    def has_node(self, node: NodeId) -> bool:
        return node in self.index

    def neighbor_items(self, node: NodeId) -> Iterator[tuple[NodeId, float]]:
        """Iterate ``(neighbor, weight)`` pairs, dict-insertion order."""
        i = self.index[node]
        start, end = int(self.indptr[i]), int(self.indptr[i + 1])
        for k in range(start, end):
            yield self.nodes[self.indices[k]], float(self.edge_weight[k])

    def cut_weight(self, part: Iterable[NodeId]) -> float:
        """Weight of the cut separating *part* from the rest (formula (8))."""
        mask = np.zeros(self.node_count, dtype=bool)
        for node in part:
            mask[self.index[node]] = True
        crossing = mask[self.incidence_rows()] & ~mask[self.indices]
        return float(self.edge_weight[crossing].sum())

    def __len__(self) -> int:
        return self.node_count

    def __contains__(self, node: NodeId) -> bool:
        return node in self.index

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CSRGraph(nodes={self.node_count}, edges={self.edge_count})"

    # ------------------------------------------------------------------
    # Array derivations
    # ------------------------------------------------------------------
    def degrees(self) -> np.ndarray:
        """Unweighted degree per node (``int64[n]``)."""
        return np.diff(self.indptr)

    def incidence_rows(self) -> np.ndarray:
        """Source-node index of every incidence (``int64[2m]``).

        ``incidence_rows()[k]`` is the node whose incidence slice contains
        position ``k`` — the row array pairing with :attr:`indices` /
        :attr:`edge_weight` that every scatter/gather kernel needs.
        """
        return np.repeat(np.arange(self.node_count), np.diff(self.indptr))

    def weighted_degrees(self) -> np.ndarray:
        """Weighted degree per node — the Laplacian diagonal."""
        return np.bincount(
            self.incidence_rows(), weights=self.edge_weight, minlength=self.node_count
        )

    def adjacency_matrix(self) -> np.ndarray:
        """Dense weighted adjacency ``A`` aligned with :attr:`nodes`."""
        n = self.node_count
        matrix = np.zeros((n, n), dtype=float)
        matrix[self.incidence_rows(), self.indices] = self.edge_weight
        return matrix

    def laplacian_matrix(self) -> np.ndarray:
        """Dense combinatorial Laplacian ``L = D - A``."""
        adjacency = self.adjacency_matrix()
        return np.diag(adjacency.sum(axis=1)) - adjacency

    def sparse_laplacian(self) -> sparse.csr_matrix:
        """Sparse CSR Laplacian assembled directly from the arrays."""
        n = self.node_count
        off_diagonal = sparse.csr_matrix(
            (-self.edge_weight, self.indices.copy(), self.indptr.copy()),
            shape=(n, n),
            dtype=np.float64,
        )
        return (off_diagonal + sparse.diags(self.weighted_degrees(), format="csr")).tocsr()

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def to_weighted_graph(self) -> WeightedGraph:
        """Thaw the snapshot back into a :class:`WeightedGraph`.

        The reconstruction is *order-exact*: node insertion order matches
        :attr:`nodes` and every per-node adjacency dict is populated in
        incidence order — which :meth:`from_graph` recorded as the source
        graph's adjacency-dict insertion order.  Replaying ``add_edge``
        calls cannot achieve this (an edge insert writes both endpoint
        dicts at once, interleaving their orders), so the adjacency map is
        rebuilt directly.  Deterministic consumers (label propagation,
        traversals) therefore see the identical iteration order on the
        thawed graph — the property the zero-copy process transfer relies
        on for bit-identical plans.
        """
        graph = WeightedGraph()
        for i, node in enumerate(self.nodes):
            graph.add_node(node, weight=float(self.node_weight[i]))
        adjacency = graph._adjacency
        nodes = self.nodes
        indptr = self.indptr
        indices = self.indices
        edge_weight = self.edge_weight
        for i, node in enumerate(nodes):
            row = adjacency[node]
            for k in range(int(indptr[i]), int(indptr[i + 1])):
                row[nodes[indices[k]]] = float(edge_weight[k])
        return graph

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def structure_signature(self) -> str:
        """Cheap relabelling-invariant signature of the weighted structure.

        The array sibling of
        :func:`repro.service.fingerprint.structural_fingerprint`: a
        SHA-256 over the sorted degree, node-weight and edge-weight
        multisets.  It only has to *discriminate* — it keys the Fiedler
        warm-start cache, where a collision merely seeds an eigensolve
        with an unhelpful start vector (correctness is unaffected) —
        so the full Weisfeiler-Leman refinement is skipped in favour of
        O(n log n + m log m) numpy sorts.
        """
        if self._signature is None:
            import hashlib

            h = hashlib.sha256()
            h.update(np.int64(self.node_count).tobytes())
            h.update(np.sort(self.degrees()).tobytes())
            h.update(np.sort(self.node_weight).tobytes())
            h.update(np.sort(self.edge_weight).tobytes())
            self._signature = h.hexdigest()
        return self._signature


def as_csr(
    graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId] | None = None
) -> CSRGraph:
    """Return *graph* as a :class:`CSRGraph`, freezing it if necessary.

    An existing ``CSRGraph`` is passed through unchanged when *order* is
    ``None`` or already matches; a differing order triggers an error —
    re-freezing an immutable snapshot under a new order indicates the
    caller lost track of which representation it holds.
    """
    if isinstance(graph, CSRGraph):
        if order is not None and list(order) != graph.nodes:
            raise ValueError("cannot reorder an existing CSRGraph")
        return graph
    return CSRGraph.from_graph(graph, order)


__all__ = ["CSRGraph", "as_csr"]
