"""Graph serialization (JSON dict form and edge lists).

Experiment workloads are cached to disk between harness runs; the format
round-trips node weights, edge weights and node metadata exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterable
from typing import Any

from repro.graphs.weighted_graph import WeightedGraph


def graph_to_dict(graph: WeightedGraph) -> dict[str, Any]:
    """Return a JSON-serialisable dict describing *graph*.

    Node ids are stored as given; callers who need JSON round-tripping
    should use string or int node ids.
    """
    return {
        "nodes": [
            {"id": node, "weight": graph.node_weight(node), "data": graph.node_data(node)}
            for node in graph.nodes()
        ],
        "edges": [{"u": u, "v": v, "weight": w} for u, v, w in graph.edges()],
    }


def graph_from_dict(payload: dict[str, Any]) -> WeightedGraph:
    """Rebuild a graph from the dict produced by :func:`graph_to_dict`."""
    graph = WeightedGraph()
    for entry in payload.get("nodes", []):
        graph.add_node(entry["id"], weight=entry.get("weight", 1.0), **entry.get("data", {}))
    for entry in payload.get("edges", []):
        graph.add_edge(entry["u"], entry["v"], weight=entry.get("weight", 1.0))
    return graph


def graph_from_edge_list(
    lines: Iterable[str], default_node_weight: float = 1.0
) -> WeightedGraph:
    """Parse a whitespace-separated ``u v weight`` edge list.

    Blank lines and lines starting with ``#`` are ignored.  Node ids are
    kept as strings.
    """
    edges: list[tuple[str, str, float]] = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        if len(parts) == 2:
            u, v = parts
            weight = 1.0
        elif len(parts) == 3:
            u, v = parts[0], parts[1]
            weight = float(parts[2])
        else:
            raise ValueError(f"malformed edge list line: {raw!r}")
        edges.append((u, v, weight))
    return WeightedGraph.from_edges(edges, default_node_weight=default_node_weight)


def save_graph_json(graph: WeightedGraph, path: str | Path) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2, sort_keys=False))


def load_graph_json(path: str | Path) -> WeightedGraph:
    """Load a graph previously written by :func:`save_graph_json`."""
    return graph_from_dict(json.loads(Path(path).read_text()))
