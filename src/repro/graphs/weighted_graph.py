"""The core weighted undirected graph data structure.

Nodes carry a non-negative *computation weight* and arbitrary metadata;
edges carry a positive *communication weight*.  This mirrors the function
data flow graph of Section II of the paper: ``w_j^i`` is the node weight and
``s(v_j^i, v_l^i)`` is the edge weight.

The structure is a plain adjacency map (dict-of-dict) which keeps neighbor
iteration, edge lookup and node/edge mutation O(1) amortised — the label
propagation and merge passes of Algorithm 1 are linear scans over this
representation.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Any

NodeId = Hashable


class WeightedGraph:
    """Undirected graph with weighted nodes and weighted edges.

    >>> g = WeightedGraph()
    >>> g.add_node("f1", weight=4.0)
    >>> g.add_node("f2", weight=2.0)
    >>> g.add_edge("f1", "f2", weight=10.0)
    >>> g.edge_weight("f2", "f1")
    10.0
    >>> g.total_node_weight()
    6.0
    """

    def __init__(self) -> None:
        self._node_weights: dict[NodeId, float] = {}
        self._node_data: dict[NodeId, dict[str, Any]] = {}
        self._adjacency: dict[NodeId, dict[NodeId, float]] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[NodeId, NodeId, float]],
        node_weights: Mapping[NodeId, float] | None = None,
        default_node_weight: float = 1.0,
    ) -> "WeightedGraph":
        """Build a graph from ``(u, v, weight)`` triples.

        Nodes referenced by edges are created on demand; explicit weights
        may be supplied via *node_weights*.
        """
        graph = cls()
        weights = dict(node_weights or {})
        for u, v, w in edges:
            for node in (u, v):
                if not graph.has_node(node):
                    graph.add_node(node, weight=weights.pop(node, default_node_weight))
            graph.add_edge(u, v, weight=w)
        for node, weight in weights.items():
            if graph.has_node(node):
                graph.set_node_weight(node, weight)
            else:
                graph.add_node(node, weight=weight)
        return graph

    # ------------------------------------------------------------------
    # Node operations
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId, weight: float = 1.0, **data: Any) -> None:
        """Add *node* with the given computation weight and metadata.

        Adding an existing node raises ``ValueError`` — silently resetting a
        node's adjacency would corrupt compression bookkeeping.
        """
        if node in self._adjacency:
            raise ValueError(f"node {node!r} already exists")
        if weight < 0:
            raise ValueError(f"node weight must be >= 0, got {weight!r}")
        self._node_weights[node] = float(weight)
        self._node_data[node] = dict(data)
        self._adjacency[node] = {}

    def remove_node(self, node: NodeId) -> None:
        """Remove *node* and all incident edges."""
        self._require_node(node)
        for neighbor in list(self._adjacency[node]):
            del self._adjacency[neighbor][node]
        del self._adjacency[node]
        del self._node_weights[node]
        del self._node_data[node]

    def has_node(self, node: NodeId) -> bool:
        """Whether *node* is present."""
        return node in self._adjacency

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over node ids (insertion order)."""
        return iter(self._adjacency)

    def node_list(self) -> list[NodeId]:
        """Return node ids as a list (insertion order)."""
        return list(self._adjacency)

    def node_weight(self, node: NodeId) -> float:
        """Return the computation weight of *node*."""
        self._require_node(node)
        return self._node_weights[node]

    def set_node_weight(self, node: NodeId, weight: float) -> None:
        """Replace the computation weight of *node*."""
        self._require_node(node)
        if weight < 0:
            raise ValueError(f"node weight must be >= 0, got {weight!r}")
        self._node_weights[node] = float(weight)

    def node_data(self, node: NodeId) -> dict[str, Any]:
        """Return the mutable metadata dict attached to *node*."""
        self._require_node(node)
        return self._node_data[node]

    # ------------------------------------------------------------------
    # Edge operations
    # ------------------------------------------------------------------
    def add_edge(self, u: NodeId, v: NodeId, weight: float = 1.0) -> None:
        """Add an undirected edge; both endpoints must already exist.

        Self-loops are rejected (a function does not transmit to itself);
        adding a parallel edge *accumulates* its weight, matching the data
        flow semantics where multiple call sites between the same pair of
        functions add up their traffic.
        """
        self._require_node(u)
        self._require_node(v)
        if u == v:
            raise ValueError(f"self-loop on {u!r} is not allowed")
        if weight <= 0:
            raise ValueError(f"edge weight must be > 0, got {weight!r}")
        new_weight = self._adjacency[u].get(v, 0.0) + float(weight)
        self._adjacency[u][v] = new_weight
        self._adjacency[v][u] = new_weight

    def set_edge_weight(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Overwrite (rather than accumulate) the weight of edge (u, v)."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) does not exist")
        if weight <= 0:
            raise ValueError(f"edge weight must be > 0, got {weight!r}")
        self._adjacency[u][v] = float(weight)
        self._adjacency[v][u] = float(weight)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge between *u* and *v*."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) does not exist")
        del self._adjacency[u][v]
        del self._adjacency[v][u]

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """Whether an edge between *u* and *v* exists."""
        return u in self._adjacency and v in self._adjacency[u]

    def edge_weight(self, u: NodeId, v: NodeId) -> float:
        """Return the communication weight of edge (u, v)."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) does not exist")
        return self._adjacency[u][v]

    def edges(self) -> Iterator[tuple[NodeId, NodeId, float]]:
        """Iterate over edges once each as ``(u, v, weight)``.

        Each undirected edge is yielded exactly once, with the endpoint
        first seen during insertion appearing first.
        """
        seen: set[frozenset[NodeId]] = set()
        for u, neighbors in self._adjacency.items():
            for v, w in neighbors.items():
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                yield (u, v, w)

    def edge_list(self) -> list[tuple[NodeId, NodeId, float]]:
        """Return all edges as a list."""
        return list(self.edges())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def neighbors(self, node: NodeId) -> Iterator[NodeId]:
        """Iterate over the neighbors of *node*."""
        self._require_node(node)
        return iter(self._adjacency[node])

    def neighbor_items(self, node: NodeId) -> Iterator[tuple[NodeId, float]]:
        """Iterate over ``(neighbor, edge_weight)`` pairs of *node*."""
        self._require_node(node)
        return iter(self._adjacency[node].items())

    def degree(self, node: NodeId) -> int:
        """Number of incident edges."""
        self._require_node(node)
        return len(self._adjacency[node])

    def weighted_degree(self, node: NodeId) -> float:
        """Sum of incident edge weights (the Laplacian diagonal entry)."""
        self._require_node(node)
        return sum(self._adjacency[node].values())

    @property
    def node_count(self) -> int:
        """Number of nodes."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of undirected edges."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def total_node_weight(self) -> float:
        """Sum of all computation weights."""
        return sum(self._node_weights.values())

    def total_edge_weight(self) -> float:
        """Sum of all communication weights (each edge counted once)."""
        return sum(w for _, _, w in self.edges())

    def cut_weight(self, part: Iterable[NodeId]) -> float:
        """Weight of the cut separating *part* from the rest of the graph.

        Implements formula (8): the sum of weights of edges with exactly
        one endpoint inside *part*.
        """
        inside = set(part)
        for node in inside:
            self._require_node(node)
        total = 0.0
        for node in inside:
            for neighbor, weight in self._adjacency[node].items():
                if neighbor not in inside:
                    total += weight
        return total

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def copy(self) -> "WeightedGraph":
        """Return a deep structural copy (metadata dicts are shallow-copied)."""
        clone = WeightedGraph()
        for node in self._adjacency:
            clone.add_node(node, weight=self._node_weights[node], **self._node_data[node])
        for u, v, w in self.edges():
            clone.add_edge(u, v, weight=w)
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "WeightedGraph":
        """Return the induced subgraph over *nodes*."""
        keep = set(nodes)
        sub = WeightedGraph()
        for node in self._adjacency:
            if node in keep:
                sub.add_node(node, weight=self._node_weights[node], **self._node_data[node])
        for u, v, w in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v, weight=w)
        return sub

    def merge_nodes(self, survivor: NodeId, absorbed: NodeId) -> None:
        """Merge *absorbed* into *survivor* (the compression primitive).

        The survivor's computation weight becomes the sum of both weights;
        edges of the absorbed node are re-attached to the survivor with
        accumulated weights; the edge between the two (if any) disappears —
        it becomes internal traffic that will never be cut.
        """
        self._require_node(survivor)
        self._require_node(absorbed)
        if survivor == absorbed:
            raise ValueError("cannot merge a node with itself")
        self._node_weights[survivor] += self._node_weights[absorbed]
        for neighbor, weight in list(self._adjacency[absorbed].items()):
            if neighbor == survivor:
                continue
            merged = self._adjacency[survivor].get(neighbor, 0.0) + weight
            self._adjacency[survivor][neighbor] = merged
            self._adjacency[neighbor][survivor] = merged
        self.remove_node(absorbed)

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._adjacency)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adjacency)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WeightedGraph(nodes={self.node_count}, edges={self.edge_count})"

    def _require_node(self, node: NodeId) -> None:
        if node not in self._adjacency:
            raise KeyError(f"node {node!r} does not exist")
