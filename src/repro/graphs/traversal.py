"""Graph traversal primitives (BFS/DFS) used across the library.

Label propagation (Algorithm 1) walks the graph "according to depth-first
or breadth-first policies"; the max-flow baseline needs BFS shortest paths;
the s-t selection heuristic needs eccentricity.  All of those build on the
orders defined here.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def bfs_order(graph: WeightedGraph, start: NodeId) -> list[NodeId]:
    """Return nodes reachable from *start* in breadth-first order.

    Neighbor visitation follows adjacency insertion order, which keeps the
    traversal deterministic for a deterministically built graph.
    """
    if not graph.has_node(start):
        raise KeyError(f"node {start!r} does not exist")
    visited = {start}
    order = [start]
    queue: deque[NodeId] = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in visited:
                visited.add(neighbor)
                order.append(neighbor)
                queue.append(neighbor)
    return order


def dfs_order(graph: WeightedGraph, start: NodeId) -> list[NodeId]:
    """Return nodes reachable from *start* in depth-first (preorder) order."""
    if not graph.has_node(start):
        raise KeyError(f"node {start!r} does not exist")
    visited: set[NodeId] = set()
    order: list[NodeId] = []
    stack: list[NodeId] = [start]
    while stack:
        node = stack.pop()
        if node in visited:
            continue
        visited.add(node)
        order.append(node)
        # Reversed so that the first-inserted neighbor is explored first,
        # matching the recursive DFS a reader would expect.
        stack.extend(reversed(list(graph.neighbors(node))))
    return order


def bfs_tree(graph: WeightedGraph, start: NodeId) -> dict[NodeId, NodeId | None]:
    """Return a BFS parent map rooted at *start* (root maps to ``None``)."""
    if not graph.has_node(start):
        raise KeyError(f"node {start!r} does not exist")
    parents: dict[NodeId, NodeId | None] = {start: None}
    queue: deque[NodeId] = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in parents:
                parents[neighbor] = node
                queue.append(neighbor)
    return parents


def hop_distances(graph: WeightedGraph, start: NodeId) -> dict[NodeId, int]:
    """Return unweighted hop distances from *start* to every reachable node."""
    if not graph.has_node(start):
        raise KeyError(f"node {start!r} does not exist")
    distances = {start: 0}
    queue: deque[NodeId] = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def eccentricity(graph: WeightedGraph, node: NodeId) -> int:
    """Return the maximum hop distance from *node* to any reachable node."""
    return max(hop_distances(graph, node).values())


def farthest_node(graph: WeightedGraph, start: NodeId) -> NodeId:
    """Return a node at maximum hop distance from *start*.

    Used by the max-flow baseline to pick a sink far away from the source;
    ties break toward the earliest-discovered node, keeping the choice
    deterministic.
    """
    distances = hop_distances(graph, start)
    best = start
    best_distance = -1
    for candidate, distance in distances.items():
        if distance > best_distance:
            best = candidate
            best_distance = distance
    return best
