"""Laplacian and adjacency matrix builders.

Section III-B of the paper rests on the spectrum of the graph Laplacian
``L = D - A`` (Theorems 1-3).  Builders return dense numpy arrays for the
from-scratch eigensolvers and scipy sparse matrices for large graphs.

All builders accept either a :class:`WeightedGraph` or a pre-frozen
:class:`~repro.graphs.csr.CSRGraph` and assemble matrices from the CSR
arrays — one linear scan to freeze, vectorized assembly afterwards —
instead of re-walking the dict-of-dict adjacency per matrix.  Callers on
the planning hot path freeze once and reuse the same ``CSRGraph`` for
every matrix they need.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np
from scipy import sparse

from repro.graphs.csr import CSRGraph, as_csr
from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable

GraphLike = "WeightedGraph | CSRGraph"


def node_index(
    graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId] | None = None
) -> dict[NodeId, int]:
    """Return a node -> row index mapping.

    The caller may fix the *order*; by default insertion order is used so
    that eigenvector entries line up with ``graph.node_list()``.
    """
    if isinstance(graph, CSRGraph) and order is None:
        return dict(graph.index)
    nodes = list(order) if order is not None else graph.node_list()
    if len(set(nodes)) != len(nodes):
        raise ValueError("node order contains duplicates")
    for node in nodes:
        if not graph.has_node(node):
            raise KeyError(f"node {node!r} does not exist")
    if len(nodes) != graph.node_count:
        raise ValueError("node order must cover every node exactly once")
    return {node: i for i, node in enumerate(nodes)}


def _freeze(
    graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId] | None
) -> CSRGraph:
    """Freeze *graph* under *order*, validating the order like node_index."""
    if isinstance(graph, CSRGraph):
        return as_csr(graph, order)
    node_index(graph, order)  # full validation, same errors as before
    return CSRGraph.from_graph(graph, order)


def adjacency_matrix(
    graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId] | None = None
) -> np.ndarray:
    """Return the dense weighted adjacency matrix ``A``."""
    return _freeze(graph, order).adjacency_matrix()


def degree_vector(
    graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId] | None = None
) -> np.ndarray:
    """Return the weighted degree vector (diagonal of ``D``)."""
    return _freeze(graph, order).weighted_degrees()


def laplacian_matrix(
    graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId] | None = None
) -> np.ndarray:
    """Return the dense combinatorial Laplacian ``L = D - A``."""
    return _freeze(graph, order).laplacian_matrix()


def normalized_laplacian_matrix(
    graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId] | None = None
) -> np.ndarray:
    """Return the symmetric normalized Laplacian ``I - D^-1/2 A D^-1/2``.

    Isolated nodes (zero weighted degree) get a zero row/column, matching
    the networkx convention.
    """
    adjacency = adjacency_matrix(graph, order)
    degrees = adjacency.sum(axis=1)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    scaled = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    identity = np.diag((degrees > 0).astype(float))
    return identity - scaled


def sparse_laplacian(
    graph: "WeightedGraph | CSRGraph", order: Sequence[NodeId] | None = None
) -> sparse.csr_matrix:
    """Return the combinatorial Laplacian as a CSR sparse matrix.

    Used by the scipy-backed Fiedler solver on large compressed graphs
    where a dense ``n x n`` array would be wasteful.  Always float64.
    """
    return _freeze(graph, order).sparse_laplacian()
