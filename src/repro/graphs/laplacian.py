"""Laplacian and adjacency matrix builders.

Section III-B of the paper rests on the spectrum of the graph Laplacian
``L = D - A`` (Theorems 1-3).  Builders return dense numpy arrays for the
from-scratch eigensolvers and scipy sparse matrices for large graphs.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np
from scipy import sparse

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable


def node_index(graph: WeightedGraph, order: Sequence[NodeId] | None = None) -> dict[NodeId, int]:
    """Return a node -> row index mapping.

    The caller may fix the *order*; by default insertion order is used so
    that eigenvector entries line up with ``graph.node_list()``.
    """
    nodes = list(order) if order is not None else graph.node_list()
    if len(set(nodes)) != len(nodes):
        raise ValueError("node order contains duplicates")
    for node in nodes:
        if not graph.has_node(node):
            raise KeyError(f"node {node!r} does not exist")
    if len(nodes) != graph.node_count:
        raise ValueError("node order must cover every node exactly once")
    return {node: i for i, node in enumerate(nodes)}


def adjacency_matrix(
    graph: WeightedGraph, order: Sequence[NodeId] | None = None
) -> np.ndarray:
    """Return the dense weighted adjacency matrix ``A``."""
    index = node_index(graph, order)
    n = len(index)
    matrix = np.zeros((n, n), dtype=float)
    for u, v, w in graph.edges():
        i, j = index[u], index[v]
        matrix[i, j] = w
        matrix[j, i] = w
    return matrix


def degree_vector(graph: WeightedGraph, order: Sequence[NodeId] | None = None) -> np.ndarray:
    """Return the weighted degree vector (diagonal of ``D``)."""
    index = node_index(graph, order)
    degrees = np.zeros(len(index), dtype=float)
    for node, i in index.items():
        degrees[i] = graph.weighted_degree(node)
    return degrees


def laplacian_matrix(
    graph: WeightedGraph, order: Sequence[NodeId] | None = None
) -> np.ndarray:
    """Return the dense combinatorial Laplacian ``L = D - A``."""
    adjacency = adjacency_matrix(graph, order)
    return np.diag(adjacency.sum(axis=1)) - adjacency


def normalized_laplacian_matrix(
    graph: WeightedGraph, order: Sequence[NodeId] | None = None
) -> np.ndarray:
    """Return the symmetric normalized Laplacian ``I - D^-1/2 A D^-1/2``.

    Isolated nodes (zero weighted degree) get a zero row/column, matching
    the networkx convention.
    """
    adjacency = adjacency_matrix(graph, order)
    degrees = adjacency.sum(axis=1)
    with np.errstate(divide="ignore"):
        inv_sqrt = np.where(degrees > 0, 1.0 / np.sqrt(degrees), 0.0)
    scaled = adjacency * inv_sqrt[:, None] * inv_sqrt[None, :]
    identity = np.diag((degrees > 0).astype(float))
    return identity - scaled


def sparse_laplacian(
    graph: WeightedGraph, order: Sequence[NodeId] | None = None
) -> sparse.csr_matrix:
    """Return the combinatorial Laplacian as a CSR sparse matrix.

    Used by the scipy-backed Fiedler solver on large compressed graphs
    where a dense ``n x n`` array would be wasteful.
    """
    index = node_index(graph, order)
    n = len(index)
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    degrees = np.zeros(n, dtype=float)
    for u, v, w in graph.edges():
        i, j = index[u], index[v]
        rows.extend((i, j))
        cols.extend((j, i))
        vals.extend((-w, -w))
        degrees[i] += w
        degrees[j] += w
    rows.extend(range(n))
    cols.extend(range(n))
    vals.extend(degrees.tolist())
    return sparse.csr_matrix((vals, (rows, cols)), shape=(n, n))
