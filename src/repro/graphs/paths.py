"""Weighted shortest paths (Dijkstra).

The hop-based eccentricity of :mod:`repro.graphs.traversal` treats every
edge alike; for communication graphs the *weighted* metric (heavier edge
= tighter coupling = "closer") is often the better notion of distance.
Used by the max-flow baseline's ``weighted`` endpoint-selection mode and
exposed as general substrate.

Edge length convention: communication weights measure coupling, so the
traversal cost of an edge is ``1 / weight`` — strongly coupled functions
are near each other, loosely coupled ones far apart.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Hashable

from repro.graphs.weighted_graph import WeightedGraph

NodeId = Hashable

EdgeLength = Callable[[float], float]


def inverse_weight_length(weight: float) -> float:
    """The default edge length: ``1 / weight`` (coupling = closeness)."""
    return 1.0 / weight


def unit_length(weight: float) -> float:
    """Hop metric: every edge has length 1."""
    return 1.0


def dijkstra_distances(
    graph: WeightedGraph,
    source: NodeId,
    edge_length: EdgeLength = inverse_weight_length,
) -> dict[NodeId, float]:
    """Shortest-path distances from *source* to every reachable node.

    *edge_length* maps an edge's communication weight to its traversal
    cost and must return positive values (Dijkstra's requirement); the
    default is the inverse-weight coupling metric.
    """
    if not graph.has_node(source):
        raise KeyError(f"node {source!r} does not exist")
    distances: dict[NodeId, float] = {source: 0.0}
    visited: set[NodeId] = set()
    counter = 0
    heap: list[tuple[float, int, NodeId]] = [(0.0, counter, source)]
    while heap:
        distance, _, node = heapq.heappop(heap)
        if node in visited:
            continue
        visited.add(node)
        for neighbor, weight in graph.neighbor_items(node):
            if neighbor in visited:
                continue
            length = edge_length(weight)
            if length <= 0:
                raise ValueError(
                    f"edge length must be > 0, got {length!r} for weight {weight!r}"
                )
            candidate = distance + length
            if candidate < distances.get(neighbor, float("inf")):
                distances[neighbor] = candidate
                counter += 1
                heapq.heappush(heap, (candidate, counter, neighbor))
    return distances


def weighted_farthest_node(
    graph: WeightedGraph,
    source: NodeId,
    edge_length: EdgeLength = inverse_weight_length,
) -> NodeId:
    """The reachable node at maximum weighted distance from *source*.

    Ties break toward the node discovered earliest (deterministic).
    Under the inverse-weight metric this is the function most *loosely*
    coupled to the source — the natural sink for an s-t cut that should
    separate weak couplings.
    """
    distances = dijkstra_distances(graph, source, edge_length)
    best = source
    best_distance = -1.0
    for node, distance in distances.items():
        if distance > best_distance:
            best = node
            best_distance = distance
    return best


def shortest_path(
    graph: WeightedGraph,
    source: NodeId,
    target: NodeId,
    edge_length: EdgeLength = inverse_weight_length,
) -> list[NodeId]:
    """One shortest path from *source* to *target* (inclusive).

    Raises ``ValueError`` when *target* is unreachable.
    """
    if not graph.has_node(target):
        raise KeyError(f"node {target!r} does not exist")
    distances = dijkstra_distances(graph, source, edge_length)
    if target not in distances:
        raise ValueError(f"{target!r} is unreachable from {source!r}")
    # Walk backwards greedily along tight edges.
    path = [target]
    current = target
    while current != source:
        for neighbor, weight in graph.neighbor_items(current):
            if neighbor in distances and abs(
                distances[neighbor] + edge_length(weight) - distances[current]
            ) < 1e-9:
                path.append(neighbor)
                current = neighbor
                break
        else:  # pragma: no cover - distances guarantee a predecessor
            raise AssertionError("no predecessor found on a shortest path")
    path.reverse()
    return path
