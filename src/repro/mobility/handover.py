"""Handover policies: when a moving user should switch servers.

Once users move, the link they were admitted on decays: the vehicle
drives away from its base station and every RTT-carrying term in the
ledger worsens.  A :class:`HandoverPolicy` decides, once per fleet tick
and per admitted user, whether to keep the current server or hand the
user over to a better one.  The *decision* lives here; the *execution*
is :meth:`repro.fleet.fleet.EdgeFleet.tick`, which prices every
accepted handover through the fleet's
:class:`~repro.fleet.migration.MigrationCostModel` and charges it into
the user's migration debt exactly like a rebalance move — handovers are
never free, which is what makes the policy choice a genuine trade-off.

Three disciplines:

* :class:`NeverHandover` — the paper's baseline: the admission-time
  server is forever.  Free of migration debt, but the link can decay
  without bound.
* :class:`NearestHandover` — switch to the lowest-RTT server whenever
  the current link is worse by more than *hysteresis* seconds.  With
  ``hysteresis=0`` this is the naive always-chase-the-nearest policy
  (it pays a migration for every marginal improvement); a positive
  margin suppresses the churn while still abandoning genuinely bad
  links.
* :class:`PredictiveHandover` — consult the fleet telemetry's
  per-link forecast (:meth:`~repro.forecast.proactive.FleetTelemetry.
  predict_rtt`) and hand over *before* the current link's predicted RTT
  breaches *threshold*, choosing the candidate with the best predicted
  (falling back to observed) RTT.  The proactive sibling of
  ``rebalance(proactive=True)``, applied per link instead of per
  server.

Policies are deterministic and stateless about users — they see one
decision's inputs and return a target (or ``None`` to stay), so the
same trace replays to the same handover sequence.
"""

from __future__ import annotations

import abc
from collections.abc import Mapping
from dataclasses import dataclass

from repro.forecast.proactive import FleetTelemetry


@dataclass(frozen=True)
class HandoverDecision:
    """One executed handover: who moved, whence, whither, and the RTTs."""

    user_id: str
    source: str
    target: str
    rtt_before: float
    """Observed RTT of the link being abandoned."""

    rtt_after: float
    """Observed RTT of the link being adopted."""

    tick: int
    """The field tick at which the handover executed."""

    @property
    def gain(self) -> float:
        """Observed RTT improvement (positive = the link got better)."""
        return self.rtt_before - self.rtt_after


class HandoverPolicy(abc.ABC):
    """Per-user, per-tick decision: stay, or move to which server?"""

    name: str = "custom"

    @abc.abstractmethod
    def target(
        self,
        user_id: str,
        current: str,
        rtts: Mapping[str, float],
        telemetry: FleetTelemetry | None = None,
    ) -> str | None:
        """The server to hand *user_id* over to, or ``None`` to stay.

        *rtts* maps every candidate server id — the current server plus
        every server the fleet would accept the user on — to its
        observed RTT this tick.  *telemetry* is the fleet's recorded
        history, when one exists; policies that do not forecast ignore
        it.  Returning *current* (or an id not in *rtts*) is treated as
        staying.
        """


class NeverHandover(HandoverPolicy):
    """The admission-time server is forever (the paper's static model)."""

    name = "never"

    def target(
        self,
        user_id: str,
        current: str,
        rtts: Mapping[str, float],
        telemetry: FleetTelemetry | None = None,
    ) -> str | None:
        return None


def _nearest(rtts: Mapping[str, float]) -> tuple[str, float]:
    """Lowest-RTT candidate, ties broken by server id for determinism."""
    server_id = min(rtts, key=lambda sid: (rtts[sid], sid))
    return server_id, rtts[server_id]


class NearestHandover(HandoverPolicy):
    """Chase the nearest server, damped by a hysteresis margin.

    Hands over when the current link's RTT exceeds the best candidate's
    by more than *hysteresis* seconds.  Zero hysteresis reproduces the
    naive vehicular behaviour — re-pick the nearest base station the
    moment it changes — which maximises link quality and migration
    churn alike; the margin is the knob that trades the two.
    """

    name = "nearest"

    def __init__(self, hysteresis: float = 0.0) -> None:
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        self.hysteresis = hysteresis

    def target(
        self,
        user_id: str,
        current: str,
        rtts: Mapping[str, float],
        telemetry: FleetTelemetry | None = None,
    ) -> str | None:
        if current not in rtts:  # pragma: no cover - fleet always includes it
            return None
        best_id, best_rtt = _nearest(rtts)
        if best_id == current:
            return None
        if rtts[current] - best_rtt > self.hysteresis:
            return best_id
        return None


class PredictiveHandover(HandoverPolicy):
    """Hand over before the forecasted link RTT breaches a threshold.

    The current link's RTT is forecast *horizon* ticks out from the
    fleet telemetry's ``fleet_rtt_<user>@<server>`` series; while the
    prediction stays at or under *threshold* the user keeps its server
    (and its plan-cache locality).  On a predicted breach the user
    moves to the candidate with the lowest predicted RTT — candidates
    without history fall back to their observed RTT — provided that
    candidate improves on the prediction by more than *hysteresis*
    (otherwise every server is about equally bad and moving would be
    pure churn).  With no telemetry at all the policy degrades to
    observed-RTT behaviour: a threshold breach on the measured link
    triggers the same comparison.
    """

    name = "predictive"

    def __init__(
        self, threshold: float, horizon: int = 3, hysteresis: float = 0.0
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon}")
        if hysteresis < 0:
            raise ValueError(f"hysteresis must be >= 0, got {hysteresis}")
        self.threshold = threshold
        self.horizon = horizon
        self.hysteresis = hysteresis

    def _predicted(
        self,
        user_id: str,
        server_id: str,
        observed: float,
        telemetry: FleetTelemetry | None,
    ) -> float:
        if telemetry is None:
            return observed
        predicted = telemetry.predict_rtt(user_id, server_id, self.horizon)
        if predicted is None:
            return observed
        return max(predicted, 0.0)

    def target(
        self,
        user_id: str,
        current: str,
        rtts: Mapping[str, float],
        telemetry: FleetTelemetry | None = None,
    ) -> str | None:
        if current not in rtts:  # pragma: no cover - fleet always includes it
            return None
        outlook = self._predicted(user_id, current, rtts[current], telemetry)
        if outlook <= self.threshold:
            return None
        candidates = {
            server_id: self._predicted(user_id, server_id, observed, telemetry)
            for server_id, observed in rtts.items()
            if server_id != current
        }
        if not candidates:
            return None
        best_id, best_outlook = _nearest(candidates)
        if outlook - best_outlook > self.hysteresis:
            return best_id
        return None


HANDOVER_POLICIES = ("never", "nearest", "predictive")
"""Registered handover-policy names, for CLIs and experiment sweeps."""


def make_handover_policy(
    name: str,
    *,
    hysteresis: float = 0.0,
    threshold: float = 0.1,
    horizon: int = 3,
) -> HandoverPolicy:
    """Build a handover policy by registered name.

    *hysteresis* configures both reactive and predictive damping;
    *threshold*/*horizon* only the predictive policy.  Irrelevant
    options are ignored, so sweeps can pass one option set everywhere.

    >>> make_handover_policy("never").name
    'never'
    """
    if name == "never":
        return NeverHandover()
    if name == "nearest":
        return NearestHandover(hysteresis=hysteresis)
    if name == "predictive":
        return PredictiveHandover(
            threshold, horizon=horizon, hysteresis=hysteresis
        )
    raise ValueError(
        f"unknown handover policy {name!r}; expected one of {list(HANDOVER_POLICIES)}"
    )
