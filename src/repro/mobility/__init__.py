"""User mobility: time-varying latency and handover orchestration.

Everything below the fleet models a *static* network: the paper fixes
each user to one link to a single server ``S``, and even the fleet's
:class:`~repro.fleet.latency.GeoLatencyMap` freezes every id at a hashed
position.  This package adds the missing motion, in the spirit of
vehicular edge offloading (re-pick the nearest base station as you
drive) and online placement under drift:

* :mod:`repro.mobility.models` — :class:`MobilityModel`s evolving user
  positions per simulated tick: :class:`RandomWaypoint` (seeded,
  bounded unit square, pause times) and :class:`VehicularCorridor`
  (constant-velocity lanes with wraparound);
* :mod:`repro.mobility.field` — :class:`MobilityField`, the live
  position store: moving users, fixed server sites (seeded from a
  ``GeoLatencyMap``'s placement via :meth:`MobilityField.from_geo`),
  and the simulated clock behind ``advance(dt)``;
* :mod:`repro.mobility.latency` — :class:`MobileLatencyMap`, a
  :class:`~repro.fleet.latency.LatencyMap` whose ``rtt()`` reads live
  positions, so the answer changes every tick;
* :mod:`repro.mobility.handover` — pluggable :class:`HandoverPolicy`
  disciplines (``never`` / ``nearest`` with hysteresis /
  ``predictive`` off the telemetry's RTT forecasts), executed by
  :meth:`repro.fleet.fleet.EdgeFleet.tick` with every move priced
  through the :class:`~repro.fleet.migration.MigrationCostModel`.

The package imports :mod:`repro.fleet.latency` and
:mod:`repro.forecast` but never :mod:`repro.fleet.fleet`; the fleet
drives it through duck typing (``latency.advance``) and plain policy
objects, so there are no import cycles.  Determinism is load-bearing:
models take explicit seeds, read no wall clocks, and the same seed
replays the same handover sequence tick for tick (asserted by
``benchmarks/bench_fleet_mobility.py``).
"""

from repro.mobility.field import MobilityField, evenly_spaced_stations
from repro.mobility.handover import (
    HANDOVER_POLICIES,
    HandoverDecision,
    HandoverPolicy,
    NearestHandover,
    NeverHandover,
    PredictiveHandover,
    make_handover_policy,
)
from repro.mobility.latency import MobileLatencyMap
from repro.mobility.models import (
    MOBILITY_MODELS,
    MobilityModel,
    Position,
    RandomWaypoint,
    VehicularCorridor,
    make_mobility_model,
)

__all__ = [
    "HANDOVER_POLICIES",
    "MOBILITY_MODELS",
    "HandoverDecision",
    "HandoverPolicy",
    "MobileLatencyMap",
    "MobilityField",
    "MobilityModel",
    "NearestHandover",
    "NeverHandover",
    "Position",
    "PredictiveHandover",
    "RandomWaypoint",
    "VehicularCorridor",
    "evenly_spaced_stations",
    "make_handover_policy",
    "make_mobility_model",
]
